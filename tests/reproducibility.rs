//! Cross-crate reproducibility and data-handling integration tests.

use cdd_suite::gpu::{run_gpu_sa, GpuSaParams};
use cdd_suite::instances::{self, orlib, BestKnown, InstanceId, Suite};

/// Benchmark generation is stable across calls and matches the OR-library
/// format round trip.
#[test]
fn benchmark_data_round_trips_through_orlib_format() {
    let raws: Vec<_> = (1..=10).map(|k| instances::raw_job_data(50, k)).collect();
    let text = orlib::write_orlib(&raws);
    let parsed = orlib::parse_orlib(&text).expect("self-written file parses");
    assert_eq!(parsed.len(), 10);
    for (a, b) in raws.iter().zip(&parsed) {
        assert_eq!(a.processing, b.processing);
        assert_eq!(a.earliness, b.earliness);
        assert_eq!(a.tardiness, b.tardiness);
        // Materialized instances agree too.
        let ia = a.with_restrictive_factor(0.6);
        let ib = b.with_restrictive_factor(0.6);
        assert_eq!(ia, ib);
    }
}

/// Every member of the paper suites instantiates into a valid instance of
/// the right size and kind.
#[test]
fn paper_suites_instantiate() {
    let suite = Suite::cdd_for_sizes(&[10, 20]);
    assert_eq!(suite.ids.len(), 80);
    for id in &suite.ids {
        let inst = id.instantiate();
        assert_eq!(inst.n(), id.n);
    }
    let suite = Suite::ucddcp_for_sizes(&[10, 20]);
    assert_eq!(suite.ids.len(), 20);
    for id in &suite.ids {
        let inst = id.instantiate();
        assert!(inst.is_unrestricted());
    }
}

/// A full GPU pipeline run is bit-identical under a fixed seed, including
/// the modeled timing — the property that makes every experiment in
/// EXPERIMENTS.md replayable.
#[test]
fn full_gpu_run_is_replayable() {
    let inst = instances::cdd_instance(25, 4, 0.4);
    let params = GpuSaParams { blocks: 2, block_size: 32, iterations: 120, ..Default::default() };
    let a = run_gpu_sa(&inst, &params).expect("valid launch");
    let b = run_gpu_sa(&inst, &params).expect("valid launch");
    assert_eq!(a.objective, b.objective);
    assert_eq!(a.best, b.best);
    assert_eq!(a.modeled_seconds, b.modeled_seconds);
    assert_eq!(a.kernel_launches, b.kernel_launches);
}

/// Different seeds explore differently (the ensemble is not degenerate).
#[test]
fn different_seeds_differ() {
    let inst = instances::cdd_instance(40, 1, 0.6);
    let base = GpuSaParams { blocks: 1, block_size: 32, iterations: 60, ..Default::default() };
    let a = run_gpu_sa(&inst, &GpuSaParams { seed: 1, ..base.clone() }).expect("valid");
    let b = run_gpu_sa(&inst, &GpuSaParams { seed: 2, ..base }).expect("valid");
    // Objectives may coincide, but the best sequences essentially never do
    // on n = 40 with such short runs.
    assert!(a.best != b.best || a.objective == b.objective);
}

/// Best-known bookkeeping: percent deltas match the paper's definition and
/// persist across save/load.
#[test]
fn best_known_percent_delta_round_trip() {
    let dir = std::env::temp_dir().join(format!("cdd-it-{}", std::process::id()));
    let path = dir.join("bk.txt");
    let mut table = BestKnown::new();
    let id = InstanceId::cdd(10, 1, 0.2).to_string();
    table.improve(&id, 1000);
    table.save(&path).expect("writable temp dir");

    let loaded = BestKnown::load(&path).expect("readable");
    assert_eq!(loaded.percent_delta(&id, 1020), Some(2.0));
    assert_eq!(loaded.percent_delta(&id, 990), Some(-1.0));
    std::fs::remove_dir_all(&dir).ok();
}
