//! Integration tests spanning the whole two-layered pipeline:
//! instances → O(n) optimizers ↔ LP oracle → CPU/GPU metaheuristics.

use cdd_suite::core::exact::{best_sequence_bruteforce, optimal_sequence_objective};
use cdd_suite::core::eval::evaluator_for;
use cdd_suite::gpu::{run_gpu_dpso, run_gpu_sa, GpuDpsoParams, GpuSaParams};
use cdd_suite::instances;
use cdd_suite::lp::{solve_cdd_sequence_lp, solve_ucddcp_sequence_lp};
use cdd_suite::meta::{AsyncEnsemble, SaParams};
use cdd_suite::JobSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The O(n) optimizers agree with the simplex LP on real benchmark
/// instances (not just the random ones the unit tests draw).
#[test]
fn linear_algorithms_match_lp_on_benchmark_instances() {
    let mut rng = StdRng::seed_from_u64(99);
    for k in 1..=3 {
        let inst = instances::cdd_instance(20, k, 0.4);
        for _ in 0..5 {
            let seq = JobSequence::random(20, &mut rng);
            let fast = optimal_sequence_objective(&inst, &seq) as f64;
            let lp = solve_cdd_sequence_lp(&inst, &seq).expect("feasible").objective;
            assert!((fast - lp).abs() < 1e-5, "CDD n=20 k={k}: {fast} vs {lp}");
        }

        let inst = instances::ucddcp_instance(15, k);
        for _ in 0..5 {
            let seq = JobSequence::random(15, &mut rng);
            let fast = optimal_sequence_objective(&inst, &seq) as f64;
            let lp = solve_ucddcp_sequence_lp(&inst, &seq).expect("feasible").objective;
            assert!((fast - lp).abs() < 1e-5, "UCDDCP n=15 k={k}: {fast} vs {lp}");
        }
    }
}

/// GPU SA, GPU DPSO and the CPU ensemble all find the global optimum of a
/// small benchmark instance (verified by factorial enumeration).
#[test]
fn all_three_solvers_reach_global_optimum_small() {
    let inst = instances::cdd_instance(8, 1, 0.6);
    let (_, optimum) = best_sequence_bruteforce(&inst);

    let sa = run_gpu_sa(
        &inst,
        &GpuSaParams { blocks: 2, block_size: 32, iterations: 400, ..Default::default() },
    )
    .expect("valid launch");
    assert_eq!(sa.objective, optimum, "GPU SA missed the optimum");

    let dpso = run_gpu_dpso(
        &inst,
        &GpuDpsoParams { blocks: 2, block_size: 32, iterations: 400, ..Default::default() },
    )
    .expect("valid launch");
    assert_eq!(dpso.objective, optimum, "GPU DPSO missed the optimum");

    let eval = evaluator_for(&inst);
    let cpu = AsyncEnsemble::new(eval.as_ref(), 16, SaParams::paper_1000()).run(5);
    assert_eq!(cpu.objective, optimum, "CPU ensemble missed the optimum");
}

/// Same for a UCDDCP benchmark instance.
#[test]
fn gpu_sa_reaches_ucddcp_global_optimum_small() {
    let inst = instances::ucddcp_instance(8, 2);
    let (_, optimum) = best_sequence_bruteforce(&inst);
    let sa = run_gpu_sa(
        &inst,
        &GpuSaParams { blocks: 2, block_size: 32, iterations: 500, ..Default::default() },
    )
    .expect("valid launch");
    assert_eq!(sa.objective, optimum);
}

/// The objective the GPU reports is exactly what the CPU evaluator assigns
/// to the returned sequence — no drift between device and host fitness.
#[test]
fn gpu_objective_is_consistent_with_host_evaluation() {
    for (name, inst) in [
        ("cdd", instances::cdd_instance(30, 1, 0.2)),
        ("ucddcp", instances::ucddcp_instance(30, 1)),
    ] {
        let r = run_gpu_sa(
            &inst,
            &GpuSaParams { blocks: 2, block_size: 16, iterations: 150, ..Default::default() },
        )
        .expect("valid launch");
        let eval = evaluator_for(&inst);
        assert_eq!(
            eval.evaluate(r.best.as_slice()),
            r.objective,
            "{name}: device/host fitness drift"
        );
        assert!(r.best.is_valid_permutation());
    }
}

/// Restrictive factors order the optima sensibly: a tighter due date can
/// only make the best reachable penalty worse or equal (same job data).
#[test]
fn tighter_due_dates_cost_more() {
    let loose = instances::cdd_instance(8, 3, 0.8);
    let tight = instances::cdd_instance(8, 3, 0.2);
    let (_, loose_opt) = best_sequence_bruteforce(&loose);
    let (_, tight_opt) = best_sequence_bruteforce(&tight);
    assert!(tight_opt >= loose_opt, "tight {tight_opt} < loose {loose_opt}");
}
