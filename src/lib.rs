//! # cdd-suite
//!
//! Facade crate re-exporting the whole reproduction of *"GPGPU-based
//! Parallel Algorithms for Scheduling Against Due Date"* (Awasthi, Lässig,
//! Leuschner, Weise — IPDPSW/PCO 2016).
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `cdd-core` | problem model, O(n) fixed-sequence optimizers |
//! | [`lp`] | `cdd-lp` | simplex LP solver + fixed-sequence LP models |
//! | [`instances`] | `cdd-instances` | Biskup–Feldmann benchmark generation, OR-library I/O |
//! | [`cuda`] | `cuda-sim` | CUDA execution-model simulator + performance model |
//! | [`meta`] | `cdd-meta` | CPU metaheuristics (SA, DPSO, ES) and ensembles |
//! | [`gpu`] | `cdd-gpu` | GPU-parallel SA/DPSO pipelines (4 kernels) |
//! | [`service`] | `cdd-service` | multi-device solver service (queue, pool, cache) |
//! | [`net`] | `cdd-net` | framed TCP front door, multi-node router, net client |
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory and per-experiment index.

pub use cdd_core as core;
pub use cdd_gpu as gpu;
pub use cdd_instances as instances;
pub use cdd_lp as lp;
pub use cdd_meta as meta;
pub use cdd_net as net;
pub use cdd_service as service;
pub use cuda_sim as cuda;

// Convenience re-exports of the types almost every user needs.
pub use cdd_core::{Algorithm, Instance, Job, JobSequence, ProblemKind, Schedule, SolveRequest};
