//! End-to-end acceptance tests for the resilient campaign runner: a
//! fault-injected campaign completes with oracle-verified rows, and an
//! interrupted-then-resumed campaign produces CSVs byte-identical to an
//! uninterrupted one.

use cdd_bench::campaign::{instance_seed, run_quality_suite};
use cdd_bench::{write_csv, CampaignConfig, CampaignObserver, Journal, Table};
use cdd_instances::{BestKnown, InstanceId};
use cuda_sim::FaultPlan;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cdd-bench-resume").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deliberately tiny campaign — one CDD instance, all four algorithms,
/// a small ensemble — with the acceptance fault rates (5 % launch
/// failures, 1 % read bit flips, 2 % hangs).
fn small_faulty_config() -> (CampaignConfig, Vec<InstanceId>, BestKnown) {
    let cfg = CampaignConfig {
        sizes: vec![10],
        blocks: 1,
        block_size: 4,
        seed: 42,
        fault: Some(FaultPlan::with_rates(5, 0.05, 0.01, 0.02)),
        ..Default::default()
    };
    let ids = vec![InstanceId::cdd(10, 1, 0.6)];
    let mut best = BestKnown::new();
    // A frozen reference value: %Δ columns only need a fixed denominator.
    best.improve(&ids[0].to_string(), 100);
    (cfg, ids, best)
}

fn render_csvs(dir: &Path, rows: &[cdd_bench::QualityRow], detail: &Table) -> (String, String) {
    let mut summary = Table::new(vec!["Jobs", "SA1000", "SA5000", "DPSO1000", "DPSO5000"]);
    for r in rows {
        let mut cells = vec![r.n.to_string()];
        cells.extend(r.deltas.iter().map(|d| format!("{d:.3}")));
        summary.push(cells);
    }
    let spath = dir.join("summary.csv");
    let dpath = dir.join("detail.csv");
    write_csv(&summary, &spath).unwrap();
    write_csv(detail, &dpath).unwrap();
    (std::fs::read_to_string(spath).unwrap(), std::fs::read_to_string(dpath).unwrap())
}

#[test]
fn faulty_campaign_completes_and_every_row_is_oracle_verified() {
    let dir = tmp_dir("faulty");
    let (cfg, ids, best) = small_faulty_config();
    let mut journal = Journal::open(dir.join("journal.jsonl"), false).unwrap();
    let (rows, detail) = run_quality_suite(&cfg, &ids, &best, Some(&mut journal), None, None);

    assert_eq!(rows.len(), 1);
    assert_eq!(detail.rows.len(), 4, "one instance x four algorithms");
    for row in &detail.rows {
        let status = row.last().unwrap();
        assert!(
            status == "ok" || status == "ok-cpu-fallback",
            "every cell must complete under injection, got {status:?}"
        );
    }
    // The journal holds every completed cell, keyed by the derived seed.
    let seed = instance_seed(cfg.seed, &ids[0]);
    for algo in ["SA1000", "SA5000", "DPSO1000", "DPSO5000"] {
        let rec = journal.get(&ids[0].to_string(), algo, seed).unwrap();
        // run_quality_suite already verified the objective against the CPU
        // oracle inside the pipelines; spot-check the journal carries it.
        let inst = ids[0].instantiate();
        let eval = cdd_core::eval::evaluator_for(&inst);
        // The recorded objective must be achievable by *some* sequence the
        // oracle accepts — re-verified implicitly by the pipelines; here we
        // assert it is at least a plausible cost for the instance.
        assert!(rec.objective > 0, "{algo}: oracle-verified objective recorded");
        let _ = eval;
    }
}

#[test]
fn interrupted_then_resumed_run_matches_uninterrupted_byte_for_byte() {
    let (cfg, ids, best) = small_faulty_config();

    // Reference: one uninterrupted run.
    let dir_a = tmp_dir("uninterrupted");
    let mut journal_a = Journal::open(dir_a.join("journal.jsonl"), false).unwrap();
    let mut observer_a = CampaignObserver::new();
    let (rows_a, detail_a) =
        run_quality_suite(&cfg, &ids, &best, Some(&mut journal_a), None, Some(&mut observer_a));
    let (summary_a, detail_csv_a) = render_csvs(&dir_a, &rows_a, &detail_a);

    // Interrupted: stop after 2 of the 4 cells (simulating a kill), then
    // resume from the journal and finish.
    let dir_b = tmp_dir("resumed");
    let journal_path = dir_b.join("journal.jsonl");
    let mut journal_b = Journal::open(&journal_path, false).unwrap();
    let (_partial_rows, _partial_detail) =
        run_quality_suite(&cfg, &ids, &best, Some(&mut journal_b), Some(2), None);
    drop(journal_b);
    let reloaded = Journal::open(&journal_path, true).unwrap();
    assert_eq!(reloaded.len(), 2, "exactly the budgeted cells were journaled");

    let mut journal_b = Journal::open(&journal_path, true).unwrap();
    let mut observer_b = CampaignObserver::new();
    let (rows_b, detail_b) =
        run_quality_suite(&cfg, &ids, &best, Some(&mut journal_b), None, Some(&mut observer_b));
    assert_eq!(journal_b.len(), 4, "resume completed the remaining cells");
    let (summary_b, detail_csv_b) = render_csvs(&dir_b, &rows_b, &detail_b);

    assert_eq!(summary_a, summary_b, "summary CSV must be byte-identical after resume");
    assert_eq!(detail_csv_a, detail_csv_b, "detail CSV must be byte-identical after resume");

    // The journal carries each cell's metrics, so the resumed campaign's
    // cell-level counters match the uninterrupted one's even though two of
    // its cells were never re-executed (only the `source` label differs).
    for series in ["campaign_kernel_launches_total", "campaign_faults_injected_total"] {
        assert_eq!(
            observer_a.registry().counter(series, &[]),
            observer_b.registry().counter(series, &[]),
            "{series} must survive resume"
        );
    }
}
