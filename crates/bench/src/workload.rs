//! Workload files for the solver service (`cdd-serve`): a deterministic
//! generator of mixed CDD/UCDDCP request streams and a line-oriented text
//! format to persist them.
//!
//! Each line describes one [`SolveRequest`] by *instance id* rather than by
//! raw job data — the benchmark generators are deterministic, so the id
//! (plus algorithm, budget and seed) reproduces the exact request anywhere:
//!
//! ```text
//! # kind n k h algorithm iterations seed tenant priority
//! cdd 10 1 0.6 sa 150 11491960066 t0 normal
//! ucddcp 20 3 - dpso 150 99220417 t2 interactive
//! ```
//!
//! The trailing `tenant priority` columns are the service-identity half of
//! the schema (who asked, how urgently); the file-replay path (`cdd-serve`)
//! and the network path (`cdd-node`/`cdd-router`) both parse this one
//! format. Legacy 7-field lines still load — they default to tenant
//! `default` at `normal` priority.
//!
//! [`generate_mixed`] deliberately re-emits earlier entries' *work* (about
//! a quarter of the stream) under freshly drawn tenant/priority columns, so
//! a replay exercises the service's solution cache — including the
//! cross-tenant case: a duplicate request is always served from the cache
//! layer (direct hit or coalesced onto the identical in-flight request)
//! because tenant and priority are excluded from the content key.

use crate::campaign::instance_seed;
use cdd_core::{Algorithm, Priority, SolveRequest};
use cdd_instances::{InstanceId, PAPER_H_VALUES};
use std::io::{Error, ErrorKind, Write};
use std::path::Path;

/// One workload line: which request to submit.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    /// Benchmark instance to solve (CDD when `id.h` is set, else UCDDCP).
    pub id: InstanceId,
    /// Metaheuristic to run.
    pub algorithm: Algorithm,
    /// Generation budget.
    pub iterations: u64,
    /// Master seed of the solve.
    pub seed: u64,
    /// Owning tenant (rate-limit/accounting identity on the network path).
    pub tenant: String,
    /// Service priority class.
    pub priority: Priority,
}

impl WorkloadEntry {
    /// Materialize the entry into a service request (no deadline).
    pub fn to_request(&self) -> SolveRequest {
        SolveRequest {
            tenant: self.tenant.clone(),
            priority: self.priority,
            ..SolveRequest::new(self.id.instantiate(), self.algorithm, self.iterations, self.seed)
        }
    }

    /// Serialize as one workload-file line.
    pub fn to_line(&self) -> String {
        let (kind, h) = match self.id.h {
            Some(h) => ("cdd", format!("{h}")),
            None => ("ucddcp", "-".to_string()),
        };
        format!(
            "{kind} {} {} {h} {} {} {} {} {}",
            self.id.n, self.id.k, self.algorithm, self.iterations, self.seed, self.tenant,
            self.priority
        )
    }

    /// Parse one workload-file line (inverse of [`Self::to_line`]). Accepts
    /// both the 9-field schema and the pre-tenant 7-field one (tenant
    /// `default`, `normal` priority).
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 && fields.len() != 9 {
            return Err(format!("expected 7 or 9 fields, got {}: {line:?}", fields.len()));
        }
        let n: usize = fields[1].parse().map_err(|_| format!("bad n {:?}", fields[1]))?;
        let k: u32 = fields[2].parse().map_err(|_| format!("bad k {:?}", fields[2]))?;
        let id = match fields[0] {
            "cdd" => {
                let h: f64 = fields[3].parse().map_err(|_| format!("bad h {:?}", fields[3]))?;
                InstanceId::cdd(n, k, h)
            }
            "ucddcp" => InstanceId::ucddcp(n, k),
            other => return Err(format!("unknown problem kind {other:?}")),
        };
        let (tenant, priority) = if fields.len() == 9 {
            (fields[7].to_string(), fields[8].parse::<Priority>()?)
        } else {
            ("default".to_string(), Priority::Normal)
        };
        Ok(WorkloadEntry {
            id,
            algorithm: fields[4].parse()?,
            iterations: fields[5].parse().map_err(|_| format!("bad iterations {:?}", fields[5]))?,
            seed: fields[6].parse().map_err(|_| format!("bad seed {:?}", fields[6]))?,
            tenant,
            priority,
        })
    }
}

/// SplitMix64 step — the deterministic draw stream of the generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Draw a `(tenant, priority)` identity: tenants `t0 .. t{tenants-1}`
/// uniformly, priorities in a 1/4 batch : 1/2 normal : 1/4 interactive mix.
fn draw_identity(state: &mut u64, tenants: usize) -> (String, Priority) {
    let tenant = format!("t{}", (splitmix64(state) as usize) % tenants.max(1));
    let priority = match splitmix64(state) % 4 {
        0 => Priority::Batch,
        3 => Priority::Interactive,
        _ => Priority::Normal,
    };
    (tenant, priority)
}

/// Generate a mixed CDD/UCDDCP workload of `count` requests, deterministic
/// in `seed`, spread over [`DEFAULT_TENANTS`] tenants. Roughly every fourth
/// request (from the fifth on) duplicates a uniformly chosen earlier
/// entry's *work* under a freshly drawn tenant/priority, guaranteeing the
/// stream contains cacheable repeats — including cross-tenant ones.
pub fn generate_mixed(count: usize, seed: u64, iterations: u64, sizes: &[usize]) -> Vec<WorkloadEntry> {
    generate_mixed_tenants(count, seed, iterations, sizes, DEFAULT_TENANTS)
}

/// Tenant-pool size used by [`generate_mixed`].
pub const DEFAULT_TENANTS: usize = 4;

/// [`generate_mixed`] with an explicit tenant-pool size.
pub fn generate_mixed_tenants(
    count: usize,
    seed: u64,
    iterations: u64,
    sizes: &[usize],
    tenants: usize,
) -> Vec<WorkloadEntry> {
    assert!(!sizes.is_empty(), "generate_mixed needs at least one size");
    let mut state = seed ^ 0x57D0_10AD;
    let mut entries: Vec<WorkloadEntry> = Vec::with_capacity(count);
    for i in 0..count {
        if i >= 4 && i % 4 == 3 {
            let j = (splitmix64(&mut state) as usize) % i;
            let mut dup = entries[j].clone();
            // Same work, fresh identity: the duplicate must collide on
            // content key even when another tenant submits it.
            let (tenant, priority) = draw_identity(&mut state, tenants);
            dup.tenant = tenant;
            dup.priority = priority;
            entries.push(dup);
            continue;
        }
        let n = sizes[(splitmix64(&mut state) as usize) % sizes.len()];
        let k = 1 + (splitmix64(&mut state) % 10) as u32;
        let id = if splitmix64(&mut state).is_multiple_of(2) {
            let h = PAPER_H_VALUES[(splitmix64(&mut state) as usize) % PAPER_H_VALUES.len()];
            InstanceId::cdd(n, k, h)
        } else {
            InstanceId::ucddcp(n, k)
        };
        let algorithm =
            if splitmix64(&mut state).is_multiple_of(2) { Algorithm::Sa } else { Algorithm::Dpso };
        let request_seed = instance_seed(seed, &id) ^ splitmix64(&mut state);
        let (tenant, priority) = draw_identity(&mut state, tenants);
        entries.push(WorkloadEntry {
            id,
            algorithm,
            iterations,
            seed: request_seed,
            tenant,
            priority,
        });
    }
    entries
}

/// [`generate_mixed_tenants`] with the duplicate branch (and any residual
/// content-key collisions) filtered out: every entry is distinct work.
/// Trace byte-stability across runs needs this — whether a repeated key is
/// served from cache or coalesced depends on arrival timing, which would
/// change the per-request flight records between otherwise identical runs.
pub fn generate_unique_tenants(
    count: usize,
    seed: u64,
    iterations: u64,
    sizes: &[usize],
    tenants: usize,
) -> Vec<WorkloadEntry> {
    let mut batch = count.max(1);
    loop {
        // ~25% of the mixed stream is duplicates, so one doubling almost
        // always suffices; the loop keeps the function total regardless.
        batch *= 2;
        let mut seen = std::collections::BTreeSet::new();
        let mut entries = Vec::with_capacity(count);
        for e in generate_mixed_tenants(batch, seed, iterations, sizes, tenants) {
            if seen.insert(e.to_request().content_key()) {
                entries.push(e);
                if entries.len() == count {
                    return entries;
                }
            }
        }
    }
}

/// Write a workload file (one line per entry, `#` header comment).
pub fn save(path: &Path, entries: &[WorkloadEntry]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = String::from("# kind n k h algorithm iterations seed tenant priority\n");
    for e in entries {
        out.push_str(&e.to_line());
        out.push('\n');
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Read a workload file (blank lines and `#` comments are skipped).
pub fn load(path: &Path) -> std::io::Result<Vec<WorkloadEntry>> {
    let text = std::fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let entry = WorkloadEntry::parse_line(line).map_err(|e| {
            Error::new(ErrorKind::InvalidData, format!("{}:{}: {e}", path.display(), lineno + 1))
        })?;
        entries.push(entry);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip_through_the_text_format() {
        let entries = generate_mixed(16, 7, 150, &[10, 20]);
        for e in &entries {
            assert_eq!(WorkloadEntry::parse_line(&e.to_line()).unwrap(), *e);
        }
        assert!(WorkloadEntry::parse_line("cdd 10 1 0.6 sa 100").is_err(), "field count");
        assert!(WorkloadEntry::parse_line("tsp 10 1 - sa 100 1 t0 normal").is_err(), "unknown kind");
        assert!(
            WorkloadEntry::parse_line("cdd 10 1 0.6 sa 100 1 t0 urgent").is_err(),
            "unknown priority"
        );
    }

    #[test]
    fn legacy_seven_field_lines_default_tenant_and_priority() {
        let e = WorkloadEntry::parse_line("cdd 10 1 0.6 sa 150 11491960066").unwrap();
        assert_eq!(e.tenant, "default");
        assert_eq!(e.priority, Priority::Normal);
        let req = e.to_request();
        assert_eq!(req.tenant, "default");
        assert_eq!(req.priority, Priority::Normal);
    }

    #[test]
    fn generation_is_deterministic_and_contains_duplicates() {
        let a = generate_mixed(32, 42, 150, &[10, 20]);
        let b = generate_mixed(32, 42, 150, &[10, 20]);
        assert_eq!(a, b);
        let work = |e: &WorkloadEntry| (e.to_line().split_whitespace().take(7).collect::<Vec<_>>()).join(" ");
        let distinct: std::collections::BTreeSet<String> = a.iter().map(work).collect();
        assert!(distinct.len() < a.len(), "the stream must contain repeated work");
        let kinds: std::collections::BTreeSet<bool> =
            a.iter().map(|e| e.id.h.is_some()).collect();
        assert_eq!(kinds.len(), 2, "both problem kinds appear");
        assert_ne!(generate_mixed(32, 43, 150, &[10, 20]), a, "seed matters");
        let tenants: std::collections::BTreeSet<&str> =
            a.iter().map(|e| e.tenant.as_str()).collect();
        assert!(tenants.len() > 1, "the stream spreads over multiple tenants: {tenants:?}");
        let priorities: std::collections::BTreeSet<Priority> =
            a.iter().map(|e| e.priority).collect();
        assert!(priorities.len() > 1, "the stream mixes priority classes");
        let pool = generate_mixed_tenants(32, 42, 150, &[10, 20], 1);
        assert!(pool.iter().all(|e| e.tenant == "t0"), "tenant pool size is honoured");
    }

    #[test]
    fn duplicates_cross_tenants_but_share_work() {
        // At least one duplicated work-item must appear under two different
        // tenant/priority identities — that is what lets the net smoke
        // assert a cross-tenant cache hit.
        let a = generate_mixed(64, 42, 150, &[10]);
        let mut by_key: std::collections::BTreeMap<u64, std::collections::BTreeSet<String>> =
            Default::default();
        for e in &a {
            by_key
                .entry(e.to_request().content_key())
                .or_default()
                .insert(format!("{}/{}", e.tenant, e.priority));
        }
        assert!(
            by_key.values().any(|idents| idents.len() > 1),
            "some duplicated work must carry a different identity"
        );
    }

    #[test]
    fn files_round_trip() {
        let dir = std::env::temp_dir().join(format!("cdd-workload-{}", std::process::id()));
        let path = dir.join("w.txt");
        let entries = generate_mixed(12, 3, 100, &[10]);
        save(&path, &entries).unwrap();
        assert_eq!(load(&path).unwrap(), entries);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_entries_share_a_content_key() {
        let entries = generate_mixed(32, 5, 120, &[10]);
        let keys: Vec<u64> = entries.iter().map(|e| e.to_request().content_key()).collect();
        let distinct: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert!(distinct.len() < keys.len(), "verbatim repeats must collide on content key");
    }
}
