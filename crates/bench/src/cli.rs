//! A tiny flag parser shared by the bench binaries (no external CLI crate —
//! the offline dependency list is kept minimal).

use std::collections::BTreeMap;

/// Parsed command-line arguments: `--key value` pairs and bare `--flags`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse the process arguments. `--key value` and `--key=value` both
    /// work; a `--key` followed by another `--…` (or nothing) is a flag.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                eprintln!("warning: ignoring positional argument {a:?}");
                continue;
            };
            if let Some((k, v)) = key.split_once('=') {
                args.values.insert(k.to_string(), v.to_string());
            } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                args.values.insert(key.to_string(), it.next().expect("peeked"));
            } else {
                args.flags.push(key.to_string());
            }
        }
        args
    }

    /// Whether the bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String value of `--name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Parsed value of `--name`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(s) => s.parse().unwrap_or_else(|_| {
                panic!("--{name}: cannot parse {s:?} as {}", std::any::type_name::<T>())
            }),
            None => default,
        }
    }

    /// Comma-separated list of `--name`, or `default`.
    pub fn get_list_or<T: std::str::FromStr>(&self, name: &str, default: &[T]) -> Vec<T>
    where
        T: Clone,
    {
        match self.get(name) {
            Some(s) => s
                .split(',')
                .map(|x| {
                    x.trim().parse().unwrap_or_else(|_| {
                        panic!("--{name}: cannot parse element {x:?}")
                    })
                })
                .collect(),
            None => default.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_key_value_and_flags() {
        let a = args(&["--sizes", "10,20", "--full", "--seed=7"]);
        assert_eq!(a.get("sizes"), Some("10,20"));
        assert!(a.flag("full"));
        assert_eq!(a.get_or("seed", 0u64), 7);
        assert!(!a.flag("quick"));
    }

    #[test]
    fn list_parsing() {
        let a = args(&["--sizes", "10, 20,50"]);
        assert_eq!(a.get_list_or("sizes", &[1usize]), vec![10, 20, 50]);
        assert_eq!(a.get_list_or("gens", &[1000u64, 5000]), vec![1000, 5000]);
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.get_or("threads", 768usize), 768);
        assert!(a.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_value_panics() {
        args(&["--seed", "x"]).get_or("seed", 0u64);
    }
}
