//! A tiny flag parser shared by the bench binaries (no external CLI crate —
//! the offline dependency list is kept minimal), plus the flag→config
//! helpers every campaign binary shares ([`campaign_from_args`],
//! [`fault_plan_from_args`]) so the fault/seed/geometry flags are parsed in
//! exactly one place.

use crate::campaign::CampaignConfig;
use cdd_instances::PAPER_SIZES;
use cuda_sim::{FaultPlan, SimParallelism};
use std::collections::BTreeMap;

/// Parsed command-line arguments: `--key value` pairs and bare `--flags`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse the process arguments. `--key value` and `--key=value` both
    /// work; a `--key` followed by another `--…` (or nothing) is a flag.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Whether the bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String value of `--name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Parsed value of `--name`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(s) => s.parse().unwrap_or_else(|_| {
                panic!("--{name}: cannot parse {s:?} as {}", std::any::type_name::<T>())
            }),
            None => default,
        }
    }

    /// Comma-separated list of `--name`, or `default`.
    pub fn get_list_or<T>(&self, name: &str, default: &[T]) -> Vec<T>
    where
        T: std::str::FromStr + Clone,
    {
        match self.get(name) {
            Some(s) => s
                .split(',')
                .map(|x| {
                    x.trim().parse().unwrap_or_else(|_| {
                        panic!("--{name}: cannot parse element {x:?}")
                    })
                })
                .collect(),
            None => default.to_vec(),
        }
    }
}

/// Parse from an explicit iterator (testable) — same grammar as
/// [`Args::parse`].
impl FromIterator<String> for Args {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                eprintln!("warning: ignoring positional argument {a:?}");
                continue;
            };
            if let Some((k, v)) = key.split_once('=') {
                args.values.insert(k.to_string(), v.to_string());
            } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                args.values.insert(key.to_string(), it.next().expect("peeked"));
            } else {
                args.flags.push(key.to_string());
            }
        }
        args
    }
}

/// Build a fault plan from the shared CLI flags (`--fault-seed`,
/// `--launch-failure-rate`, `--bit-flip-rate`, `--hang-rate`,
/// `--worker-crash-rate`, `--worker-crash-horizon`); all-zero rates mean a
/// clean device (`None`).
pub fn fault_plan_from_args(args: &Args) -> Option<FaultPlan> {
    let launch_failure = args.get_or("launch-failure-rate", 0.0f64);
    let bit_flip = args.get_or("bit-flip-rate", 0.0f64);
    let hang = args.get_or("hang-rate", 0.0f64);
    let worker_crash = args.get_or("worker-crash-rate", 0.0f64);
    if launch_failure == 0.0 && bit_flip == 0.0 && hang == 0.0 && worker_crash == 0.0 {
        return None;
    }
    Some(
        FaultPlan::with_rates(
            args.get_or("fault-seed", 0xFA17u64),
            launch_failure,
            bit_flip,
            hang,
        )
        .with_worker_crash(worker_crash, args.get_or("worker-crash-horizon", 128u64)),
    )
}

/// Resolve the simulator's host-thread setting: the `--sim-threads` flag
/// (`serial`, `auto`, or a count) wins over the `CDD_SIM_THREADS`
/// environment variable; both default to `serial`. Every setting is
/// byte-identical in results — the knob only changes wall-clock time
/// (DESIGN.md §11).
pub fn sim_parallelism_from_args(args: &Args) -> SimParallelism {
    match args.get("sim-threads") {
        Some(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("--sim-threads: {e}")),
        None => SimParallelism::from_env().unwrap_or_default(),
    }
}

/// Parse the campaign flags shared by every table/figure binary — `--sizes`
/// (or `--full` for the paper's complete sweep), `--blocks`, `--block-size`,
/// `--seed`, `--sim-threads` and the fault-injection flags — into a
/// [`CampaignConfig`]. `default_sizes` is the binary's reduced default
/// sweep.
pub fn campaign_from_args(args: &Args, default_sizes: &[usize]) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        sizes: if args.flag("full") {
            PAPER_SIZES.to_vec()
        } else {
            args.get_list_or("sizes", default_sizes)
        },
        blocks: args.get_or("blocks", 4usize),
        block_size: args.get_or("block-size", 192usize),
        seed: args.get_or("seed", 2016u64),
        fault: fault_plan_from_args(args),
        ..Default::default()
    };
    cfg.device.parallelism = sim_parallelism_from_args(args);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_key_value_and_flags() {
        let a = args(&["--sizes", "10,20", "--full", "--seed=7"]);
        assert_eq!(a.get("sizes"), Some("10,20"));
        assert!(a.flag("full"));
        assert_eq!(a.get_or("seed", 0u64), 7);
        assert!(!a.flag("quick"));
    }

    #[test]
    fn list_parsing() {
        let a = args(&["--sizes", "10, 20,50"]);
        assert_eq!(a.get_list_or("sizes", &[1usize]), vec![10, 20, 50]);
        assert_eq!(a.get_list_or("gens", &[1000u64, 5000]), vec![1000, 5000]);
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.get_or("threads", 768usize), 768);
        assert!(a.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_value_panics() {
        args(&["--seed", "x"]).get_or("seed", 0u64);
    }

    #[test]
    fn campaign_flags_parse_into_one_config() {
        let cfg = campaign_from_args(
            &args(&["--sizes", "10,20", "--blocks", "2", "--block-size", "64", "--seed", "9"]),
            &[10, 20, 50],
        );
        assert_eq!(cfg.sizes, vec![10, 20]);
        assert_eq!(cfg.blocks, 2);
        assert_eq!(cfg.block_size, 64);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.fault.is_none());

        let defaulted = campaign_from_args(&args(&[]), &[10, 20, 50]);
        assert_eq!(defaulted.sizes, vec![10, 20, 50]);
        assert_eq!(defaulted.ensemble(), 768, "paper geometry by default");

        let full = campaign_from_args(&args(&["--full", "--launch-failure-rate", "0.05"]), &[10]);
        assert_eq!(full.sizes, PAPER_SIZES.to_vec());
        assert!(full.fault.as_ref().is_some_and(FaultPlan::is_active));
    }

    #[test]
    fn sim_threads_flag_parses_all_spellings() {
        assert_eq!(
            sim_parallelism_from_args(&args(&["--sim-threads", "serial"])),
            SimParallelism::Serial
        );
        assert_eq!(
            sim_parallelism_from_args(&args(&["--sim-threads", "auto"])),
            SimParallelism::Auto
        );
        assert_eq!(
            sim_parallelism_from_args(&args(&["--sim-threads=4"])),
            SimParallelism::Threads(4)
        );
        let cfg = campaign_from_args(&args(&["--sim-threads", "2"]), &[10]);
        assert_eq!(cfg.device.parallelism, SimParallelism::Threads(2));
    }

    #[test]
    #[should_panic(expected = "--sim-threads")]
    fn sim_threads_rejects_garbage() {
        sim_parallelism_from_args(&args(&["--sim-threads", "lots"]));
    }
}
