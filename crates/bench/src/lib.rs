//! # cdd-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section VIII). Each binary under `src/bin/` produces
//! one artifact; results land in `results/` as CSV plus a rendered markdown
//! table on stdout. `EXPERIMENTS.md` records the paper-vs-measured
//! comparison.
//!
//! | binary | regenerates |
//! |---|---|
//! | `make_best_known` | the best-known table all `%Δ` values refer to |
//! | `table2_cdd_quality` | Table II + Fig. 12 (CDD `%Δ` per size) |
//! | `table3_cdd_speedup` | Table III + Figs. 13–14 (CDD speed-ups & runtimes) |
//! | `table4_ucddcp_quality` | Table IV + Fig. 15 (UCDDCP `%Δ`) |
//! | `table5_ucddcp_speedup` | Table V + Figs. 16–17 (UCDDCP speed-ups & runtimes) |
//! | `fig11_surface` | Fig. 11 (runtime vs threads × generations) |
//! | `ablation_async_vs_sync` | the Fig. 7/8 design choice (async over sync) |
//! | `ablation_lp_vs_linear` | Section III's LP-vs-linear-algorithm claim |
//! | `ablation_cooling` | Section VI's cooling-rate choice (μ = 0.88) |
//! | `tuning_block_size` | Section VIII's block-size finding (192 beats 1024) |
//! | `fig12_convergence` | per-generation convergence curves + trajectory summaries |
//! | `make_workload` | a mixed CDD/UCDDCP request stream for `cdd-serve` |
//!
//! Every binary accepts `--help`-documented flags; the defaults run a
//! reduced campaign (small sizes, few instances) sized for a laptop, and
//! `--full` switches to the paper's complete suite.

pub mod campaign;
pub mod cli;
pub mod convergence;
pub mod journal;
pub mod observer;
pub mod report;
pub mod workload;

pub use campaign::{
    cpu_baseline_seconds, gpu_algorithms, run_algo_on_instance, AlgoKind, CampaignConfig,
    CpuBaseline, QualityRow, SpeedupRow,
};
pub use cli::{campaign_from_args, fault_plan_from_args, sim_parallelism_from_args, Args};
pub use journal::{CellRecord, Journal};
pub use observer::{CampaignObserver, CellSource};
pub use report::{render_markdown, results_dir, write_csv, Table};
pub use workload::WorkloadEntry;
