//! Campaign-level observability: fold each cell's profiler timeline into a
//! [`MetricsRegistry`] and, when a trace output was requested, a
//! single-track Chrome `trace_event` timeline whose cells are laid
//! end-to-end on the modeled clock (campaigns run cells sequentially, so
//! one track is the faithful rendering).
//!
//! Naming: `campaign_*` series are counts of cells, kernel launches and
//! injected faults plus modeled-time histograms — all derived from the
//! deterministic simulation, never from the wall clock, so two runs of the
//! same campaign configuration render identical snapshots.

use crate::cli::{sim_parallelism_from_args, Args};
use crate::journal::CellRecord;
use cdd_gpu::GpuRunResult;
use cdd_metrics::trace::{TraceEvent, TraceSink};
use cdd_metrics::{modeled_seconds_buckets, MetricsRegistry};
use cuda_sim::{observe_timeline, timeline_trace_events};
use std::io;
use std::path::{Path, PathBuf};

/// Where a cell's result came from, for the `source` label on
/// `campaign_cells_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Freshly executed this invocation.
    Executed,
    /// Replayed from a resume journal.
    Replayed,
}

impl CellSource {
    fn label(self) -> &'static str {
        match self {
            CellSource::Executed => "executed",
            CellSource::Replayed => "journal",
        }
    }
}

/// Collects campaign metrics and an optional modeled-clock trace, and
/// writes them to the paths given on the command line at [`finish`].
///
/// [`finish`]: CampaignObserver::finish
#[derive(Debug, Default)]
pub struct CampaignObserver {
    registry: MetricsRegistry,
    trace: TraceSink,
    clock_us: f64,
    capture_trace: bool,
    metrics_out: Option<PathBuf>,
    metrics_json: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    trace_jsonl: Option<PathBuf>,
}

impl CampaignObserver {
    /// An observer with no outputs configured — metrics are still collected
    /// (readable via [`registry`](Self::registry)), trace capture is off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from the shared CLI flags: `--metrics-out` (Prometheus text),
    /// `--metrics-json`, `--trace-out` (Chrome JSON), `--trace-jsonl`.
    /// Trace capture is enabled only when a trace path was requested.
    #[must_use]
    pub fn from_args(args: &Args) -> Self {
        let trace_out = args.get("trace-out").map(PathBuf::from);
        let trace_jsonl = args.get("trace-jsonl").map(PathBuf::from);
        let capture_trace = trace_out.is_some() || trace_jsonl.is_some();
        let mut observer = CampaignObserver {
            capture_trace,
            metrics_out: args.get("metrics-out").map(PathBuf::from),
            metrics_json: args.get("metrics-json").map(PathBuf::from),
            trace_out,
            trace_jsonl,
            ..Self::default()
        };
        if capture_trace {
            observer.trace.name_process(0, "cdd-bench");
            observer.trace.name_track(0, 0, "campaign");
        }
        // Record the host-parallelism setting in every metrics snapshot so
        // a summary is self-describing about how it was produced. The knob
        // never changes any `campaign_*`/`sim_*` series (DESIGN.md §11).
        let par = sim_parallelism_from_args(args);
        observer.registry.set_gauge(
            "campaign_sim_threads",
            &[("setting", &par.to_string())],
            par.resolve() as f64,
        );
        observer
    }

    /// Fold one executed run into the registry (per-kernel histograms,
    /// transfer counters, fault totals) and append its timeline to the
    /// campaign track, wrapped in a `label` span.
    pub fn record_run(&mut self, label: &str, r: &GpuRunResult) {
        observe_timeline(&mut self.registry, &r.timeline);
        r.recovery.faults.observe_into(&mut self.registry, "campaign_fault", &[]);
        if self.capture_trace && !r.timeline.is_empty() {
            self.trace.push(TraceEvent::begin(label, "cell", 0, 0, self.clock_us));
            let (events, end_us) = timeline_trace_events(&r.timeline, 0, 0, self.clock_us);
            self.trace.extend(events);
            self.trace.push(TraceEvent::end(label, "cell", 0, 0, end_us));
            self.clock_us = end_us;
        }
    }

    /// Count one completed cell (fresh or journal-replayed) and observe its
    /// modeled-time split. Replayed cells carry their metrics in the
    /// journal record, so resumed and uninterrupted campaigns converge on
    /// the same snapshot.
    pub fn record_cell(&mut self, rec: &CellRecord, source: CellSource) {
        self.registry.inc(
            "campaign_cells_total",
            &[("source", source.label()), ("status", &rec.status)],
            1,
        );
        self.registry.inc("campaign_kernel_launches_total", &[], rec.kernel_launches);
        self.registry.inc("campaign_faults_injected_total", &[], rec.faults_injected);
        let buckets = modeled_seconds_buckets();
        self.registry.observe("campaign_cell_modeled_seconds", &[], rec.modeled_seconds, buckets);
        self.registry.observe("campaign_cell_kernel_seconds", &[], rec.kernel_seconds, buckets);
        self.registry.observe("campaign_cell_transfer_seconds", &[], rec.transfer_seconds, buckets);
    }

    /// Count a cell that failed terminally (no record to fold).
    pub fn record_failure(&mut self) {
        self.registry.inc(
            "campaign_cells_total",
            &[("source", CellSource::Executed.label()), ("status", "failed")],
            1,
        );
    }

    /// The collected metrics.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The collected trace (empty unless capture was enabled).
    #[must_use]
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Write every configured output. A no-op when no paths were given.
    pub fn finish(&self) -> io::Result<()> {
        if let Some(path) = &self.metrics_out {
            write_text(path, &self.registry.render_prometheus())?;
            eprintln!("metrics: {}", path.display());
        }
        if let Some(path) = &self.metrics_json {
            write_text(path, &self.registry.render_json())?;
        }
        if let Some(path) = &self.trace_out {
            write_text(path, &self.trace.render_chrome_json())?;
            eprintln!(
                "trace: {} ({} events; load in chrome://tracing or ui.perfetto.dev)",
                path.display(),
                self.trace.len()
            );
        }
        if let Some(path) = &self.trace_jsonl {
            write_text(path, &self.trace.render_jsonl())?;
        }
        Ok(())
    }
}

fn write_text(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_algo_on_instance, AlgoKind, CampaignConfig};
    use cdd_core::Instance;

    fn small_run() -> GpuRunResult {
        let cfg = CampaignConfig { blocks: 1, block_size: 16, ..Default::default() };
        run_algo_on_instance(&Instance::paper_example_cdd(), AlgoKind::Sa1000, &cfg, 5)
            .expect("clean device run succeeds")
    }

    fn cell_of(r: &GpuRunResult) -> CellRecord {
        CellRecord {
            instance: "cdd-n8".into(),
            algo: "SA1000".into(),
            seed: 5,
            objective: r.objective,
            modeled_seconds: r.modeled_seconds,
            kernel_seconds: r.kernel_seconds,
            transfer_seconds: r.transfer_seconds,
            kernel_launches: r.kernel_launches as u64,
            faults_injected: 0,
            status: "ok".into(),
        }
    }

    #[test]
    fn record_run_folds_timeline_into_registry() {
        let r = small_run();
        let mut obs = CampaignObserver::new();
        obs.record_run("cdd-n8/SA1000", &r);
        obs.record_cell(&cell_of(&r), CellSource::Executed);
        let text = obs.registry().render_prometheus();
        assert!(text.contains("sim_kernel_launches_total"), "timeline folded:\n{text}");
        assert!(text.contains("campaign_cells_total{source=\"executed\",status=\"ok\"} 1"));
        assert!(text.contains("campaign_fault_launches_attempted_total"));
        assert!(obs.trace().is_empty(), "capture off by default");
    }

    #[test]
    fn replayed_cells_reach_the_same_counters_without_a_run() {
        let r = small_run();
        let mut fresh = CampaignObserver::new();
        fresh.record_cell(&cell_of(&r), CellSource::Executed);
        let mut resumed = CampaignObserver::new();
        resumed.record_cell(&cell_of(&r), CellSource::Replayed);
        let total = |o: &CampaignObserver| {
            o.registry().counter("campaign_kernel_launches_total", &[])
        };
        assert_eq!(total(&fresh), total(&resumed));
    }

    #[test]
    fn trace_capture_chains_cells_on_one_track() {
        let r = small_run();
        let args = Args::from_iter(["--trace-out", "/dev/null"].map(String::from));
        let mut obs = CampaignObserver::from_args(&args);
        obs.record_run("a", &r);
        obs.record_run("b", &r);
        let events = obs.trace().events();
        assert!(events.iter().all(|e| e.pid == 0 && e.tid == 0), "single track");
        let cells: Vec<_> = events.iter().filter(|e| e.cat == "cell").collect();
        assert_eq!(cells.len(), 4, "B/E span pair per cell");
        let (a_end, b_begin) = (cells[1], cells[2]);
        assert_eq!((a_end.ph, b_begin.ph), ('E', 'B'));
        assert_eq!(a_end.ts_us, b_begin.ts_us, "cell b starts where cell a ended");
        assert!(a_end.ts_us > 0.0, "cell a has modeled extent");
    }
}
