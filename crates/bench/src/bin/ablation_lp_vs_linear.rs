//! **Section III ablation** — "LP solvers are quite slow when run
//! iteratively on some general heuristic algorithm": compare the two-phase
//! simplex on the fixed-sequence LP against the O(n) algorithms, on both
//! runtime and (identical) optima.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin ablation_lp_vs_linear -- \
//!     [--sizes 10,20,40,60] [--reps 50]
//! ```

use cdd_bench::{render_markdown, results_dir, write_csv, Args, Table};
use cdd_core::{optimize_cdd_sequence, optimize_ucddcp_sequence, JobSequence};
use cdd_instances::{cdd_instance, ucddcp_instance};
use cdd_lp::{solve_cdd_sequence_lp, solve_ucddcp_sequence_lp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let sizes = args.get_list_or("sizes", &[10usize, 20, 40, 60]);
    let reps = args.get_or("reps", 50u32);
    let seed = args.get_or("seed", 2016u64);

    let mut table = Table::new(vec![
        "Jobs",
        "problem",
        "linear-us",
        "simplex-us",
        "slowdown-x",
        "avg-pivots",
        "optima-agree",
    ]);

    for &n in &sizes {
        for problem in ["cdd", "ucddcp"] {
            let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
            let inst = if problem == "cdd" {
                cdd_instance(n, 1, 0.6)
            } else {
                ucddcp_instance(n, 1)
            };
            let seqs: Vec<JobSequence> =
                (0..reps).map(|_| JobSequence::random(n, &mut rng)).collect();

            let t = Instant::now();
            let linear: Vec<i64> = seqs
                .iter()
                .map(|s| {
                    if problem == "cdd" {
                        optimize_cdd_sequence(&inst, s).objective
                    } else {
                        optimize_ucddcp_sequence(&inst, s).objective
                    }
                })
                .collect();
            let linear_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;

            let t = Instant::now();
            let mut pivots = 0usize;
            let lp: Vec<f64> = seqs
                .iter()
                .map(|s| {
                    let sol = if problem == "cdd" {
                        solve_cdd_sequence_lp(&inst, s).expect("feasible LP")
                    } else {
                        solve_ucddcp_sequence_lp(&inst, s).expect("feasible LP")
                    };
                    pivots += sol.pivots;
                    sol.objective
                })
                .collect();
            let simplex_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;

            let agree = linear
                .iter()
                .zip(&lp)
                .all(|(&a, &b)| (a as f64 - b).abs() < 1e-5);
            table.push(vec![
                n.to_string(),
                problem.to_string(),
                format!("{linear_us:.1}"),
                format!("{simplex_us:.1}"),
                format!("{:.0}", simplex_us / linear_us.max(1e-9)),
                format!("{:.0}", pivots as f64 / reps as f64),
                agree.to_string(),
            ]);
            eprintln!("  n = {n} ({problem}): done");
        }
    }

    println!("\nLP (two-phase simplex) vs O(n) linear algorithm, per sequence optimization:\n");
    println!("{}", render_markdown(&table));
    println!(
        "Identical optima, orders-of-magnitude slower LP — the reason the paper's layer (ii) \
         uses the specialized linear algorithms of [7]/[8]."
    );
    write_csv(&table, &results_dir().join("ablation_lp_vs_linear.csv")).expect("write results");
}
