//! **Fig. 12 (trajectory view)** — per-generation convergence curves for
//! the SA and DPSO ensembles, from the device-resident telemetry ring
//! (DESIGN.md §10). Where `table2_cdd_quality` reports the *endpoint* `%Δ`
//! of Fig. 12, this binary records *how* each ensemble got there:
//! ensemble-best descent, acceptance-rate decay and diversity collapse,
//! per instance size.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin fig12_convergence -- \
//!     [--sizes 10,20,50] [--iters 400] [--stride 4] [--seed 2016] \
//!     [--blocks 1] [--block-size 64] \
//!     [--convergence-out results/fig12_convergence_curves.csv] \
//!     [--summary results/fig12_convergence_summary.json]
//! ```
//!
//! Outputs:
//! - a curves CSV (one row per `(instance, algorithm, sampled
//!   generation)`, ensemble aggregates only) at `--convergence-out`;
//! - a JSON summary (`generations_to_within_1pct`,
//!   `stalled_chain_fraction`, `acceptance_rate_final`,
//!   `diversity_collapse_gen` per run) at `--summary`;
//! - a markdown summary table on stdout.
//!
//! Both files are byte-identical across runs of the same flags — the
//! pipelines are deterministic and sampling never perturbs them — which
//! the CI `convergence-smoke` job checks with a literal byte diff.

use cdd_bench::convergence::{
    curve_headers, push_curve_rows, summary_headers, summary_object, summary_row,
};
use cdd_bench::{render_markdown, results_dir, write_csv, Args, Table};
use cdd_gpu::{run_gpu_dpso, run_gpu_sa, ConvergenceTrace, GpuDpsoParams, GpuSaParams};
use cdd_instances::InstanceId;
use cuda_sim::TelemetryConfig;
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let sizes = args.get_list_or("sizes", &[10usize, 20, 50]);
    let iters = args.get_or("iters", 400u64);
    let stride = args.get_or("stride", (iters / 100).max(1));
    let seed = args.get_or("seed", 2016u64);
    let blocks = args.get_or("blocks", 1usize);
    let block_size = args.get_or("block-size", 64usize);
    let telemetry = TelemetryConfig::every(stride.max(1));

    let mut curves = Table::new(curve_headers());
    let mut summary_table = Table::new(summary_headers());
    let mut summaries: Vec<String> = Vec::new();
    let mut record = |label: &str, trace: Option<&ConvergenceTrace>| match trace {
        Some(t) => {
            push_curve_rows(&mut curves, label, t);
            summary_table.push(summary_row(label, t));
            summaries.push(format!("  {}", summary_object(label, t)));
        }
        // Only a CPU-fallback run (impossible without fault injection)
        // returns no trace; surface it rather than emit a silent gap.
        None => eprintln!("  {label}: no trace (cpu fallback?)"),
    };

    for &n in &sizes {
        let id = InstanceId::cdd(n, 1, 0.6);
        let inst = id.instantiate();
        let sa = run_gpu_sa(
            &inst,
            &GpuSaParams { blocks, block_size, iterations: iters, seed, telemetry, ..Default::default() },
        )
        .expect("sa pipeline runs");
        record(&format!("{id}/sa"), sa.convergence.as_ref());
        let dpso = run_gpu_dpso(
            &inst,
            &GpuDpsoParams { blocks, block_size, iterations: iters, seed, telemetry, ..Default::default() },
        )
        .expect("dpso pipeline runs");
        record(&format!("{id}/dpso"), dpso.convergence.as_ref());
        eprintln!("  n={n}: done");
    }

    println!(
        "\nConvergence trajectories ({}x{block_size} chains, {iters} generations, stride {stride}):\n",
        blocks
    );
    println!("{}", render_markdown(&summary_table));

    let curves_path = args
        .get("convergence-out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("fig12_convergence_curves.csv"));
    write_csv(&curves, &curves_path).expect("curves CSV writable");

    let summary_path = args
        .get("summary")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("fig12_convergence_summary.json"));
    let json = format!("{{\"runs\": [\n{}\n]}}\n", summaries.join(",\n"));
    if let Some(dir) = summary_path.parent() {
        std::fs::create_dir_all(dir).expect("summary dir creatable");
    }
    std::fs::write(&summary_path, json).expect("summary writable");

    println!("curves: {} | summary: {}", curves_path.display(), summary_path.display());
}
