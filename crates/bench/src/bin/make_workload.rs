//! Generate a mixed CDD/UCDDCP request stream for the solver service
//! (`cdd-serve --workload …`).
//!
//! ```text
//! cargo run --release -p cdd-bench --bin make_workload -- \
//!     [--requests 64] [--seed 2016] [--iterations 150] [--sizes 10,20] \
//!     [--out results/workload.txt]
//! ```
//!
//! About a quarter of the stream repeats earlier requests verbatim, so a
//! replay through `cdd-serve` exercises the solution cache.

use cdd_bench::workload::{generate_mixed, save, WorkloadEntry};
use cdd_bench::{results_dir, Args};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let requests = args.get_or("requests", 64usize);
    let seed = args.get_or("seed", 2016u64);
    let iterations = args.get_or("iterations", 150u64);
    let sizes = args.get_list_or("sizes", &[10usize, 20]);
    let out = args
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("workload.txt"));

    let entries = generate_mixed(requests, seed, iterations, &sizes);
    save(&out, &entries).expect("workload file writable");

    let distinct: BTreeSet<String> = entries.iter().map(WorkloadEntry::to_line).collect();
    println!(
        "wrote {} requests ({} distinct, {} duplicates) to {}",
        entries.len(),
        distinct.len(),
        entries.len() - distinct.len(),
        out.display()
    );
}
