//! Generate a mixed CDD/UCDDCP request stream for the solver service
//! (`cdd-serve --workload …`).
//!
//! ```text
//! cargo run --release -p cdd-bench --bin make_workload -- \
//!     [--requests 64] [--seed 2016] [--iterations 150] [--sizes 10,20] \
//!     [--tenants 4] [--unique] [--out results/workload.txt]
//! ```
//!
//! About a quarter of the stream repeats earlier requests' work (under a
//! freshly drawn tenant/priority identity), so a replay through `cdd-serve`
//! or the `cdd-node`/`cdd-router` socket path exercises the solution cache
//! — including cross-tenant deduplication. `--unique` disables the repeats
//! (every entry is distinct work), which the trace-stability smoke needs:
//! cache-hit vs coalesced classification of a repeated key depends on
//! arrival timing, so duplicate work would perturb flight records between
//! otherwise identical runs.

use cdd_bench::workload::{generate_mixed_tenants, generate_unique_tenants, save, DEFAULT_TENANTS};
use cdd_bench::{results_dir, Args};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let requests = args.get_or("requests", 64usize);
    let seed = args.get_or("seed", 2016u64);
    let iterations = args.get_or("iterations", 150u64);
    let sizes = args.get_list_or("sizes", &[10usize, 20]);
    let tenants = args.get_or("tenants", DEFAULT_TENANTS);
    let out = args
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("workload.txt"));

    let entries = if args.flag("unique") {
        generate_unique_tenants(requests, seed, iterations, &sizes, tenants)
    } else {
        generate_mixed_tenants(requests, seed, iterations, &sizes, tenants)
    };
    save(&out, &entries).expect("workload file writable");

    let distinct: BTreeSet<u64> = entries.iter().map(|e| e.to_request().content_key()).collect();
    let mut per_tenant: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &entries {
        *per_tenant.entry(e.tenant.as_str()).or_insert(0) += 1;
    }
    println!(
        "wrote {} requests ({} distinct work items, {} duplicates) to {}",
        entries.len(),
        distinct.len(),
        entries.len() - distinct.len(),
        out.display()
    );
    let breakdown: Vec<String> =
        per_tenant.iter().map(|(t, c)| format!("{t}: {c}")).collect();
    println!("tenants: {}", breakdown.join(", "));
}
