//! **Table IV / Fig. 15** — average `%Δ` of the four parallel algorithms on
//! the UCDDCP benchmark, per job size, relative to the best-known table.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin table4_ucddcp_quality -- \
//!     [--sizes 10,20,50,100,200] [--ks 1,2,3] [--full] \
//!     [--fault-seed S --launch-failure-rate P --bit-flip-rate P --hang-rate P] \
//!     [--resume] [--max-cells N]
//! ```
//!
//! Completed cells are journaled to
//! `results/table4_ucddcp_quality.journal.jsonl`; `--resume` continues a
//! killed campaign with byte-identical CSVs, `--max-cells` bounds the cells
//! executed per invocation.
//!
//! Paper shape to reproduce: SA₅₀₀₀ can *beat* the best-known values
//! (negative `%Δ`) because the reference is a finite-budget CPU heuristic,
//! while DPSO again degrades with size.

use cdd_bench::campaign::{best_known_path, ensure_best_known, run_quality_suite};
use cdd_bench::{
    campaign_from_args, render_markdown, results_dir, write_csv, Args, CampaignObserver, Journal,
    Table,
};
use cdd_instances::{BestKnown, InstanceId};

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let cfg = campaign_from_args(&args, &[10, 20, 50, 100]);
    let ks: Vec<u32> =
        if full { (1..=10).collect() } else { args.get_list_or("ks", &[1u32, 2]) };

    let mut ids: Vec<InstanceId> = Vec::new();
    for &n in &cfg.sizes {
        for &k in &ks {
            ids.push(InstanceId::ucddcp(n, k));
        }
    }

    let path = best_known_path();
    let mut best = BestKnown::load(&path).expect("best-known file readable");
    let computed = ensure_best_known(&ids, &mut best, 24, 8000);
    if computed > 0 {
        best.save(&path).expect("best-known file writable");
    }

    eprintln!(
        "Table IV campaign: {} instances x 4 algorithms, ensemble {}",
        ids.len(),
        cfg.ensemble()
    );
    if let Some(plan) = &cfg.fault {
        eprintln!("fault injection: {plan:?}");
    }
    let journal_path = results_dir().join("table4_ucddcp_quality.journal.jsonl");
    let mut journal =
        Journal::open(&journal_path, args.flag("resume")).expect("journal readable");
    if !journal.is_empty() {
        eprintln!("resuming: {} cells replayed from {}", journal.len(), journal_path.display());
    }
    let max_cells = args.get("max-cells").map(|s| s.parse().expect("--max-cells: integer"));
    let mut observer = CampaignObserver::from_args(&args);
    let (rows, detail) =
        run_quality_suite(&cfg, &ids, &best, Some(&mut journal), max_cells, Some(&mut observer));
    observer.finish().expect("metrics/trace outputs writable");

    let mut table = Table::new(vec!["Jobs", "SA1000", "SA5000", "DPSO1000", "DPSO5000"]);
    for r in &rows {
        let mut cells = vec![r.n.to_string()];
        cells.extend(r.deltas.iter().map(|d| format!("{d:.3}")));
        table.push(cells);
    }

    println!("\nTable IV — average %Δ per job size (UCDDCP), relative to best-known:\n");
    println!("{}", render_markdown(&table));
    println!("(negative values improve on the best-known reference, as in the paper's Fig. 15)");

    write_csv(&table, &results_dir().join("table4_ucddcp_quality.csv")).expect("write results");
    write_csv(&detail, &results_dir().join("table4_ucddcp_quality_detail.csv"))
        .expect("write results");
}
