//! **Wall-clock benchmark snapshot** for the parallel block-dispatch engine
//! (DESIGN.md §11): measures *host* wall-clock time of the GPU SA pipeline
//! across `--threads` settings while asserting that every deterministic
//! output — objective, winning sequence, evaluation and launch counts, and
//! the modeled clocks bit-for-bit — is byte-identical to the serial engine.
//!
//! Wall-clock numbers are honest measurements of *this* host and are
//! reported next to its core count: on a single-core container the parallel
//! settings cannot speed anything up (they measure dispatch overhead
//! instead), and the snapshot says so rather than extrapolating.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin bench_snapshot -- \
//!     [--sizes 50,200,500] [--threads 1,2,4,8] [--iterations 100] \
//!     [--repeats 3] [--out BENCH_pr5.json] [--deterministic-out det.json]
//! ```
//!
//! `--out` gets the full snapshot (wall-clock included); the optional
//! `--deterministic-out` gets only the thread-count-invariant fields, which
//! CI byte-diffs across runs and thread settings.
//!
//! **`--batch` mode (BENCH_pr8, DESIGN.md §14)** replays a small-`n`
//! seed-sweep workload through the service's fused dispatch path
//! (`cdd_gpu::run_gpu_solve_batch`, the call the worker loop makes after
//! draining its batching window) at several window settings and with delta
//! evaluation on, measuring how cross-request launch fusion amortizes the
//! per-kernel dispatch overhead that dominates small-`n` wall time. Every
//! setting's sorted outcome set is hashed and asserted byte-identical to
//! the unbatched baseline before the snapshot is written:
//!
//! ```text
//! cargo run --release -p cdd-bench --bin bench_snapshot -- --batch \
//!     [--requests 64] [--n 12] [--iterations 120] [--seed 2016] \
//!     [--windows 1,4,8] [--repeats 2] [--out BENCH_pr8.json]
//! ```

use cdd_bench::{results_dir, Args};
use cdd_core::{Algorithm, Instance};
use cdd_gpu::{
    run_gpu_sa, run_gpu_solve_batch, Backend, DeltaConfig, GpuRunResult, GpuSaParams,
    GpuSolveSpec,
};
use cdd_instances::{cdd_instance, InstanceId};
use cuda_sim::SimParallelism;
use std::fmt::Write as _;
use std::time::Instant;

/// The thread-count-invariant outputs of one run (the determinism
/// contract's observable surface at this level).
#[derive(PartialEq, Clone)]
struct Deterministic {
    objective: i64,
    best: Vec<u32>,
    evaluations: u64,
    kernel_launches: usize,
    modeled_bits: u64,
    kernel_bits: u64,
    transfer_bits: u64,
}

impl Deterministic {
    fn of(r: &GpuRunResult) -> Self {
        Deterministic {
            objective: r.objective,
            best: r.best.as_slice().to_vec(),
            evaluations: r.evaluations,
            kernel_launches: r.kernel_launches,
            modeled_bits: r.modeled_seconds.to_bits(),
            kernel_bits: r.kernel_seconds.to_bits(),
            transfer_bits: r.transfer_seconds.to_bits(),
        }
    }

    fn to_json(&self, n: usize) -> String {
        format!(
            "{{\"n\":{},\"objective\":{},\"evaluations\":{},\"kernel_launches\":{},\
             \"modeled_seconds_bits\":\"{:#018x}\",\"kernel_seconds_bits\":\"{:#018x}\",\
             \"transfer_seconds_bits\":\"{:#018x}\"}}",
            n,
            self.objective,
            self.evaluations,
            self.kernel_launches,
            self.modeled_bits,
            self.kernel_bits,
            self.transfer_bits,
        )
    }
}

struct Measured {
    n: usize,
    setting: SimParallelism,
    wall_seconds: f64,
    det: Deterministic,
}

/// One measured service replay: wall time plus the deterministic residue
/// (outcome hash, fusion tallies) the snapshot reports.
struct BatchRun {
    batch_window: usize,
    delta: bool,
    wall_seconds: f64,
    batch_launches: u64,
    fused_requests: u64,
    outcome_sha: u64,
}

/// FNV-1a over the sorted per-request outcome CSV — the same digest shape
/// BENCH_pr7 pinned for the net tier, so the two snapshots read alike.
fn outcome_sha(outcomes: &[(usize, GpuRunResult)]) -> u64 {
    let mut lines: Vec<String> = outcomes
        .iter()
        .map(|(i, r)| {
            let seq: Vec<String> =
                r.best.as_slice().iter().map(|j| j.to_string()).collect();
            format!("{},{},{},{}", i, r.objective, seq.join("-"), r.evaluations)
        })
        .collect();
    lines.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in lines.join("\n").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Replay a `requests`-deep seed-sweep in dispatch windows of
/// `batch_window`, exactly as the service worker drains its queue: windows
/// of one go through the solo pipeline, wider windows through the fused
/// batch driver (`cdd_gpu::run_gpu_solve_batch`). Returns the wall time,
/// the per-request outcome set, and the fusion tallies the service would
/// report as `timing_batch_*`.
fn replay_windows(
    requests: usize,
    n: usize,
    iterations: u64,
    seed: u64,
    batch_window: usize,
    delta: bool,
) -> (f64, Vec<(usize, GpuRunResult)>, u64, u64) {
    let inst = cdd_instance(n, 1, 0.6);
    let spec = GpuSolveSpec {
        blocks: 1,
        block_size: 32,
        delta: DeltaConfig { enabled: delta, resync_every: 0 },
        ..GpuSolveSpec::default()
    };
    let entries: Vec<(Instance, u64)> =
        (0..requests).map(|i| (inst.clone(), seed + i as u64)).collect();

    let mut outcomes = Vec::with_capacity(requests);
    let mut batch_launches = 0u64;
    let mut fused_requests = 0u64;
    let start = Instant::now();
    for (w, chunk) in entries.chunks(batch_window.max(1)).enumerate() {
        let results = run_gpu_solve_batch(chunk, Algorithm::Sa, iterations, &spec)
            .expect("replay window solves cleanly");
        if chunk.len() > 1 {
            batch_launches += 1;
            fused_requests += chunk.len() as u64;
        }
        let base = w * batch_window.max(1);
        outcomes.extend(results.into_iter().enumerate().map(|(j, r)| (base + j, r)));
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, outcomes, batch_launches, fused_requests)
}

/// `--batch` mode: the BENCH_pr8 snapshot (cross-request launch fusion and
/// delta evaluation on the small-`n` service replay workload).
fn batch_snapshot(args: &Args) {
    let requests = args.get_or("requests", 64usize);
    let n = args.get_or("n", 12usize);
    let iterations = args.get_or("iterations", 120u64);
    let seed = args.get_or("seed", 2016u64);
    let repeats = args.get_or("repeats", 2usize).max(1);
    let windows = args.get_list_or("windows", &[1usize, 4, 8]);
    let out = args
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BENCH_pr8.json"));

    let host_cores =
        std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!(
        "bench_snapshot --batch: {requests} requests, n={n}, {iterations} generations, \
         windows {windows:?}, {repeats} repeats, host has {host_cores} core(s)"
    );

    // Unbatched/full-eval baseline first, then each fusion window, then
    // delta evaluation solo and combined with the widest window.
    let widest = windows.iter().copied().max().unwrap_or(1).max(1);
    let mut settings: Vec<(usize, bool)> = Vec::new();
    if !windows.contains(&1) {
        settings.push((1, false));
    }
    settings.extend(windows.iter().map(|&w| (w.max(1), false)));
    settings.push((1, true));
    if widest > 1 {
        settings.push((widest, true));
    }

    let mut runs: Vec<BatchRun> = Vec::new();
    for (window, delta) in settings {
        let mut best_wall = f64::INFINITY;
        let mut residue = None;
        for _ in 0..repeats {
            let (wall, outcomes, launches, fused) =
                replay_windows(requests, n, iterations, seed, window, delta);
            best_wall = best_wall.min(wall);
            residue = Some((outcome_sha(&outcomes), launches, fused));
        }
        let (sha, batch_launches, fused_requests) = residue.expect("repeats >= 1");

        // The determinism contract, enforced before anything is written:
        // every setting must reproduce the unbatched baseline's outcome set.
        if let Some(base) = runs.first() {
            assert!(
                base.outcome_sha == sha,
                "BYTE-IDENTITY VIOLATION: window={window} delta={delta} \
                 diverged from the unbatched baseline"
            );
        }
        eprintln!(
            "  window={window:>2} delta={delta:<5} wall {best_wall:>8.4}s  \
             fused {fused_requests:>3} req / {batch_launches:>3} launches  sha {sha:#018x}"
        );
        runs.push(BatchRun {
            batch_window: window,
            delta,
            wall_seconds: best_wall,
            batch_launches,
            fused_requests,
            outcome_sha: sha,
        });
    }

    let base_wall = runs.first().expect("baseline measured").wall_seconds;
    let mut rows = String::new();
    for r in &runs {
        if !rows.is_empty() {
            rows.push_str(",\n    ");
        }
        let _ = write!(
            rows,
            "{{\"batch_window\":{},\"delta_eval\":{},\"wall_seconds\":{:?},\
             \"speedup_vs_unbatched\":{:?},\"batch_launches\":{},\
             \"fused_requests\":{},\"outcome_sha\":\"{:#018x}\",\
             \"byte_identical_to_unbatched\":true}}",
            r.batch_window,
            r.delta,
            r.wall_seconds,
            base_wall / r.wall_seconds,
            r.batch_launches,
            r.fused_requests,
            r.outcome_sha,
        );
    }
    let snapshot = format!(
        "{{\n  \"bench\": \"pr8_batched_launches\",\n  \"pipeline\": \"gpu_sa_batch\",\n  \
         \"host\": {{\"cores\": {host_cores}, \"os\": {:?}, \"arch\": {:?}}},\n  \
         \"config\": {{\"requests\": {requests}, \"n\": {n}, \"iterations\": {iterations}, \
         \"seed\": {seed}, \"blocks\": 1, \"block_size\": 32, \"devices\": 1, \
         \"repeats\": {repeats}}},\n  \
         \"note\": \"Seed-sweep replay of {requests} small-n SA requests through the \
         service worker's dispatch path on one device. Fusion packs up to batch_window \
         requests into one launch sequence, dividing the per-kernel dispatch overhead \
         (1 + 4*iterations launches per solo run) across the batch; delta evaluation is \
         outcome-invariant and roughly wall-neutral here because the modeled pipeline \
         is compute-bound (DESIGN.md 14). Outcome sets are asserted byte-identical to \
         the unbatched baseline before this file is written.\",\n  \
         \"runs\": [\n    {rows}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out, &snapshot).expect("write snapshot");
    println!("snapshot: {}", out.display());
}

/// One (n, ensemble) cell of the `--backend` snapshot: both backends run
/// the identical campaign; only the host wall clock may differ.
struct BackendCell {
    n: usize,
    ensemble: usize,
    blocks: usize,
    sim_wall: f64,
    native_wall: f64,
    outcome_sha: u64,
    modeled_seconds: f64,
    objective: i64,
}

/// `--backend` mode: the BENCH_pr10 snapshot (native host execution vs the
/// cuda-sim backend, DESIGN.md §16). Sweeps the Fig-11 `(n, ensemble)` grid
/// of the UCDDCP SA pipeline through both backends, asserts the FNV outcome
/// hash identical per cell before anything is written, and reports the real
/// wall-time speedup the native backend buys by skipping the simulator's
/// per-access cost model, fault machinery and modeled clock.
fn backend_snapshot(args: &Args) {
    let sizes = args.get_list_or("sizes", &[50usize, 200]);
    let ensembles = args.get_list_or("ensembles", &[192usize, 768]);
    let block_size = args.get_or("block-size", 192usize);
    let iterations = args.get_or("iterations", 200u64);
    let repeats = args.get_or("repeats", 3usize).max(1);
    let seed = args.get_or("seed", 2016u64);
    let out = args
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BENCH_pr10.json"));

    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!(
        "bench_snapshot --backend: sizes {sizes:?}, ensembles {ensembles:?}, \
         {iterations} generations, {repeats} repeats, host has {host_cores} core(s)"
    );

    let mut cells: Vec<BackendCell> = Vec::new();
    for &n in &sizes {
        let inst = InstanceId::ucddcp(n, 1).instantiate();
        for &ensemble in &ensembles {
            let blocks = ensemble.div_ceil(block_size).max(1);
            let params = |backend| GpuSaParams {
                blocks,
                block_size: block_size.min(ensemble),
                iterations,
                seed,
                backend,
                ..GpuSaParams::default()
            };
            let mut walls = [f64::INFINITY; 2];
            let mut shas = [0u64; 2];
            let mut residue = None;
            for (b, backend) in [Backend::Sim, Backend::Native].into_iter().enumerate() {
                for _ in 0..repeats {
                    let start = Instant::now();
                    let r = run_gpu_sa(&inst, &params(backend)).expect("clean run");
                    walls[b] = walls[b].min(start.elapsed().as_secs_f64());
                    shas[b] = outcome_sha(std::slice::from_ref(&(0usize, r.clone())));
                    if backend == Backend::Sim {
                        residue = Some((r.modeled_seconds, r.objective));
                    }
                }
            }
            // The parity contract, enforced before anything is written.
            assert!(
                shas[0] == shas[1],
                "BYTE-IDENTITY VIOLATION: n={n} ensemble={ensemble} native diverged from sim"
            );
            let (modeled_seconds, objective) = residue.expect("repeats >= 1");
            eprintln!(
                "  n={n:>4} ensemble={ensemble:>4} sim {:>8.4}s  native {:>8.4}s  \
                 speedup {:>5.1}x  sha {:#018x}",
                walls[0],
                walls[1],
                walls[0] / walls[1],
                shas[0]
            );
            cells.push(BackendCell {
                n,
                ensemble,
                blocks,
                sim_wall: walls[0],
                native_wall: walls[1],
                outcome_sha: shas[0],
                modeled_seconds,
                objective,
            });
        }
    }

    let mut rows = String::new();
    for c in &cells {
        if !rows.is_empty() {
            rows.push_str(",\n    ");
        }
        let _ = write!(
            rows,
            "{{\"n\":{},\"ensemble\":{},\"blocks\":{},\"block_size\":{},\
             \"sim_wall_seconds\":{:?},\"native_wall_seconds\":{:?},\
             \"native_speedup\":{:?},\"modeled_seconds\":{:?},\"objective\":{},\
             \"outcome_sha\":\"{:#018x}\",\"byte_identical\":true}}",
            c.n,
            c.ensemble,
            c.blocks,
            block_size.min(c.ensemble),
            c.sim_wall,
            c.native_wall,
            c.sim_wall / c.native_wall,
            c.modeled_seconds,
            c.objective,
            c.outcome_sha,
        );
    }
    let snapshot = format!(
        "{{\n  \"bench\": \"pr10_native_backend\",\n  \"pipeline\": \"gpu_sa\",\n  \
         \"host\": {{\"cores\": {host_cores}, \"os\": {:?}, \"arch\": {:?}}},\n  \
         \"config\": {{\"kind\": \"ucddcp\", \"block_size\": {block_size}, \
         \"iterations\": {iterations}, \"seed\": {seed}, \"repeats\": {repeats}}},\n  \
         \"note\": \"Each (n, ensemble) cell runs the identical SA campaign on the \
         cuda-sim backend (per-access cost model, modeled clock, fault machinery) and \
         the native host backend (same kernel bodies on the worker pool, none of the \
         simulation overhead). Outcomes are asserted FNV-identical per cell before \
         this file is written; the speedup is pure wall clock (DESIGN.md 16).\",\n  \
         \"runs\": [\n    {rows}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out, &snapshot).expect("write snapshot");
    println!("snapshot: {}", out.display());
}

fn main() {
    let args = Args::parse();
    if args.flag("batch") {
        batch_snapshot(&args);
        return;
    }
    if args.flag("backend") {
        backend_snapshot(&args);
        return;
    }
    let sizes = args.get_list_or("sizes", &[50usize, 200, 500]);
    let thread_counts = args.get_list_or("threads", &[1usize, 2, 4, 8]);
    let iterations = args.get_or("iterations", 100u64);
    let repeats = args.get_or("repeats", 3usize).max(1);
    let blocks = args.get_or("blocks", 4usize);
    let block_size = args.get_or("block-size", 64usize);
    let seed = args.get_or("seed", 2016u64);
    let out = args.get("out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        results_dir().join("BENCH_pr5.json")
    });

    let host_cores =
        std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!(
        "bench_snapshot: sizes {sizes:?}, threads {thread_counts:?}, {iterations} generations, \
         {blocks}×{block_size} grid, {repeats} repeats, host has {host_cores} core(s)"
    );

    let mut measured: Vec<Measured> = Vec::new();
    for &n in &sizes {
        let inst = cdd_instance(n, 1, 0.6);
        let mut settings = vec![SimParallelism::Serial];
        settings.extend(thread_counts.iter().map(|&k| SimParallelism::Threads(k)));

        let mut serial_det: Option<Deterministic> = None;
        for par in settings {
            let mut params = GpuSaParams {
                blocks,
                block_size,
                iterations,
                seed,
                ..GpuSaParams::default()
            };
            params.device.parallelism = par;

            // Best-of-`repeats` wall time: the minimum is the least noisy
            // estimator for a deterministic workload on a shared host.
            let mut best_wall = f64::INFINITY;
            let mut det = None;
            for _ in 0..repeats {
                let start = Instant::now();
                let r = run_gpu_sa(&inst, &params).expect("clean run");
                best_wall = best_wall.min(start.elapsed().as_secs_f64());
                det = Some(Deterministic::of(&r));
            }
            let det = det.expect("repeats >= 1");

            // The determinism contract, enforced per size before anything
            // is written: every setting must match the serial engine.
            match &serial_det {
                None => serial_det = Some(det.clone()),
                Some(serial) => assert!(
                    *serial == det,
                    "BYTE-IDENTITY VIOLATION: n={n} at {par} diverged from serial"
                ),
            }
            eprintln!(
                "  n={n:>4} sim-threads={par:<6} wall {best_wall:>9.4}s  modeled {:.6}s  obj {}",
                f64::from_bits(det.modeled_bits),
                det.objective
            );
            measured.push(Measured { n, setting: par, wall_seconds: best_wall, det });
        }
    }

    // Full snapshot, wall-clock included.
    let mut runs = String::new();
    for m in &measured {
        let serial_wall = measured
            .iter()
            .find(|s| s.n == m.n && s.setting == SimParallelism::Serial)
            .expect("serial baseline measured first")
            .wall_seconds;
        if !runs.is_empty() {
            runs.push_str(",\n    ");
        }
        let _ = write!(
            runs,
            "{{\"n\":{},\"sim_threads\":\"{}\",\"resolved_threads\":{},\
             \"wall_seconds\":{:?},\"speedup_vs_serial\":{:?},\
             \"modeled_seconds\":{:?},\"objective\":{},\"kernel_launches\":{},\
             \"evaluations\":{},\"byte_identical_to_serial\":true}}",
            m.n,
            m.setting,
            m.setting.resolve(),
            m.wall_seconds,
            serial_wall / m.wall_seconds,
            f64::from_bits(m.det.modeled_bits),
            m.det.objective,
            m.det.kernel_launches,
            m.det.evaluations,
        );
    }
    let snapshot = format!(
        "{{\n  \"bench\": \"pr5_parallel_block_dispatch\",\n  \"pipeline\": \"gpu_sa\",\n  \
         \"host\": {{\"cores\": {host_cores}, \"os\": {:?}, \"arch\": {:?}}},\n  \
         \"config\": {{\"blocks\": {blocks}, \"block_size\": {block_size}, \
         \"iterations\": {iterations}, \"seed\": {seed}, \"repeats\": {repeats}}},\n  \
         \"note\": \"Wall-clock speedups are bounded by the host's physical cores; on a \
         single-core host the threaded settings measure dispatch overhead, not speedup. \
         Deterministic outputs are asserted byte-identical across all settings before \
         this file is written.\",\n  \"runs\": [\n    {runs}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out, &snapshot).expect("write snapshot");
    println!("snapshot: {}", out.display());

    // Deterministic-only sidecar for CI byte-diffing: identical content for
    // every run of the same configuration, at any thread setting.
    if let Some(path) = args.get("deterministic-out") {
        let mut det = String::new();
        for m in measured.iter().filter(|m| m.setting == SimParallelism::Serial) {
            if !det.is_empty() {
                det.push_str(",\n  ");
            }
            det.push_str(&m.det.to_json(m.n));
        }
        let body = format!("[\n  {det}\n]\n");
        std::fs::write(path, body).expect("write deterministic sidecar");
        println!("deterministic sidecar: {path}");
    }
}
