//! **Wall-clock benchmark snapshot** for the parallel block-dispatch engine
//! (DESIGN.md §11): measures *host* wall-clock time of the GPU SA pipeline
//! across `--threads` settings while asserting that every deterministic
//! output — objective, winning sequence, evaluation and launch counts, and
//! the modeled clocks bit-for-bit — is byte-identical to the serial engine.
//!
//! Wall-clock numbers are honest measurements of *this* host and are
//! reported next to its core count: on a single-core container the parallel
//! settings cannot speed anything up (they measure dispatch overhead
//! instead), and the snapshot says so rather than extrapolating.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin bench_snapshot -- \
//!     [--sizes 50,200,500] [--threads 1,2,4,8] [--iterations 100] \
//!     [--repeats 3] [--out BENCH_pr5.json] [--deterministic-out det.json]
//! ```
//!
//! `--out` gets the full snapshot (wall-clock included); the optional
//! `--deterministic-out` gets only the thread-count-invariant fields, which
//! CI byte-diffs across runs and thread settings.

use cdd_bench::{results_dir, Args};
use cdd_gpu::{run_gpu_sa, GpuRunResult, GpuSaParams};
use cdd_instances::cdd_instance;
use cuda_sim::SimParallelism;
use std::fmt::Write as _;
use std::time::Instant;

/// The thread-count-invariant outputs of one run (the determinism
/// contract's observable surface at this level).
#[derive(PartialEq, Clone)]
struct Deterministic {
    objective: i64,
    best: Vec<u32>,
    evaluations: u64,
    kernel_launches: usize,
    modeled_bits: u64,
    kernel_bits: u64,
    transfer_bits: u64,
}

impl Deterministic {
    fn of(r: &GpuRunResult) -> Self {
        Deterministic {
            objective: r.objective,
            best: r.best.as_slice().to_vec(),
            evaluations: r.evaluations,
            kernel_launches: r.kernel_launches,
            modeled_bits: r.modeled_seconds.to_bits(),
            kernel_bits: r.kernel_seconds.to_bits(),
            transfer_bits: r.transfer_seconds.to_bits(),
        }
    }

    fn to_json(&self, n: usize) -> String {
        format!(
            "{{\"n\":{},\"objective\":{},\"evaluations\":{},\"kernel_launches\":{},\
             \"modeled_seconds_bits\":\"{:#018x}\",\"kernel_seconds_bits\":\"{:#018x}\",\
             \"transfer_seconds_bits\":\"{:#018x}\"}}",
            n,
            self.objective,
            self.evaluations,
            self.kernel_launches,
            self.modeled_bits,
            self.kernel_bits,
            self.transfer_bits,
        )
    }
}

struct Measured {
    n: usize,
    setting: SimParallelism,
    wall_seconds: f64,
    det: Deterministic,
}

fn main() {
    let args = Args::parse();
    let sizes = args.get_list_or("sizes", &[50usize, 200, 500]);
    let thread_counts = args.get_list_or("threads", &[1usize, 2, 4, 8]);
    let iterations = args.get_or("iterations", 100u64);
    let repeats = args.get_or("repeats", 3usize).max(1);
    let blocks = args.get_or("blocks", 4usize);
    let block_size = args.get_or("block-size", 64usize);
    let seed = args.get_or("seed", 2016u64);
    let out = args.get("out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        results_dir().join("BENCH_pr5.json")
    });

    let host_cores =
        std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!(
        "bench_snapshot: sizes {sizes:?}, threads {thread_counts:?}, {iterations} generations, \
         {blocks}×{block_size} grid, {repeats} repeats, host has {host_cores} core(s)"
    );

    let mut measured: Vec<Measured> = Vec::new();
    for &n in &sizes {
        let inst = cdd_instance(n, 1, 0.6);
        let mut settings = vec![SimParallelism::Serial];
        settings.extend(thread_counts.iter().map(|&k| SimParallelism::Threads(k)));

        let mut serial_det: Option<Deterministic> = None;
        for par in settings {
            let mut params = GpuSaParams {
                blocks,
                block_size,
                iterations,
                seed,
                ..GpuSaParams::default()
            };
            params.device.parallelism = par;

            // Best-of-`repeats` wall time: the minimum is the least noisy
            // estimator for a deterministic workload on a shared host.
            let mut best_wall = f64::INFINITY;
            let mut det = None;
            for _ in 0..repeats {
                let start = Instant::now();
                let r = run_gpu_sa(&inst, &params).expect("clean run");
                best_wall = best_wall.min(start.elapsed().as_secs_f64());
                det = Some(Deterministic::of(&r));
            }
            let det = det.expect("repeats >= 1");

            // The determinism contract, enforced per size before anything
            // is written: every setting must match the serial engine.
            match &serial_det {
                None => serial_det = Some(det.clone()),
                Some(serial) => assert!(
                    *serial == det,
                    "BYTE-IDENTITY VIOLATION: n={n} at {par} diverged from serial"
                ),
            }
            eprintln!(
                "  n={n:>4} sim-threads={par:<6} wall {best_wall:>9.4}s  modeled {:.6}s  obj {}",
                f64::from_bits(det.modeled_bits),
                det.objective
            );
            measured.push(Measured { n, setting: par, wall_seconds: best_wall, det });
        }
    }

    // Full snapshot, wall-clock included.
    let mut runs = String::new();
    for m in &measured {
        let serial_wall = measured
            .iter()
            .find(|s| s.n == m.n && s.setting == SimParallelism::Serial)
            .expect("serial baseline measured first")
            .wall_seconds;
        if !runs.is_empty() {
            runs.push_str(",\n    ");
        }
        let _ = write!(
            runs,
            "{{\"n\":{},\"sim_threads\":\"{}\",\"resolved_threads\":{},\
             \"wall_seconds\":{:?},\"speedup_vs_serial\":{:?},\
             \"modeled_seconds\":{:?},\"objective\":{},\"kernel_launches\":{},\
             \"evaluations\":{},\"byte_identical_to_serial\":true}}",
            m.n,
            m.setting,
            m.setting.resolve(),
            m.wall_seconds,
            serial_wall / m.wall_seconds,
            f64::from_bits(m.det.modeled_bits),
            m.det.objective,
            m.det.kernel_launches,
            m.det.evaluations,
        );
    }
    let snapshot = format!(
        "{{\n  \"bench\": \"pr5_parallel_block_dispatch\",\n  \"pipeline\": \"gpu_sa\",\n  \
         \"host\": {{\"cores\": {host_cores}, \"os\": {:?}, \"arch\": {:?}}},\n  \
         \"config\": {{\"blocks\": {blocks}, \"block_size\": {block_size}, \
         \"iterations\": {iterations}, \"seed\": {seed}, \"repeats\": {repeats}}},\n  \
         \"note\": \"Wall-clock speedups are bounded by the host's physical cores; on a \
         single-core host the threaded settings measure dispatch overhead, not speedup. \
         Deterministic outputs are asserted byte-identical across all settings before \
         this file is written.\",\n  \"runs\": [\n    {runs}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out, &snapshot).expect("write snapshot");
    println!("snapshot: {}", out.display());

    // Deterministic-only sidecar for CI byte-diffing: identical content for
    // every run of the same configuration, at any thread setting.
    if let Some(path) = args.get("deterministic-out") {
        let mut det = String::new();
        for m in measured.iter().filter(|m| m.setting == SimParallelism::Serial) {
            if !det.is_empty() {
                det.push_str(",\n  ");
            }
            det.push_str(&m.det.to_json(m.n));
        }
        let body = format!("[\n  {det}\n]\n");
        std::fs::write(path, body).expect("write deterministic sidecar");
        println!("deterministic sidecar: {path}");
    }
}
