//! **Section VI ablation** — the paper's cooling rate: "the exponential
//! cooling rate of 0.88 has been adopted in this work, which is inferred
//! from our experiments over a range of cooling rates". Sweep the rate (and
//! two alternative schedules) at a fixed budget.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin ablation_cooling -- \
//!     [--n 100] [--iters 1000] [--chains 16] [--instances 5]
//! ```

use cdd_bench::{render_markdown, results_dir, write_csv, Args, Table};
use cdd_core::eval::evaluator_for;
use cdd_instances::InstanceId;
use cdd_meta::{AsyncEnsemble, Cooling, SaParams};

fn main() {
    let args = Args::parse();
    let n = args.get_or("n", 100usize);
    let iters = args.get_or("iters", 1000u64);
    let chains = args.get_or("chains", 16usize);
    let instances = args.get_or("instances", 5u32);
    let seed = args.get_or("seed", 2016u64);

    let schedules: Vec<(String, Cooling)> = [0.5, 0.7, 0.8, 0.88, 0.95, 0.99]
        .iter()
        .map(|&r| (format!("exp-{r}"), Cooling::Exponential { rate: r }))
        .chain([
            ("harmonic".to_string(), Cooling::Harmonic),
            ("linear".to_string(), Cooling::Linear { step: 1.0, floor: 0.01 }),
        ])
        .collect();

    let mut headers = vec!["schedule".to_string()];
    headers.extend((1..=instances).map(|k| format!("inst-{k}")));
    headers.push("avg-%-over-best".into());
    let mut table = Table::new(headers);

    // Collect objectives per schedule per instance.
    let mut results: Vec<Vec<i64>> = vec![Vec::new(); schedules.len()];
    for k in 1..=instances {
        let inst = InstanceId::cdd(n, k, 0.6).instantiate();
        let eval = evaluator_for(&inst);
        for (s, (_, cooling)) in schedules.iter().enumerate() {
            let r = AsyncEnsemble::new(
                eval.as_ref(),
                chains,
                SaParams { iterations: iters, cooling: *cooling, ..Default::default() },
            )
            .run(seed + k as u64);
            results[s].push(r.objective);
        }
        eprintln!("  instance {k}/{instances}: done");
    }

    // Per-instance best across schedules → relative excess.
    let best_per_instance: Vec<i64> = (0..instances as usize)
        .map(|i| results.iter().map(|r| r[i]).min().expect("non-empty"))
        .collect();
    for (s, (name, _)) in schedules.iter().enumerate() {
        let mut row = vec![name.clone()];
        let mut excess = 0.0;
        for i in 0..instances as usize {
            row.push(results[s][i].to_string());
            excess += 100.0 * (results[s][i] - best_per_instance[i]) as f64
                / best_per_instance[i] as f64;
        }
        row.push(format!("{:.2}", excess / instances as f64));
        table.push(row);
    }

    println!(
        "\nCooling-schedule sweep (CDD, n = {n}, {chains} chains x {iters} iterations):\n"
    );
    println!("{}", render_markdown(&table));
    println!("The paper's μ = 0.88 should sit at or near the lowest average excess.");
    write_csv(&table, &results_dir().join("ablation_cooling.csv")).expect("write results");
}
