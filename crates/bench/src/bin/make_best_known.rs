//! Produce (or refresh) the best-known table every `%Δ` refers to.
//!
//! The reference solver is a CPU asynchronous SA ensemble — the stand-in for
//! the published best solutions of Lässig et al. [7] (CDD) and Awasthi et
//! al. [8] (UCDDCP); see DESIGN.md §2.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin make_best_known -- \
//!     [--sizes 10,20,50,100,200] [--ks 1,2] [--chains 24] [--iters 8000] [--full]
//! ```

use cdd_bench::campaign::{best_known_path, instance_seed, reference_best};
use cdd_bench::Args;
use cdd_instances::{BestKnown, InstanceId, PAPER_H_VALUES, PAPER_SIZES};

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = if args.flag("full") {
        PAPER_SIZES.to_vec()
    } else {
        args.get_list_or("sizes", &[10usize, 20, 50, 100, 200])
    };
    let ks: Vec<u32> = if args.flag("full") {
        (1..=10).collect()
    } else {
        args.get_list_or("ks", &[1u32, 2])
    };
    let chains = args.get_or("chains", 24usize);
    let iters = args.get_or("iters", 8000u64);

    let mut ids: Vec<InstanceId> = Vec::new();
    for &n in &sizes {
        for &k in &ks {
            for &h in &PAPER_H_VALUES {
                ids.push(InstanceId::cdd(n, k, h));
            }
            ids.push(InstanceId::ucddcp(n, k));
        }
    }

    let path = best_known_path();
    let mut table = BestKnown::load(&path).expect("best-known file readable");
    eprintln!(
        "computing best-known for {} instances (chains {chains}, iters {iters}) -> {}",
        ids.len(),
        path.display()
    );
    let mut improved = 0;
    for (i, id) in ids.iter().enumerate() {
        let inst = id.instantiate();
        let obj = reference_best(&inst, chains, iters, 0xBE57 ^ instance_seed(0, id));
        if table.improve(&id.to_string(), obj) {
            improved += 1;
        }
        if (i + 1) % 20 == 0 {
            eprintln!("  {}/{} done", i + 1, ids.len());
            table.save(&path).expect("best-known file writable");
        }
    }
    table.save(&path).expect("best-known file writable");
    println!(
        "best-known table: {} entries ({improved} set/improved this run) at {}",
        table.len(),
        path.display()
    );
}
