//! **Table III / Figs. 13–14** — speed-ups of the parallel algorithms on
//! the CDD problem relative to the two CPU baselines, plus the runtime
//! curves.
//!
//! Baseline substitution (DESIGN.md §2): `[7]` = our sequential SA, `[18]` =
//! our (μ+λ) ES, both given the same total fitness-evaluation budget as the
//! GPU ensemble and *measured* on this host; GPU time is the `cuda-sim`
//! model, transfers included.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin table3_cdd_speedup -- \
//!     [--sizes 10,20,50,100,200] [--full]
//! ```
//!
//! Paper shape to reproduce: speed-ups grow with n and flatten at the top
//! end; SA₅₀₀₀ costs about 5× SA₁₀₀₀.

use cdd_bench::campaign::run_speedup_suite;
use cdd_bench::{campaign_from_args, render_markdown, results_dir, write_csv, Args, CampaignObserver};
use cdd_instances::InstanceId;

fn main() {
    let args = Args::parse();
    let cfg = campaign_from_args(&args, &[10, 20, 50, 100, 200]);
    let h = args.get_or("h", 0.6f64);

    eprintln!("Table III campaign: sizes {:?}, ensemble {}", cfg.sizes, cfg.ensemble());
    let mut observer = CampaignObserver::from_args(&args);
    let (speedup, runtime) =
        run_speedup_suite(&cfg, |n| InstanceId::cdd(n, 1, h), true, Some(&mut observer));
    observer.finish().expect("metrics/trace outputs writable");

    println!("\nTable III — speed-ups vs the work-matched CPU baselines (CDD):\n");
    println!("{}", render_markdown(&speedup));
    println!("Fig. 14 runtime series (modeled GPU s, measured CPU s):\n");
    println!("{}", render_markdown(&runtime));

    write_csv(&speedup, &results_dir().join("table3_cdd_speedup.csv")).expect("write results");
    write_csv(&runtime, &results_dir().join("fig14_cdd_runtimes.csv")).expect("write results");
    println!("(Figs. 13/14 plot these two CSVs in {})", results_dir().display());
}
