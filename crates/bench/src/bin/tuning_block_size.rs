//! **Section VIII tuning** — the paper's block-size finding: "the
//! theoretical limit … is 1024. However, … the best results for both the
//! problems are achieved with a block size of 192."
//!
//! Sweep the block size at a fixed ensemble, comparing modeled runtime
//! (occupancy/serialization effects) and solution quality.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin tuning_block_size -- \
//!     [--n 100] [--ensemble 768] [--iters 500] \
//!     [--block-sizes 64,96,128,192,256,384,512,768,1024]
//! ```

use cdd_bench::{render_markdown, results_dir, write_csv, Args, Table};
use cdd_gpu::{run_gpu_sa, GpuSaParams};
use cdd_instances::InstanceId;

fn main() {
    let args = Args::parse();
    let n = args.get_or("n", 100usize);
    let ensemble = args.get_or("ensemble", 768usize);
    let iters = args.get_or("iters", 500u64);
    let block_sizes =
        args.get_list_or("block-sizes", &[64usize, 96, 128, 192, 256, 384, 512, 768, 1024]);
    let seed = args.get_or("seed", 2016u64);

    let inst = InstanceId::cdd(n, 1, 0.6).instantiate();
    let mut table = Table::new(vec![
        "block-size",
        "blocks",
        "objective",
        "modeled-s",
        "kernel-s",
    ]);

    for &bs in &block_sizes {
        let blocks = ensemble.div_ceil(bs).max(1);
        let r = run_gpu_sa(
            &inst,
            &GpuSaParams {
                blocks,
                block_size: bs,
                iterations: iters,
                seed,
                ..Default::default()
            },
        )
        .expect("block sizes within device limits");
        table.push(vec![
            bs.to_string(),
            blocks.to_string(),
            r.objective.to_string(),
            format!("{:.6}", r.modeled_seconds),
            format!("{:.6}", r.kernel_seconds),
        ]);
        eprintln!("  block size {bs}: done");
    }

    println!(
        "\nBlock-size sweep (CDD, n = {n}, ensemble {ensemble}, {iters} generations):\n"
    );
    println!("{}", render_markdown(&table));
    println!(
        "Mid-sized blocks keep all SMs busy; a single 1024-thread block leaves \
         SMs idle — the effect behind the paper's choice of 192."
    );
    write_csv(&table, &results_dir().join("tuning_block_size.csv")).expect("write results");
}
