//! **Fig. 11** — modeled runtime of the parallel UCDDCP fitness evaluation
//! as a function of the thread count (population size) and the number of
//! generations.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin fig11_surface -- \
//!     [--n 200] [--threads 96,192,384,768,1536] [--gens 200,500,1000,2000] [--block-size 192]
//! ```
//!
//! Paper shape to reproduce: runtime grows with both axes; beyond the
//! device's concurrent-block capacity, extra threads serialize block
//! processing through the SMs (the effect Section VIII discusses).

use cdd_bench::campaign::{instance_seed, run_algo_on_instance, AlgoKind};
use cdd_bench::{campaign_from_args, render_markdown, results_dir, write_csv, Args, Table};
use cdd_gpu::{run_gpu_sa, GpuSaParams};
use cdd_instances::InstanceId;

fn main() {
    let args = Args::parse();
    let n = args.get_or("n", 200usize);
    let threads = args.get_list_or("threads", &[96usize, 192, 384, 768, 1536]);
    let gens = args.get_list_or("gens", &[200u64, 500, 1000, 2000]);
    // Shared campaign flags (--block-size, --seed, fault flags) parse through
    // the same helper as the table binaries.
    let cfg = campaign_from_args(&args, &[]);
    let (block_size, seed) = (cfg.block_size, cfg.seed);

    let id = InstanceId::ucddcp(n, 1);
    let inst = id.instantiate();

    let mut headers = vec!["threads".to_string()];
    headers.extend(gens.iter().map(|g| format!("gens-{g}-s")));
    let mut table = Table::new(headers);

    for &t in &threads {
        let blocks = t.div_ceil(block_size).max(1);
        let mut row = vec![t.to_string()];
        for &g in &gens {
            let r = run_gpu_sa(
                &inst,
                &GpuSaParams {
                    blocks,
                    block_size: block_size.min(t),
                    iterations: g,
                    seed: instance_seed(seed, &id),
                    ..Default::default()
                },
            )
            .expect("valid configuration");
            row.push(format!("{:.6}", r.modeled_seconds));
        }
        table.push(row);
        eprintln!("  threads = {t}: done");
    }

    println!("\nFig. 11 — modeled runtime (s) of parallel SA on UCDDCP, n = {n}:\n");
    println!("{}", render_markdown(&table));
    write_csv(&table, &results_dir().join("fig11_surface.csv")).expect("write results");

    // Sanity anchor the surface against one standard configuration.
    let anchor = run_algo_on_instance(
        &inst,
        AlgoKind::Sa1000,
        &cdd_bench::CampaignConfig { sizes: vec![n], ..Default::default() },
        instance_seed(seed, &id),
    )
    .expect("clean device run succeeds");
    println!(
        "(reference: paper configuration 4x192 @1000 gens -> {:.6} modeled s)",
        anchor.modeled_seconds
    );
}
