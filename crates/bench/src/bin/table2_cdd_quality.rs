//! **Table II / Fig. 12** — average `%Δ` of the four parallel algorithms on
//! the CDD benchmark, per job size, relative to the best-known table.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin table2_cdd_quality -- \
//!     [--sizes 10,20,50,100,200] [--ks 1,2] [--blocks 4] [--block-size 192] [--full] \
//!     [--fault-seed S --launch-failure-rate P --bit-flip-rate P --hang-rate P] \
//!     [--resume] [--max-cells N]
//! ```
//!
//! Completed cells are journaled to `results/table2_cdd_quality.journal.jsonl`
//! after every cell; `--resume` replays the journal and continues from where
//! a killed run stopped, producing byte-identical CSVs. `--max-cells` bounds
//! the cells executed this invocation (journal replays are free).
//!
//! Paper shape to reproduce: SA stays within ~2 % at every size (SA₅₀₀₀
//! under ~0.5 %), while DPSO degrades sharply from n ≈ 100 upward.

use cdd_bench::campaign::{best_known_path, ensure_best_known, run_quality_suite};
use cdd_bench::{
    campaign_from_args, gpu_algorithms, render_markdown, results_dir, write_csv, Args,
    CampaignObserver, Journal, Table,
};
use cdd_instances::{BestKnown, InstanceId, PAPER_H_VALUES};

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let cfg = campaign_from_args(&args, &[10, 20, 50, 100]);
    let ks: Vec<u32> =
        if full { (1..=10).collect() } else { args.get_list_or("ks", &[1u32]) };

    let mut ids: Vec<InstanceId> = Vec::new();
    for &n in &cfg.sizes {
        for &k in &ks {
            for &h in &PAPER_H_VALUES {
                ids.push(InstanceId::cdd(n, k, h));
            }
        }
    }

    let path = best_known_path();
    let mut best = BestKnown::load(&path).expect("best-known file readable");
    let computed = ensure_best_known(&ids, &mut best, 24, 8000);
    if computed > 0 {
        best.save(&path).expect("best-known file writable");
        eprintln!("computed {computed} missing best-known entries");
    }

    eprintln!(
        "Table II campaign: {} instances x 4 algorithms, ensemble {} ({}x{})",
        ids.len(),
        cfg.ensemble(),
        cfg.blocks,
        cfg.block_size
    );
    if let Some(plan) = &cfg.fault {
        eprintln!("fault injection: {plan:?}");
    }
    let journal_path = results_dir().join("table2_cdd_quality.journal.jsonl");
    let mut journal =
        Journal::open(&journal_path, args.flag("resume")).expect("journal readable");
    if !journal.is_empty() {
        eprintln!("resuming: {} cells replayed from {}", journal.len(), journal_path.display());
    }
    let max_cells = args.get("max-cells").map(|s| s.parse().expect("--max-cells: integer"));
    let mut observer = CampaignObserver::from_args(&args);
    let (rows, detail) =
        run_quality_suite(&cfg, &ids, &best, Some(&mut journal), max_cells, Some(&mut observer));
    observer.finish().expect("metrics/trace outputs writable");

    let mut table = Table::new(vec!["Jobs", "SA1000", "SA5000", "DPSO1000", "DPSO5000"]);
    for r in &rows {
        let mut cells = vec![r.n.to_string()];
        cells.extend(r.deltas.iter().map(|d| format!("{d:.3}")));
        table.push(cells);
    }

    println!("\nTable II — average %Δ per job size (CDD), relative to best-known:\n");
    println!("{}", render_markdown(&table));
    println!(
        "(Fig. 12 is this table as a bar chart; series CSV at {}/table2_cdd_quality.csv)",
        results_dir().display()
    );
    let _ = gpu_algorithms();

    write_csv(&table, &results_dir().join("table2_cdd_quality.csv")).expect("write results");
    write_csv(&detail, &results_dir().join("table2_cdd_quality_detail.csv"))
        .expect("write results");
}
