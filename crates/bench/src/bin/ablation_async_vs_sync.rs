//! **Figs. 7–8 ablation** — why the paper chose *asynchronous* over
//! *synchronous* parallel SA: "the premature convergence of the latter
//! approach, examined from our experimental analysis".
//!
//! Both schemes get the same total evaluation budget
//! (`chains × iterations`); we compare solution quality over several
//! instances, plus the diversity of the async ensemble's final states.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin ablation_async_vs_sync -- \
//!     [--n 100] [--chains 32] [--iters 1000] [--instances 5]
//! ```

use cdd_bench::{render_markdown, results_dir, write_csv, Args, Table};
use cdd_core::eval::evaluator_for;
use cdd_instances::InstanceId;
use cdd_meta::{AsyncEnsemble, SaParams, SyncEnsemble};

fn main() {
    let args = Args::parse();
    let n = args.get_or("n", 100usize);
    let chains = args.get_or("chains", 32usize);
    let iters = args.get_or("iters", 1000u64);
    let instances = args.get_or("instances", 5u32);
    let seed = args.get_or("seed", 2016u64);

    // Synchronous scheme: same budget split into levels × markov-chain len.
    let levels = 50u64.min(iters);
    let markov = (iters / levels).max(1);

    let mut table = Table::new(vec![
        "instance",
        "async-best",
        "sync-best",
        "sync-minus-async-%",
        "async-distinct-final",
    ]);
    let mut async_wins = 0usize;
    for k in 1..=instances {
        let id = InstanceId::cdd(n, k, 0.6);
        let inst = id.instantiate();
        let eval = evaluator_for(&inst);

        let (async_res, finals) =
            AsyncEnsemble::new(eval.as_ref(), chains, SaParams { iterations: iters, ..Default::default() })
                .run_detailed(seed + k as u64);
        let distinct: std::collections::HashSet<i64> = finals.iter().copied().collect();

        let sync_res = SyncEnsemble::new(eval.as_ref(), chains, markov, levels).run(seed + k as u64);

        let rel = 100.0 * (sync_res.objective - async_res.objective) as f64
            / async_res.objective as f64;
        if async_res.objective <= sync_res.objective {
            async_wins += 1;
        }
        table.push(vec![
            id.to_string(),
            async_res.objective.to_string(),
            sync_res.objective.to_string(),
            format!("{rel:.2}"),
            format!("{}/{}", distinct.len(), chains),
        ]);
        eprintln!("  {id}: done");
    }

    println!(
        "\nAsync vs sync parallel SA (n = {n}, {chains} chains, budget {iters} iterations each;\n\
         sync = {levels} levels x {markov} Markov steps):\n"
    );
    println!("{}", render_markdown(&table));
    println!(
        "async won or tied on {async_wins}/{instances} instances. The paper preferred async \
         (premature convergence of sync at its budgets); which scheme wins is budget- and \
         landscape-dependent — the broadcast is pure intensification — while its per-level \
         communication cost is unconditional (see the sync pipeline's profiler timeline)."
    );
    write_csv(&table, &results_dir().join("ablation_async_vs_sync.csv")).expect("write results");
}
