//! **Figs. 7–8 ablation** — why the paper chose *asynchronous* over
//! *synchronous* parallel SA: "the premature convergence of the latter
//! approach, examined from our experimental analysis".
//!
//! Both schemes run on the GPU pipelines with the same total evaluation
//! budget (`chains × iterations`), with the convergence recorder
//! (DESIGN.md §10) sampling every chain's trajectory. Beyond the endpoint
//! quality comparison, the recorder makes the paper's "premature
//! convergence" claim *measurable*: the emitted curves CSV holds both
//! schemes' ensemble-best descent, and the summary table reports each
//! scheme's diversity-collapse generation and stalled-chain fraction.
//!
//! ```text
//! cargo run --release -p cdd-bench --bin ablation_async_vs_sync -- \
//!     [--n 100] [--chains 32] [--iters 1000] [--instances 5] [--stride 10] \
//!     [--convergence-out results/ablation_async_vs_sync_curves.csv]
//! ```

use cdd_bench::convergence::{curve_headers, push_curve_rows};
use cdd_bench::{render_markdown, results_dir, write_csv, Args, Table};
use cdd_gpu::{run_gpu_sa, run_gpu_sa_sync, ConvergenceSummary, GpuSaParams};
use cdd_instances::InstanceId;
use cuda_sim::TelemetryConfig;
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let n = args.get_or("n", 100usize);
    let chains = args.get_or("chains", 32usize);
    let iters = args.get_or("iters", 1000u64);
    let instances = args.get_or("instances", 5u32);
    let seed = args.get_or("seed", 2016u64);
    let stride = args.get_or("stride", (iters / 100).max(1));

    // Synchronous scheme: same budget split into levels × markov-chain len.
    let levels = 50u64.min(iters);
    let markov = (iters / levels).max(1);

    let mut table = Table::new(vec![
        "instance",
        "async-best",
        "sync-best",
        "sync-minus-async-%",
        "async-distinct-final",
        "async-collapse-gen",
        "sync-collapse-gen",
        "async-stalled-frac",
        "sync-stalled-frac",
    ]);
    let mut curves = Table::new(curve_headers());
    let mut async_wins = 0usize;
    for k in 1..=instances {
        let id = InstanceId::cdd(n, k, 0.6);
        let inst = id.instantiate();
        let params = GpuSaParams {
            blocks: 1,
            block_size: chains,
            iterations: iters,
            seed: seed + u64::from(k),
            telemetry: TelemetryConfig::every(stride),
            ..Default::default()
        };

        let async_res = run_gpu_sa(&inst, &params).expect("async pipeline runs");
        let sync_res = run_gpu_sa_sync(&inst, &params, levels, markov).expect("sync pipeline runs");

        let fmt_collapse = |s: &ConvergenceSummary| {
            s.diversity_collapse_gen.map_or_else(|| "-".to_string(), |g| g.to_string())
        };
        let (async_sum, sync_sum, distinct) =
            match (&async_res.convergence, &sync_res.convergence) {
                (Some(a), Some(s)) => {
                    push_curve_rows(&mut curves, &format!("{id}/async"), a);
                    push_curve_rows(&mut curves, &format!("{id}/sync"), s);
                    let finals: std::collections::HashSet<i64> = a
                        .samples
                        .last()
                        .map(|smp| smp.current.iter().copied().collect())
                        .unwrap_or_default();
                    (
                        ConvergenceSummary::from_trace(a),
                        ConvergenceSummary::from_trace(s),
                        finals.len(),
                    )
                }
                _ => unreachable!("clean runs always carry a trace"),
            };

        let rel = 100.0 * (sync_res.objective - async_res.objective) as f64
            / async_res.objective as f64;
        if async_res.objective <= sync_res.objective {
            async_wins += 1;
        }
        table.push(vec![
            id.to_string(),
            async_res.objective.to_string(),
            sync_res.objective.to_string(),
            format!("{rel:.2}"),
            format!("{distinct}/{chains}"),
            fmt_collapse(&async_sum),
            fmt_collapse(&sync_sum),
            format!("{:.2}", async_sum.stalled_chain_fraction),
            format!("{:.2}", sync_sum.stalled_chain_fraction),
        ]);
        eprintln!("  {id}: done");
    }

    println!(
        "\nAsync vs sync parallel SA (n = {n}, {chains} chains, budget {iters} iterations each;\n\
         sync = {levels} levels x {markov} Markov steps; trajectories sampled every {stride} gens):\n"
    );
    println!("{}", render_markdown(&table));
    println!(
        "async won or tied on {async_wins}/{instances} instances. The paper preferred async \
         (premature convergence of sync at its budgets); which scheme wins is budget- and \
         landscape-dependent — the broadcast is pure intensification — while its per-level \
         communication cost is unconditional (see the sync pipeline's profiler timeline). \
         The collapse-gen and stalled-frac columns quantify the premature-convergence claim \
         directly from the recorded trajectories."
    );
    write_csv(&table, &results_dir().join("ablation_async_vs_sync.csv")).expect("write results");
    let curves_path = args
        .get("convergence-out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("ablation_async_vs_sync_curves.csv"));
    write_csv(&curves, &curves_path).expect("write curves");
    println!("curves: {}", curves_path.display());
}
