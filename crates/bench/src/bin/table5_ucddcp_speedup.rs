//! **Table V / Figs. 16–17** — speed-ups and runtimes of the parallel
//! algorithms on the UCDDCP problem relative to the `[8]`-style CPU
//! baseline (our sequential SA; Table V has a single baseline, unlike
//! Table III).
//!
//! ```text
//! cargo run --release -p cdd-bench --bin table5_ucddcp_speedup -- \
//!     [--sizes 10,20,50,100,200] [--full]
//! ```
//!
//! Paper shape to reproduce: sub-1 speed-ups for tiny n (launch/transfer
//! overhead dominates), growing and then saturating with n.

use cdd_bench::campaign::run_speedup_suite;
use cdd_bench::{campaign_from_args, render_markdown, results_dir, write_csv, Args, CampaignObserver};
use cdd_instances::InstanceId;

fn main() {
    let args = Args::parse();
    let cfg = campaign_from_args(&args, &[10, 20, 50, 100, 200]);

    eprintln!("Table V campaign: sizes {:?}, ensemble {}", cfg.sizes, cfg.ensemble());
    let mut observer = CampaignObserver::from_args(&args);
    let (speedup, runtime) =
        run_speedup_suite(&cfg, |n| InstanceId::ucddcp(n, 1), false, Some(&mut observer));
    observer.finish().expect("metrics/trace outputs writable");

    println!("\nTable V — speed-ups vs the work-matched CPU baseline (UCDDCP):\n");
    println!("{}", render_markdown(&speedup));
    println!("Fig. 16 runtime series (modeled GPU s, measured CPU s):\n");
    println!("{}", render_markdown(&runtime));

    write_csv(&speedup, &results_dir().join("table5_ucddcp_speedup.csv")).expect("write results");
    write_csv(&runtime, &results_dir().join("fig16_ucddcp_runtimes.csv")).expect("write results");
    println!("(Fig. 17 plots the speed-up CSV in {})", results_dir().display());
}
