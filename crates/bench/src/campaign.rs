//! Campaign plumbing shared by the bench binaries: the four parallel
//! algorithm configurations of the paper, GPU runs, and measured CPU
//! baselines.

use crate::journal::{CellRecord, Journal};
use crate::observer::{CampaignObserver, CellSource};
use cdd_core::eval::evaluator_for;
use cdd_core::{Algorithm, Cost, Instance, SuiteError};
use cdd_gpu::{run_gpu_solve, GpuRunResult, GpuSolveSpec};
use cdd_instances::{BestKnown, InstanceId};
use cdd_meta::{EsParams, EvolutionStrategy, SaParams, SimulatedAnnealing};
use cuda_sim::{DeviceSpec, FaultPlan};
use std::path::PathBuf;
use std::time::Instant;

/// The four parallel configurations of Tables II–V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// Parallel SA, 1000 generations.
    Sa1000,
    /// Parallel SA, 5000 generations.
    Sa5000,
    /// Parallel DPSO, 1000 generations.
    Dpso1000,
    /// Parallel DPSO, 5000 generations.
    Dpso5000,
}

impl AlgoKind {
    /// Column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::Sa1000 => "SA1000",
            AlgoKind::Sa5000 => "SA5000",
            AlgoKind::Dpso1000 => "DPSO1000",
            AlgoKind::Dpso5000 => "DPSO5000",
        }
    }

    /// Generation budget.
    pub fn iterations(self) -> u64 {
        match self {
            AlgoKind::Sa1000 | AlgoKind::Dpso1000 => 1000,
            AlgoKind::Sa5000 | AlgoKind::Dpso5000 => 5000,
        }
    }

    /// Whether this is an SA configuration.
    pub fn is_sa(self) -> bool {
        matches!(self, AlgoKind::Sa1000 | AlgoKind::Sa5000)
    }

    /// The underlying algorithm (the service-layer vocabulary of
    /// `cdd_core::solve`): a table configuration is an algorithm plus a
    /// generation budget.
    pub fn algorithm(self) -> Algorithm {
        if self.is_sa() {
            Algorithm::Sa
        } else {
            Algorithm::Dpso
        }
    }
}

/// All four configurations, table order.
pub fn gpu_algorithms() -> [AlgoKind; 4] {
    [AlgoKind::Sa1000, AlgoKind::Sa5000, AlgoKind::Dpso1000, AlgoKind::Dpso5000]
}

/// Shared campaign knobs (parsed from CLI flags by the binaries).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Job sizes to evaluate.
    pub sizes: Vec<usize>,
    /// Grid size (paper: 4 blocks).
    pub blocks: usize,
    /// Block size (paper: 192 threads).
    pub block_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulated device.
    pub device: DeviceSpec,
    /// Base fault plan (None = clean device). Each campaign cell derives its
    /// own plan from this seed and the cell seed, so interrupted and
    /// uninterrupted runs inject identical faults per cell.
    pub fault: Option<FaultPlan>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            sizes: vec![10, 20, 50, 100, 200],
            blocks: 4,
            block_size: 192,
            seed: 2016,
            device: DeviceSpec::gt560m(),
            fault: None,
        }
    }
}

impl CampaignConfig {
    /// The paper's full size sweep.
    pub fn full() -> Self {
        CampaignConfig { sizes: vec![10, 20, 50, 100, 200, 500, 1000], ..Default::default() }
    }

    /// Ensemble size (threads = particles = chains).
    pub fn ensemble(&self) -> usize {
        self.blocks * self.block_size
    }

    /// Derive the fault plan for one campaign cell: a pure function of the
    /// base plan and the cell seed, so resumed runs replay identical faults.
    pub fn cell_fault_plan(&self, cell_seed: u64) -> Option<FaultPlan> {
        self.fault.as_ref().map(|p| p.reseeded(p.seed ^ cell_seed.rotate_left(17)))
    }
}

// Parsed from CLI flags in `crate::cli` since the service PR; re-exported
// here because campaign code is where callers historically found it.
pub use crate::cli::fault_plan_from_args;

/// Run one of the four parallel configurations on one instance. Launch
/// failures, injected faults and corrupt results surface as [`SuiteError`]
/// (resilience — retries, reseeded re-attempts, oracle repair, CPU fallback
/// — has already been applied inside the pipelines by this point).
pub fn run_algo_on_instance(
    inst: &Instance,
    algo: AlgoKind,
    cfg: &CampaignConfig,
    seed: u64,
) -> Result<GpuRunResult, SuiteError> {
    let spec = GpuSolveSpec {
        blocks: cfg.blocks,
        block_size: cfg.block_size,
        device: cfg.device.clone(),
        fault: cfg.cell_fault_plan(seed),
        ..Default::default()
    };
    run_gpu_solve(inst, algo.algorithm(), algo.iterations(), seed, &spec)
}

/// Which CPU implementation a speed-up is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuBaseline {
    /// A single long SA chain — the Lässig et al. [7] stand-in.
    LassigSa,
    /// A (μ+λ) evolution strategy — the Feldmann–Biskup [18] stand-in.
    FeldmannBiskupEs,
}

impl CpuBaseline {
    /// Citation-style label used in Table III.
    pub fn label(self) -> &'static str {
        match self {
            CpuBaseline::LassigSa => "[7]",
            CpuBaseline::FeldmannBiskupEs => "[18]",
        }
    }
}

/// Measure a **work-matched** CPU baseline: the chosen CPU metaheuristic is
/// given the same total number of fitness evaluations the GPU ensemble
/// performs (`ensemble × generations`), and its wall-clock time is measured.
///
/// This is the substitution for the published CPU runtimes of [7]/[18]
/// (different machines, unavailable offline): both sides of the resulting
/// speed-up run the same fitness code on the same host, so the ratio and
/// its growth with `n` are meaningful. Returns `(seconds, objective)`.
pub fn cpu_baseline_seconds(
    inst: &Instance,
    evaluations: u64,
    style: CpuBaseline,
    seed: u64,
) -> (f64, Cost) {
    let eval = evaluator_for(inst);
    let start = Instant::now();
    let objective = match style {
        CpuBaseline::LassigSa => {
            let sa = SimulatedAnnealing::new(
                eval.as_ref(),
                SaParams { iterations: evaluations.saturating_sub(1).max(1), ..Default::default() },
            );
            sa.run(seed).objective
        }
        CpuBaseline::FeldmannBiskupEs => {
            // μ+λ ES: evaluations ≈ μ + λ·generations.
            let (mu, lambda) = (10u64, 20u64);
            let generations = (evaluations.saturating_sub(mu) / lambda).max(1);
            let es = EvolutionStrategy::new(
                eval.as_ref(),
                EsParams { mu: mu as usize, lambda: lambda as usize, generations },
            );
            es.run(seed).objective
        }
    };
    (start.elapsed().as_secs_f64(), objective)
}

/// Location of the frozen best-known table (`CDD_BEST_KNOWN` overrides).
pub fn best_known_path() -> PathBuf {
    std::env::var_os("CDD_BEST_KNOWN")
        .map(Into::into)
        .unwrap_or_else(|| PathBuf::from("data/best_known/best_known.txt"))
}

/// Deterministic per-instance seed (mixes the campaign seed with the id).
pub fn instance_seed(base: u64, id: &InstanceId) -> u64 {
    let mut z = base ^ (id.n as u64) << 32
        ^ (id.k as u64) << 8
        ^ id.h.map_or(0, |h| (h * 10.0) as u64);
    // SplitMix64 finalizer.
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The reference CPU solver that produces best-known values: an
/// asynchronous CPU SA ensemble seeded from the V-shaped heuristic spread
/// (the role the published results of [7]/[8] play in the paper — see
/// DESIGN.md §2).
pub fn reference_best(inst: &Instance, chains: usize, iterations: u64, seed: u64) -> Cost {
    use cdd_gpu::{initial_ensemble, InitStrategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let eval = evaluator_for(inst);
    let mut rng = StdRng::seed_from_u64(seed);
    let heuristic = cdd_core::heuristics::v_shaped_sequence(inst);
    let t0 =
        cdd_meta::initial_temperature_local(eval.as_ref(), &heuristic, 4, 300, &mut rng);
    let sa = SimulatedAnnealing::new(
        eval.as_ref(),
        SaParams { iterations, t0: Some(t0), ..Default::default() },
    );
    let n = inst.n();
    let flat = initial_ensemble(inst, chains, InitStrategy::VShapedSpread, &mut rng);
    let mut best = Cost::MAX;
    for c in 0..chains {
        let start = cdd_core::JobSequence::from_vec(flat[c * n..(c + 1) * n].to_vec())
            .expect("ensemble rows are permutations");
        best = best.min(sa.run_from(start, &mut rng).objective);
    }
    best
}

/// Make sure every id has a best-known entry, computing missing ones with
/// [`reference_best`] (default reference budget). Returns how many were
/// computed.
pub fn ensure_best_known(
    ids: &[InstanceId],
    table: &mut BestKnown,
    chains: usize,
    iterations: u64,
) -> usize {
    let mut computed = 0;
    for id in ids {
        let key = id.to_string();
        if table.get(&key).is_none() {
            let inst = id.instantiate();
            let obj = reference_best(&inst, chains, iterations, 0xBE57 ^ instance_seed(0, id));
            table.improve(&key, obj);
            computed += 1;
            eprintln!("  best-known[{key}] = {obj} (computed)");
        }
    }
    computed
}

/// Run the four parallel configurations over a suite and aggregate average
/// `%Δ` per size class — the computation behind Tables II and IV.
///
/// Resilience plumbing:
///
/// - every completed cell is appended to `journal` (when given) with an
///   atomic rewrite, so a killed campaign resumes from its intact prefix;
///   journaled cells are replayed instead of re-run, and because per-cell
///   seeds and fault plans are pure functions of `cfg`, the resumed CSVs
///   are byte-identical to an uninterrupted run's;
/// - a failing cell (device unusable, result unrecoverable) is isolated: it
///   becomes a `failed: …` detail row and is excluded from that size's
///   average instead of aborting the campaign;
/// - `max_cells` bounds the number of cells *executed* (journal replays are
///   free) — the campaign stops early once the budget is spent, which is
///   how the resume test (and an operator pacing a long campaign) slices
///   work;
/// - `observer` (when given) accumulates per-kernel metrics and the
///   modeled-clock trace; replayed cells fold their journaled metrics in,
///   so a resumed campaign's cell counters match an uninterrupted one's.
///
/// Returns `(summary rows, per-instance detail table)`.
pub fn run_quality_suite(
    cfg: &CampaignConfig,
    ids: &[InstanceId],
    best: &BestKnown,
    mut journal: Option<&mut Journal>,
    max_cells: Option<usize>,
    mut observer: Option<&mut CampaignObserver>,
) -> (Vec<QualityRow>, crate::report::Table) {
    let algos = gpu_algorithms();
    let mut detail = crate::report::Table::new(vec![
        "instance", "algorithm", "objective", "best_known", "pct_delta", "gpu_modeled_s", "status",
    ]);
    let mut rows = Vec::new();
    let mut executed = 0usize;
    'sizes: for &n in &cfg.sizes {
        let members: Vec<&InstanceId> = ids.iter().filter(|id| id.n == n).collect();
        if members.is_empty() {
            continue;
        }
        let mut sums = vec![0.0f64; algos.len()];
        let mut counts = vec![0usize; algos.len()];
        for id in &members {
            let inst = id.instantiate();
            let key = id.to_string();
            let best_value = best
                .get(&key)
                .unwrap_or_else(|| panic!("no best-known value for {key}; run make_best_known"));
            for (a, &algo) in algos.iter().enumerate() {
                let seed = instance_seed(cfg.seed, id);
                let cell = match journal.as_ref().and_then(|j| j.get(&key, algo.label(), seed)) {
                    Some(rec) => {
                        let rec = rec.clone();
                        if let Some(obs) = observer.as_deref_mut() {
                            obs.record_cell(&rec, CellSource::Replayed);
                        }
                        Ok(rec)
                    }
                    None => {
                        if max_cells.is_some_and(|limit| executed >= limit) {
                            eprintln!(
                                "  stopping early: --max-cells {} exhausted (resume to continue)",
                                executed
                            );
                            break 'sizes;
                        }
                        executed += 1;
                        match run_algo_on_instance(&inst, algo, cfg, seed) {
                            Ok(r) => {
                                let rec = cell_record(&key, algo, seed, &r);
                                if let Some(j) = journal.as_deref_mut() {
                                    j.record(rec.clone()).expect("journal writable");
                                }
                                if let Some(obs) = observer.as_deref_mut() {
                                    obs.record_run(&format!("{key}/{}", algo.label()), &r);
                                    obs.record_cell(&rec, CellSource::Executed);
                                }
                                Ok(rec)
                            }
                            Err(e) => {
                                if let Some(obs) = observer.as_deref_mut() {
                                    obs.record_failure();
                                }
                                Err(e)
                            }
                        }
                    }
                };
                match cell {
                    Ok(rec) => {
                        let delta =
                            best.percent_delta(&key, rec.objective).expect("key checked above");
                        sums[a] += delta;
                        counts[a] += 1;
                        detail.push(vec![
                            key.clone(),
                            algo.label().to_string(),
                            rec.objective.to_string(),
                            best_value.to_string(),
                            format!("{delta:.3}"),
                            format!("{:.6}", rec.modeled_seconds),
                            rec.status,
                        ]);
                    }
                    Err(e) => {
                        eprintln!("  cell {key}/{} failed: {e}", algo.label());
                        detail.push(vec![
                            key.clone(),
                            algo.label().to_string(),
                            "-".to_string(),
                            best_value.to_string(),
                            "-".to_string(),
                            "-".to_string(),
                            format!("failed: {e}"),
                        ]);
                    }
                }
            }
        }
        rows.push(QualityRow {
            n,
            deltas: sums
                .iter()
                .zip(&counts)
                .map(|(s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
                .collect(),
            instances: members.len(),
        });
        eprintln!("  n = {n}: averaged {} instances", members.len());
    }
    (rows, detail)
}

/// Build the journal record for one completed run (also the unit the
/// observer counts, so fresh and replayed cells fold identical numbers).
fn cell_record(key: &str, algo: AlgoKind, seed: u64, r: &GpuRunResult) -> CellRecord {
    CellRecord {
        instance: key.to_string(),
        algo: algo.label().to_string(),
        seed,
        objective: r.objective,
        modeled_seconds: r.modeled_seconds,
        kernel_seconds: r.kernel_seconds,
        transfer_seconds: r.transfer_seconds,
        kernel_launches: r.kernel_launches as u64,
        faults_injected: r.recovery.faults.transient_launch_failures
            + r.recovery.faults.bit_flips
            + r.recovery.faults.hung_kernels,
        status: if r.recovery.cpu_fallback {
            "ok-cpu-fallback".to_string()
        } else {
            "ok".to_string()
        },
    }
}

/// Run the speed-up measurement for one problem kind — the computation
/// behind Tables III/V and Figs. 13–14/16–17.
///
/// GPU modeled time is taken on a representative instance per size (runtime
/// is penalty-independent); the CPU baselines get a work-matched evaluation
/// budget (see [`cpu_baseline_seconds`]); `observer` (when given) collects
/// the same per-kernel metrics and modeled-clock trace as the quality
/// campaigns.
pub fn run_speedup_suite(
    cfg: &CampaignConfig,
    representative: impl Fn(usize) -> InstanceId,
    with_es_baseline: bool,
    mut observer: Option<&mut CampaignObserver>,
) -> (crate::report::Table, crate::report::Table) {
    let algos = gpu_algorithms();
    let mut headers = vec!["Jobs".to_string()];
    for algo in algos {
        headers.push(format!("{}-vs[7]", algo.label()));
        if with_es_baseline {
            headers.push(format!("{}-vs[18]", algo.label()));
        }
    }
    let mut speedup = crate::report::Table::new(headers);
    let mut runtime = crate::report::Table::new(vec![
        "Jobs".to_string(),
        "SA1000-gpu-s".into(),
        "SA5000-gpu-s".into(),
        "DPSO1000-gpu-s".into(),
        "DPSO5000-gpu-s".into(),
        "CPU[7]-1000-s".into(),
        "CPU[7]-5000-s".into(),
    ]);

    for &n in &cfg.sizes {
        let id = representative(n);
        let inst = id.instantiate();
        let seed = instance_seed(cfg.seed, &id);

        // CPU baselines, measured once per (n, generation budget).
        let evals_1000 = cfg.ensemble() as u64 * 1000;
        let evals_5000 = cfg.ensemble() as u64 * 5000;
        let (cpu_sa_1000, _) = cpu_baseline_seconds(&inst, evals_1000, CpuBaseline::LassigSa, seed);
        let (cpu_sa_5000, _) = cpu_baseline_seconds(&inst, evals_5000, CpuBaseline::LassigSa, seed);
        let (cpu_es_1000, cpu_es_5000) = if with_es_baseline {
            let (a, _) = cpu_baseline_seconds(&inst, evals_1000, CpuBaseline::FeldmannBiskupEs, seed);
            let (b, _) = cpu_baseline_seconds(&inst, evals_5000, CpuBaseline::FeldmannBiskupEs, seed);
            (a, b)
        } else {
            (0.0, 0.0)
        };

        let mut srow = vec![n.to_string()];
        let mut gpu_cells = Vec::new();
        for algo in algos {
            // A failed cell is isolated: its columns render as `err` and the
            // rest of the sweep continues.
            match run_algo_on_instance(&inst, algo, cfg, seed) {
                Ok(r) => {
                    if let Some(obs) = observer.as_deref_mut() {
                        let key = id.to_string();
                        obs.record_run(&format!("{key}/{}", algo.label()), &r);
                        obs.record_cell(&cell_record(&key, algo, seed, &r), CellSource::Executed);
                    }
                    let cpu_sa = if algo.iterations() == 1000 { cpu_sa_1000 } else { cpu_sa_5000 };
                    srow.push(format!("{:.1}", cpu_sa / r.modeled_seconds));
                    if with_es_baseline {
                        let cpu_es =
                            if algo.iterations() == 1000 { cpu_es_1000 } else { cpu_es_5000 };
                        srow.push(format!("{:.1}", cpu_es / r.modeled_seconds));
                    }
                    gpu_cells.push(format!("{:.6}", r.modeled_seconds));
                }
                Err(e) => {
                    eprintln!("  cell n={n}/{} failed: {e}", algo.label());
                    if let Some(obs) = observer.as_deref_mut() {
                        obs.record_failure();
                    }
                    srow.push("err".to_string());
                    if with_es_baseline {
                        srow.push("err".to_string());
                    }
                    gpu_cells.push("err".to_string());
                }
            }
        }
        speedup.push(srow);
        let mut rrow = vec![n.to_string()];
        rrow.extend(gpu_cells);
        rrow.push(format!("{cpu_sa_1000:.4}"));
        rrow.push(format!("{cpu_sa_5000:.4}"));
        runtime.push(rrow);
        eprintln!("  n = {n}: done");
    }
    (speedup, runtime)
}

#[derive(Debug, Clone)]
/// One row of a quality table: average `%Δ` per algorithm for a size class.
pub struct QualityRow {
    /// Job count.
    pub n: usize,
    /// Average percentage deviation per algorithm (table order).
    pub deltas: Vec<f64>,
    /// Instances averaged.
    pub instances: usize,
}

#[derive(Debug, Clone)]
/// One row of a speed-up table.
pub struct SpeedupRow {
    /// Job count.
    pub n: usize,
    /// Modeled GPU seconds per algorithm (table order).
    pub gpu_seconds: Vec<f64>,
    /// Measured CPU baseline seconds per algorithm and baseline.
    pub speedups: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_metadata() {
        assert_eq!(AlgoKind::Sa5000.iterations(), 5000);
        assert_eq!(AlgoKind::Dpso1000.label(), "DPSO1000");
        assert!(AlgoKind::Sa1000.is_sa());
        assert!(!AlgoKind::Dpso5000.is_sa());
        assert_eq!(AlgoKind::Sa5000.algorithm(), Algorithm::Sa);
        assert_eq!(AlgoKind::Dpso1000.algorithm(), Algorithm::Dpso);
        assert_eq!(gpu_algorithms().len(), 4);
    }

    #[test]
    fn default_config_matches_paper_geometry() {
        let cfg = CampaignConfig::default();
        assert_eq!(cfg.ensemble(), 768);
        assert_eq!(CampaignConfig::full().sizes.last(), Some(&1000));
    }

    #[test]
    fn gpu_run_dispatches_both_algorithms() {
        let inst = Instance::paper_example_cdd();
        let cfg = CampaignConfig { blocks: 1, block_size: 32, ..Default::default() };
        let sa = run_algo_on_instance(
            &inst,
            AlgoKind::Sa1000,
            &CampaignConfig { sizes: vec![], blocks: 1, block_size: 16, ..cfg.clone() },
            1,
        )
        .unwrap();
        assert!(sa.objective > 0 && sa.modeled_seconds > 0.0);
        let dpso = run_algo_on_instance(
            &inst,
            AlgoKind::Dpso1000,
            &CampaignConfig { sizes: vec![], blocks: 1, block_size: 16, ..cfg },
            1,
        )
        .unwrap();
        assert!(dpso.objective > 0 && dpso.modeled_seconds > 0.0);
    }

    #[test]
    fn cell_fault_plans_are_deterministic_and_decorrelated() {
        let base = FaultPlan::with_rates(77, 0.05, 0.01, 0.02);
        let cfg = CampaignConfig { fault: Some(base), ..Default::default() };
        let a = cfg.cell_fault_plan(1).unwrap();
        let b = cfg.cell_fault_plan(1).unwrap();
        let c = cfg.cell_fault_plan(2).unwrap();
        assert_eq!(a, b, "same cell seed, same plan");
        assert_ne!(a.seed, c.seed, "different cells draw different fault sequences");
        assert!(CampaignConfig::default().cell_fault_plan(1).is_none());
    }

    #[test]
    fn fault_flags_build_a_plan_only_when_nonzero() {
        let clean = crate::cli::Args::from_iter(["--seed".to_string(), "1".into()]);
        assert!(fault_plan_from_args(&clean).is_none());
        let faulty = crate::cli::Args::from_iter(
            ["--launch-failure-rate", "0.05", "--fault-seed", "9"].map(String::from),
        );
        let plan = fault_plan_from_args(&faulty).unwrap();
        assert_eq!(plan.seed, 9);
        assert!(plan.is_active());
    }

    #[test]
    fn cpu_baselines_return_time_and_quality() {
        let inst = Instance::paper_example_cdd();
        let (secs, obj) = cpu_baseline_seconds(&inst, 2000, CpuBaseline::LassigSa, 3);
        assert!(secs > 0.0);
        assert!(obj > 0);
        let (secs, obj) = cpu_baseline_seconds(&inst, 2000, CpuBaseline::FeldmannBiskupEs, 3);
        assert!(secs > 0.0);
        assert!(obj > 0);
    }
}
