//! Convergence-curve post-processing: turn a pipeline's
//! [`ConvergenceTrace`] into the per-generation CSV rows and JSON summary
//! fragments the `fig12_convergence` and `ablation_async_vs_sync` binaries
//! emit.
//!
//! Everything here is a pure function of the trace, which is itself
//! deterministic in `(instance, params, seed)` — the emitted artifacts
//! byte-compare across runs, which the CI `convergence-smoke` job relies
//! on.

use crate::Table;
use cdd_gpu::{ConvergenceSummary, ConvergenceTrace};

/// Column set of the per-generation curves CSV. One row per `(run label,
/// sampled generation)`; ensemble aggregates only, so the file stays small
/// at paper-scale ensembles.
#[must_use]
pub fn curve_headers() -> Vec<&'static str> {
    vec![
        "instance",
        "algorithm",
        "gen",
        "temperature",
        "ensemble_best",
        "mean_best",
        "mean_current",
        "mean_aux",
    ]
}

fn mean(values: &[i64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
}

/// Append one row per sampled generation of `trace` to a curves table
/// (headers from [`curve_headers`]).
pub fn push_curve_rows(table: &mut Table, instance: &str, trace: &ConvergenceTrace) {
    for s in &trace.samples {
        table.push(vec![
            instance.to_string(),
            trace.algorithm.clone(),
            s.gen.to_string(),
            format!("{:.6e}", s.temperature),
            s.ensemble_best().to_string(),
            format!("{:.3}", mean(&s.best)),
            format!("{:.3}", mean(&s.current)),
            format!("{:.3}", mean(&s.aux)),
        ]);
    }
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |g| g.to_string())
}

/// One run's summary statistics as a JSON object (compact, key order
/// fixed — byte-stable across runs).
#[must_use]
pub fn summary_object(instance: &str, trace: &ConvergenceTrace) -> String {
    let s = ConvergenceSummary::from_trace(trace);
    format!(
        "{{\"instance\": \"{instance}\", \"algorithm\": \"{}\", \"chains\": {}, \
         \"samples\": {}, \"final_best\": {}, \"generations_to_within_1pct\": {}, \
         \"stalled_chain_fraction\": {:.4}, \"acceptance_rate_final\": {:.4}, \
         \"diversity_collapse_gen\": {}}}",
        trace.algorithm,
        s.chains,
        s.samples,
        s.final_best,
        json_opt(s.generations_to_within_1pct),
        s.stalled_chain_fraction,
        s.acceptance_rate_final,
        json_opt(s.diversity_collapse_gen),
    )
}

/// A markdown-table row of the same summary, for the stdout report.
#[must_use]
pub fn summary_row(instance: &str, trace: &ConvergenceTrace) -> Vec<String> {
    let s = ConvergenceSummary::from_trace(trace);
    vec![
        instance.to_string(),
        trace.algorithm.clone(),
        s.final_best.to_string(),
        s.generations_to_within_1pct.map_or_else(|| "-".to_string(), |g| g.to_string()),
        format!("{:.2}", s.stalled_chain_fraction),
        format!("{:.3}", s.acceptance_rate_final),
        s.diversity_collapse_gen.map_or_else(|| "-".to_string(), |g| g.to_string()),
    ]
}

/// Headers matching [`summary_row`].
#[must_use]
pub fn summary_headers() -> Vec<&'static str> {
    vec!["instance", "algorithm", "final-best", "gens-to-1%", "stalled-frac", "accept-rate", "collapse-gen"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_gpu::GenerationSample;

    fn trace() -> ConvergenceTrace {
        ConvergenceTrace {
            algorithm: "sa".into(),
            stride: 2,
            chains: 2,
            gens_per_span: 1,
            samples: vec![
                GenerationSample {
                    gen: 0,
                    temperature: 100.0,
                    best: vec![9, 7],
                    current: vec![9, 7],
                    aux: vec![0, 1],
                },
                GenerationSample {
                    gen: 2,
                    temperature: 80.0,
                    best: vec![5, 7],
                    current: vec![6, 7],
                    aux: vec![2, 1],
                },
            ],
            counters: vec![2, 1],
        }
    }

    #[test]
    fn curve_rows_aggregate_the_ensemble() {
        let mut t = Table::new(curve_headers());
        push_curve_rows(&mut t, "cdd-10-1", &trace());
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][4], "7", "ensemble best of sample 0");
        assert_eq!(t.rows[1][5], "6.000", "mean best of sample 1");
        assert_eq!(t.rows[1][2], "2", "generation index survives the stride");
    }

    #[test]
    fn summary_object_is_valid_shaped_json() {
        let json = summary_object("cdd-10-1", &trace());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"final_best\": 5"));
        assert!(json.contains("\"generations_to_within_1pct\": 2"));
        assert!(json.contains("\"diversity_collapse_gen\": null"));
    }

    #[test]
    fn summary_row_matches_its_headers() {
        assert_eq!(summary_row("x", &trace()).len(), summary_headers().len());
    }
}
