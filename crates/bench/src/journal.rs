//! Resumable campaign journal: one JSONL record per completed campaign cell
//! (`instance × algorithm × seed`), rewritten atomically (temp file + rename)
//! after every completed cell so a killed run never leaves a torn journal.
//!
//! A fresh run truncates the journal; `--resume` loads it and skips every
//! cell already recorded, replaying the stored result instead. Because the
//! per-cell seeds and fault plans are pure functions of the campaign
//! configuration, an interrupted-then-resumed campaign produces CSVs that
//! are byte-identical to an uninterrupted one.
//!
//! The format is deliberately minimal — flat JSON objects with string,
//! integer, float and boolean values, parsed by a tiny scanner below (the
//! offline dependency list rules out serde). Malformed lines are skipped on
//! load, so a journal truncated by a crash still resumes from its intact
//! prefix.

use cdd_core::Cost;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;

/// One completed campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Instance id (e.g. `cdd-n10-k1-h0.6`).
    pub instance: String,
    /// Algorithm label (e.g. `SA1000`).
    pub algo: String,
    /// Per-cell seed the run used.
    pub seed: u64,
    /// Oracle-verified objective.
    pub objective: Cost,
    /// Modeled GPU seconds (0 for CPU-fallback cells).
    pub modeled_seconds: f64,
    /// Modeled seconds spent inside kernels (subset of `modeled_seconds`).
    pub kernel_seconds: f64,
    /// Modeled seconds spent on host↔device transfers.
    pub transfer_seconds: f64,
    /// Kernel launches the winning device attempt performed.
    pub kernel_launches: u64,
    /// Faults injected across all device attempts of the cell.
    pub faults_injected: u64,
    /// Outcome label carried into the detail table (`ok`,
    /// `ok-cpu-fallback`, …) so replayed rows render identically.
    pub status: String,
}

impl CellRecord {
    fn key(&self) -> (String, String, u64) {
        (self.instance.clone(), self.algo.clone(), self.seed)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"instance\":{},\"algo\":{},\"seed\":{},\"objective\":{},\"modeled_seconds\":{:?},\
             \"kernel_seconds\":{:?},\"transfer_seconds\":{:?},\"kernel_launches\":{},\
             \"faults_injected\":{},\"status\":{}}}",
            escape(&self.instance),
            escape(&self.algo),
            self.seed,
            self.objective,
            self.modeled_seconds,
            self.kernel_seconds,
            self.transfer_seconds,
            self.kernel_launches,
            self.faults_injected,
            escape(&self.status),
        )
    }

    fn from_json(line: &str) -> Option<Self> {
        let fields = parse_flat_object(line)?;
        // The metric fields arrived after the first journals shipped, so
        // they default to zero — an old journal still resumes cleanly (and
        // since none of them feed the CSVs, replayed rows stay
        // byte-identical either way).
        fn num_or_zero<T: std::str::FromStr + Default>(
            fields: &BTreeMap<String, Value>,
            key: &str,
        ) -> T {
            fields.get(key).and_then(Value::as_num).unwrap_or_default()
        }
        Some(CellRecord {
            instance: fields.get("instance")?.as_str()?.to_string(),
            algo: fields.get("algo")?.as_str()?.to_string(),
            seed: fields.get("seed")?.as_num()?,
            objective: fields.get("objective")?.as_num()?,
            modeled_seconds: fields.get("modeled_seconds")?.as_num()?,
            kernel_seconds: num_or_zero(&fields, "kernel_seconds"),
            transfer_seconds: num_or_zero(&fields, "transfer_seconds"),
            kernel_launches: num_or_zero(&fields, "kernel_launches"),
            faults_injected: num_or_zero(&fields, "faults_injected"),
            status: fields.get("status")?.as_str()?.to_string(),
        })
    }
}

/// The on-disk journal plus its in-memory index.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: BTreeMap<(String, String, u64), CellRecord>,
}

impl Journal {
    /// Open a journal at `path`. With `resume` the existing file is loaded
    /// (tolerantly — malformed lines are skipped); without it the journal
    /// starts empty and the first recorded cell truncates any stale file.
    pub fn open(path: impl Into<PathBuf>, resume: bool) -> io::Result<Self> {
        let path = path.into();
        let mut records = BTreeMap::new();
        if resume {
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    for line in text.lines() {
                        if let Some(rec) = CellRecord::from_json(line) {
                            records.insert(rec.key(), rec);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(Journal { path, records })
    }

    /// Completed cells currently journaled.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no cell has completed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Look up a completed cell.
    pub fn get(&self, instance: &str, algo: &str, seed: u64) -> Option<&CellRecord> {
        self.records.get(&(instance.to_string(), algo.to_string(), seed))
    }

    /// Record a completed cell and persist the whole journal atomically
    /// (write to a sibling temp file, then rename over the journal).
    pub fn record(&mut self, rec: CellRecord) -> io::Result<()> {
        self.records.insert(rec.key(), rec);
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut out = String::new();
        for rec in self.records.values() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &self.path)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug, PartialEq)]
enum Value {
    Str(String),
    /// Numbers and booleans, kept as raw token text and parsed on demand.
    Raw(String),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Raw(_) => None,
        }
    }

    fn as_num<T: std::str::FromStr>(&self) -> Option<T> {
        match self {
            Value::Raw(s) => s.parse().ok(),
            Value::Str(_) => None,
        }
    }
}

/// Parse one flat JSON object (no nesting, no arrays). Returns `None` on any
/// syntax error — the caller skips the line.
fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Value>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => Value::Str(parse_string(&mut chars)?),
            _ => {
                let mut raw = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' {
                        break;
                    }
                    raw.push(c);
                    chars.next();
                }
                Value::Raw(raw.trim().to_string())
            }
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => {}
            '}' => break,
            _ => return None,
        }
    }
    Some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map_while(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> CellRecord {
        CellRecord {
            instance: "cdd-n10-k1-h0.6".into(),
            algo: "SA1000".into(),
            seed,
            objective: 124,
            modeled_seconds: 0.001953125,
            kernel_seconds: 0.0015,
            transfer_seconds: 0.000453125,
            kernel_launches: 4000,
            faults_injected: 3,
            status: "ok".into(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdd-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_records_through_disk() {
        let path = tmp("round_trip.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, false).unwrap();
        j.record(sample(1)).unwrap();
        j.record(sample(2)).unwrap();

        let j2 = Journal::open(&path, true).unwrap();
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.get("cdd-n10-k1-h0.6", "SA1000", 1), Some(&sample(1)));
        assert_eq!(j2.get("cdd-n10-k1-h0.6", "SA1000", 3), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        let path = tmp("float.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut rec = sample(7);
        rec.modeled_seconds = 0.1 + 0.2; // not representable prettily
        let mut j = Journal::open(&path, false).unwrap();
        j.record(rec.clone()).unwrap();
        let j2 = Journal::open(&path, true).unwrap();
        let got = j2.get(&rec.instance, &rec.algo, 7).unwrap();
        assert_eq!(got.modeled_seconds.to_bits(), rec.modeled_seconds.to_bits());
    }

    #[test]
    fn malformed_lines_are_skipped_on_resume() {
        let path = tmp("torn.jsonl");
        let good = sample(9).to_json();
        std::fs::write(&path, format!("{good}\nnot json\n{{\"instance\":\"x\"\n")).unwrap();
        let j = Journal::open(&path, true).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.get("cdd-n10-k1-h0.6", "SA1000", 9).is_some());
    }

    #[test]
    fn journals_without_metric_fields_still_load() {
        // Journals written before the metrics PR lack the kernel/transfer
        // fields; they must still resume, with the metrics defaulted to 0.
        let path = tmp("legacy.jsonl");
        let legacy = "{\"instance\":\"cdd-n10-k1-h0.6\",\"algo\":\"SA1000\",\"seed\":9,\
                      \"objective\":124,\"modeled_seconds\":0.5,\"status\":\"ok\"}";
        std::fs::write(&path, format!("{legacy}\n")).unwrap();
        let j = Journal::open(&path, true).unwrap();
        let rec = j.get("cdd-n10-k1-h0.6", "SA1000", 9).expect("legacy line parses");
        assert_eq!(rec.objective, 124);
        assert_eq!(rec.kernel_seconds, 0.0);
        assert_eq!(rec.transfer_seconds, 0.0);
        assert_eq!(rec.kernel_launches, 0);
        assert_eq!(rec.faults_injected, 0);
    }

    #[test]
    fn fresh_open_ignores_existing_file() {
        let path = tmp("fresh.jsonl");
        std::fs::write(&path, sample(4).to_json()).unwrap();
        let mut j = Journal::open(&path, false).unwrap();
        assert!(j.is_empty());
        j.record(sample(5)).unwrap();
        let j2 = Journal::open(&path, true).unwrap();
        assert_eq!(j2.len(), 1, "fresh run truncates the stale journal");
        assert!(j2.get("cdd-n10-k1-h0.6", "SA1000", 4).is_none());
    }

    #[test]
    fn escaped_strings_survive() {
        let path = tmp("escape.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut rec = sample(11);
        rec.status = "failed: \"quote\"\\back\nline".into();
        let mut j = Journal::open(&path, false).unwrap();
        j.record(rec.clone()).unwrap();
        let j2 = Journal::open(&path, true).unwrap();
        assert_eq!(j2.get(&rec.instance, &rec.algo, 11).unwrap().status, rec.status);
    }
}
