//! Result tables: markdown rendering (stdout) and CSV persistence
//! (`results/`).

use std::io;
use std::path::Path;

/// A rendered result table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build with headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row/header arity mismatch");
        self.rows.push(row);
    }
}

/// Render a GitHub-style markdown table.
pub fn render_markdown(table: &Table) -> String {
    let cols = table.headers.len();
    let mut widths: Vec<usize> = table.headers.iter().map(|h| h.len()).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let inner: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        format!("| {} |\n", inner.join(" | "))
    };
    out.push_str(&fmt_row(&table.headers, &widths));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("| {} |\n", dashes.join(" | ")));
    for row in &table.rows {
        out.push_str(&fmt_row(row, &widths));
    }
    let _ = cols;
    out
}

/// Write the table as CSV (RFC-4180-style quoting for cells containing
/// commas or quotes), creating parent directories. The write is atomic
/// (temp file + rename in the same directory), so a campaign killed
/// mid-write never leaves a torn CSV behind.
pub fn write_csv(table: &Table, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&table.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    let tmp = path.with_extension("csv.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)
}

/// Results directory (repo-relative by default, `CDD_RESULTS_DIR` override).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("CDD_RESULTS_DIR")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["Jobs", "SA1000"]);
        t.push(vec!["10", "0.159"]);
        t.push(vec!["1000", "1.904"]);
        t
    }

    #[test]
    fn markdown_is_aligned() {
        let md = render_markdown(&sample());
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Jobs"));
        assert!(lines[1].starts_with("| ----"));
        // All lines the same width (aligned columns).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["only-one"]);
    }

    #[test]
    fn csv_round_trip_with_quoting() {
        let mut t = Table::new(vec!["id", "note"]);
        t.push(vec!["x", "a,b"]);
        t.push(vec!["y", "say \"hi\""]);
        let dir = std::env::temp_dir().join("cdd-bench-test");
        let path = dir.join("t.csv");
        write_csv(&t, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"a,b\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
        assert!(!path.with_extension("csv.tmp").exists(), "atomic write leaves no temp file");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
