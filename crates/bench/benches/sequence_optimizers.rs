//! Criterion micro-benchmarks of layer (ii): the O(n) fixed-sequence
//! optimizers against the O(n²) breakpoint scan and the simplex LP — the
//! performance claim behind the paper's two-layered design.

use cdd_core::exact::cdd_objective_bruteforce;
use cdd_core::{optimize_cdd_sequence, optimize_ucddcp_sequence, JobSequence};
use cdd_instances::{cdd_instance, ucddcp_instance};
use cdd_lp::solve_cdd_sequence_lp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_cdd_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdd_fixed_sequence");
    group.sample_size(20).measurement_time(Duration::from_secs(1));
    for n in [10usize, 100, 1000] {
        let inst = cdd_instance(n, 1, 0.6);
        let seq = JobSequence::identity(n);
        group.bench_with_input(BenchmarkId::new("linear_o_n", n), &n, |b, _| {
            b.iter(|| optimize_cdd_sequence(&inst, &seq).objective)
        });
        if n <= 100 {
            group.bench_with_input(BenchmarkId::new("breakpoint_scan_o_n2", n), &n, |b, _| {
                b.iter(|| cdd_objective_bruteforce(&inst, &seq))
            });
        }
        if n <= 100 {
            group.bench_with_input(BenchmarkId::new("simplex_lp", n), &n, |b, _| {
                b.iter(|| solve_cdd_sequence_lp(&inst, &seq).expect("feasible").objective)
            });
        }
    }
    group.finish();
}

fn bench_ucddcp_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("ucddcp_fixed_sequence");
    group.sample_size(20).measurement_time(Duration::from_secs(1));
    for n in [10usize, 100, 1000] {
        let inst = ucddcp_instance(n, 1);
        let seq = JobSequence::identity(n);
        group.bench_with_input(BenchmarkId::new("linear_o_n", n), &n, |b, _| {
            b.iter(|| optimize_ucddcp_sequence(&inst, &seq).objective)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cdd_linear, bench_ucddcp_linear);
criterion_main!(benches);
