//! Criterion benchmarks of the simulated GPU pipeline: host cost of one
//! generation (all four kernels) for SA and DPSO, per problem size — the
//! quantity that bounds how fast the reproduction can sweep the paper's
//! campaigns. (The *modeled device time* is a result, not a benchmark; it
//! is reported by the table binaries.)

use cdd_gpu::{run_gpu_dpso, run_gpu_sa, GpuDpsoParams, GpuSaParams};
use cdd_instances::{cdd_instance, ucddcp_instance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_sa_generations(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_sa_10_generations_128_threads");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for n in [20usize, 100, 500] {
        let inst = cdd_instance(n, 1, 0.6);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                run_gpu_sa(
                    &inst,
                    &GpuSaParams {
                        blocks: 2,
                        block_size: 64,
                        iterations: 10,
                        t0: Some(100.0), // skip the 5000-sample estimate
                        ..Default::default()
                    },
                )
                .expect("valid launch")
                .objective
            })
        });
    }
    group.finish();
}

fn bench_dpso_generations(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_dpso_10_generations_128_threads");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for n in [20usize, 100] {
        let inst = ucddcp_instance(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                run_gpu_dpso(
                    &inst,
                    &GpuDpsoParams {
                        blocks: 2,
                        block_size: 64,
                        iterations: 10,
                        ..Default::default()
                    },
                )
                .expect("valid launch")
                .objective
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sa_generations, bench_dpso_generations);
criterion_main!(benches);
