//! Criterion micro-benchmarks of the two raw objective kernels — the exact
//! functions the simulated GPU's fitness kernel calls per thread — plus an
//! end-to-end SA-generation benchmark that exercises the full launch path
//! (perturb → fitness → accept → reduce) at both host-parallelism
//! settings. The `BENCH_pr5.json` snapshot (`bench_snapshot` bin) records
//! the wall-clock side of the same comparison.

use cdd_core::cdd_optimal::cdd_objective_raw;
use cdd_core::ucddcp_optimal::ucddcp_objective_raw;
use cdd_core::JobSequence;
use cdd_gpu::{run_gpu_sa, GpuSaParams};
use cdd_instances::{cdd_instance, ucddcp_instance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cuda_sim::SimParallelism;
use std::time::Duration;

fn bench_objective_raw(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_raw");
    group.sample_size(20).measurement_time(Duration::from_secs(1));
    for n in [10usize, 100, 1000] {
        let inst = cdd_instance(n, 1, 0.6);
        let (p, _, alpha, beta, _) = inst.to_arrays();
        let d = inst.due_date();
        let seq = JobSequence::identity(n);
        group.bench_with_input(BenchmarkId::new("cdd", n), &n, |b, _| {
            b.iter(|| cdd_objective_raw(&p, &alpha, &beta, d, seq.as_slice()))
        });

        let inst = ucddcp_instance(n, 1);
        let (p, m, alpha, beta, gamma) = inst.to_arrays();
        let d = inst.due_date();
        group.bench_with_input(BenchmarkId::new("ucddcp", n), &n, |b, _| {
            b.iter(|| ucddcp_objective_raw(&p, &m, &alpha, &beta, &gamma, d, seq.as_slice()))
        });
    }
    group.finish();
}

fn bench_sa_generations(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_sa_generations");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let inst = cdd_instance(50, 1, 0.6);
    for par in [SimParallelism::Serial, SimParallelism::Threads(2)] {
        let mut params = GpuSaParams {
            blocks: 2,
            block_size: 32,
            iterations: 20,
            ..GpuSaParams::default()
        };
        params.device.parallelism = par;
        group.bench_with_input(BenchmarkId::new("n50_20gen", par), &par, |b, _| {
            b.iter(|| run_gpu_sa(&inst, &params).expect("clean run").objective)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_objective_raw, bench_sa_generations);
criterion_main!(benches);
