//! Criterion benchmarks of the CPU metaheuristic cores — the baselines the
//! speed-up tables divide by — plus the perturbation and crossover
//! operators.

use cdd_core::eval::{CddEvaluator, SequenceEvaluator};
use cdd_core::JobSequence;
use cdd_instances::cdd_instance;
use cdd_meta::dpso::{one_point_crossover, two_point_crossover};
use cdd_meta::perturb::shuffle_random_positions;
use cdd_meta::{Dpso, DpsoParams, SaParams, SimulatedAnnealing};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_sa_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_sa_100_iterations");
    group.sample_size(20).measurement_time(Duration::from_secs(1));
    for n in [20usize, 100, 500] {
        let inst = cdd_instance(n, 1, 0.6);
        let eval = CddEvaluator::new(&inst);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let sa = SimulatedAnnealing::new(
                &eval,
                SaParams { iterations: 100, t0: Some(100.0), ..Default::default() },
            );
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sa.run(seed).objective
            })
        });
    }
    group.finish();
}

fn bench_dpso_swarm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_dpso_20_particles_50_iterations");
    group.sample_size(10).measurement_time(Duration::from_secs(1));
    for n in [20usize, 100] {
        let inst = cdd_instance(n, 1, 0.6);
        let eval = CddEvaluator::new(&inst);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let dpso = Dpso::new(
                &eval,
                DpsoParams { particles: 20, iterations: 50, ..Default::default() },
            );
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                dpso.run(seed).objective
            })
        });
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators_n1000");
    group.sample_size(50).measurement_time(Duration::from_secs(1));
    let n = 1000;
    let mut rng = StdRng::seed_from_u64(1);
    let a = JobSequence::random(n, &mut rng);
    let b_seq = JobSequence::random(n, &mut rng);

    group.bench_function("fisher_yates_window_pert4", |b| {
        let mut s = a.clone();
        b.iter(|| shuffle_random_positions(&mut s, 4, &mut rng))
    });
    group.bench_function("one_point_crossover", |b| {
        let mut out = Vec::with_capacity(n);
        b.iter(|| one_point_crossover(a.as_slice(), b_seq.as_slice(), n / 2, &mut out))
    });
    group.bench_function("two_point_crossover", |b| {
        let mut out = Vec::with_capacity(n);
        b.iter(|| two_point_crossover(a.as_slice(), b_seq.as_slice(), n / 4, 3 * n / 4, &mut out))
    });
    let inst = cdd_instance(1000, 1, 0.6);
    let eval = CddEvaluator::new(&inst);
    group.bench_function("fitness_eval_n1000", |b| b.iter(|| eval.evaluate(a.as_slice())));
    group.finish();
}

criterion_group!(benches, bench_sa_chain, bench_dpso_swarm, bench_operators);
criterion_main!(benches);
