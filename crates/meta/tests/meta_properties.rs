//! Property-based tests of the metaheuristic building blocks.

use cdd_core::eval::{CddEvaluator, SequenceEvaluator};
use cdd_core::{Instance, JobSequence, Time};
use cdd_meta::dpso::{one_point_crossover, two_point_crossover};
use cdd_meta::perturb::shuffle_random_positions;
use cdd_meta::sa::metropolis_accept;
use cdd_meta::{SaParams, SimulatedAnnealing};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn permutation(n: usize, seed: u64) -> JobSequence {
    JobSequence::random(n, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Both crossover operators are closed over permutations for arbitrary
    /// parents and cut points.
    #[test]
    fn crossovers_are_closed(
        n in 2usize..80,
        sa in any::<u64>(),
        sb in any::<u64>(),
        cut in any::<prop::sample::Index>(),
        lo in any::<prop::sample::Index>(),
        hi in any::<prop::sample::Index>(),
    ) {
        let a = permutation(n, sa);
        let b = permutation(n, sb);
        let mut out = Vec::new();
        one_point_crossover(a.as_slice(), b.as_slice(), cut.index(n + 1), &mut out);
        prop_assert!(JobSequence::from_vec(out.clone()).unwrap().is_valid_permutation());
        let (mut l, mut h) = (lo.index(n + 1), hi.index(n + 1));
        if l > h { std::mem::swap(&mut l, &mut h); }
        two_point_crossover(a.as_slice(), b.as_slice(), l, h, &mut out);
        prop_assert!(JobSequence::from_vec(out.clone()).unwrap().is_valid_permutation());
    }

    /// One-point crossover with `cut = n` reproduces parent A; with
    /// `cut = 0` it reproduces parent B.
    #[test]
    fn crossover_degenerate_cuts(n in 2usize..40, sa in any::<u64>(), sb in any::<u64>()) {
        let a = permutation(n, sa);
        let b = permutation(n, sb);
        let mut out = Vec::new();
        one_point_crossover(a.as_slice(), b.as_slice(), n, &mut out);
        prop_assert_eq!(&out[..], a.as_slice());
        one_point_crossover(a.as_slice(), b.as_slice(), 0, &mut out);
        prop_assert_eq!(&out[..], b.as_slice());
    }

    /// The metropolis rule is monotone: a larger uphill step is never more
    /// acceptable (at equal temperature and draw), and any move acceptable
    /// at temperature T stays acceptable at T' > T.
    #[test]
    fn metropolis_monotonicity(
        e in 0i64..1000,
        d1 in 0i64..500,
        d2 in 0i64..500,
        t in 0.1..1000.0f64,
        dt in 0.1..1000.0f64,
        u in 0.0..1.0f64,
    ) {
        let (small, large) = (e + d1.min(d2), e + d1.max(d2));
        if metropolis_accept(e, large, t, u) {
            prop_assert!(metropolis_accept(e, small, t, u));
        }
        if metropolis_accept(e, large, t, u) {
            prop_assert!(metropolis_accept(e, large, t + dt, u));
        }
        // Downhill is always accepted.
        prop_assert!(metropolis_accept(e, e - d1, t, u));
    }

    /// SA's reported best is never worse than the fitness of its own
    /// starting point (elitist best tracking).
    #[test]
    fn sa_never_loses_to_its_start(seed in any::<u64>(), n in 2usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let p: Vec<Time> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<Time> = (0..n).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<Time> = (0..n).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<Time>() as f64 * 0.5) as Time;
        let inst = Instance::cdd_from_arrays(&p, &a, &b, d).expect("valid");
        let eval = CddEvaluator::new(&inst);

        // Reconstruct the starting sequence SA will draw (t0 fixed so the
        // RNG stream is not consumed by the estimate).
        let mut sa_rng = StdRng::seed_from_u64(seed);
        let start = JobSequence::random(n, &mut sa_rng);
        let start_cost = eval.evaluate(start.as_slice());

        let sa = SimulatedAnnealing::new(
            &eval,
            SaParams { iterations: 40, t0: Some(25.0), ..Default::default() },
        );
        let r = sa.run(seed);
        prop_assert!(r.objective <= start_cost);
        prop_assert_eq!(r.objective, eval.evaluate(r.best.as_slice()));
    }

    /// The window perturbation never teleports more jobs than `pert`.
    #[test]
    fn perturbation_displacement_bound(
        n in 2usize..100,
        pert in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let original = permutation(n, seed ^ 1);
        let mut s = original.clone();
        shuffle_random_positions(&mut s, pert, &mut rng);
        prop_assert!(s.is_valid_permutation());
        let moved = s
            .as_slice()
            .iter()
            .zip(original.as_slice())
            .filter(|(x, y)| x != y)
            .count();
        prop_assert!(moved <= pert.min(n));
    }
}
