//! Simulated Annealing — the paper's Algorithm 1.
//!
//! ```text
//! s ← s₀;  T ← T₀;  E ← Fitness(s)
//! while i ≤ #Iterations:
//!     s_new ← Neighbour(s)            (Fisher–Yates window, Pert = 4)
//!     E_new ← Fitness(s_new)          (O(n) sequence optimizer)
//!     if exp((E − E_new)/T) ≥ rand(0,1):  s ← s_new; E ← E_new
//!     T ← T·μ
//! return s
//! ```
//!
//! A single long chain of this SA is also this suite's stand-in for the
//! sequential CPU implementation of Lässig et al. [7] (used as the
//! best-known-producer and the CPU-time baseline of Tables III/V).

use crate::cooling::Cooling;
use crate::perturb::{shuffle_random_positions, PAPER_PERT};
use crate::temperature::{initial_temperature, PAPER_SAMPLES};
use crate::MetaResult;
use cdd_core::eval::SequenceEvaluator;
use cdd_core::{Cost, JobSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one SA chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SaParams {
    /// Iteration budget (the paper evaluates 1000 and 5000).
    pub iterations: u64,
    /// Initial temperature; `None` applies the paper's rule (stddev of
    /// [`PAPER_SAMPLES`] random fitness values).
    pub t0: Option<f64>,
    /// Cooling schedule (paper: exponential, μ = 0.88).
    pub cooling: Cooling,
    /// Perturbation size `Pert` (paper: 4).
    pub pert: usize,
    /// Samples for the `T₀` estimate when `t0` is `None`.
    pub t0_samples: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            iterations: 1000,
            t0: None,
            cooling: Cooling::paper(),
            pert: PAPER_PERT,
            t0_samples: PAPER_SAMPLES,
        }
    }
}

impl SaParams {
    /// The paper's `SA₁₀₀₀` configuration.
    pub fn paper_1000() -> Self {
        SaParams { iterations: 1000, ..Default::default() }
    }

    /// The paper's `SA₅₀₀₀` configuration.
    pub fn paper_5000() -> Self {
        SaParams { iterations: 5000, ..Default::default() }
    }
}

/// A runnable SA optimizer bound to a fitness function.
pub struct SimulatedAnnealing<'a, E: SequenceEvaluator + ?Sized> {
    eval: &'a E,
    params: SaParams,
}

impl<'a, E: SequenceEvaluator + ?Sized> SimulatedAnnealing<'a, E> {
    /// Bind `params` to a fitness function.
    pub fn new(eval: &'a E, params: SaParams) -> Self {
        SimulatedAnnealing { eval, params }
    }

    /// The bound parameters.
    pub fn params(&self) -> &SaParams {
        &self.params
    }

    /// Run one chain from a random initial sequence derived from `seed`.
    pub fn run(&self, seed: u64) -> MetaResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let start = JobSequence::random(self.eval.n(), &mut rng);
        self.run_from(start, &mut rng)
    }

    /// Run one chain from an explicit initial sequence (the synchronous
    /// ensemble restarts chains from the broadcast best).
    pub fn run_from<R: Rng + ?Sized>(&self, start: JobSequence, rng: &mut R) -> MetaResult {
        let t0 = self
            .params
            .t0
            .unwrap_or_else(|| initial_temperature(self.eval, self.params.t0_samples, rng));
        let mut evaluations = 0u64;
        let mut current = start;
        let mut energy = self.eval.evaluate(current.as_slice());
        evaluations += 1;
        let mut best = current.clone();
        let mut best_energy = energy;

        let mut temp = t0;
        let mut candidate = current.clone();
        for k in 0..self.params.iterations {
            // Neighbour(s): copy-and-perturb, reusing the candidate buffer.
            candidate.clone_from(&current);
            shuffle_random_positions(&mut candidate, self.params.pert, rng);
            let e_new = self.eval.evaluate(candidate.as_slice());
            evaluations += 1;
            if metropolis_accept(energy, e_new, temp, rng.gen::<f64>()) {
                std::mem::swap(&mut current, &mut candidate);
                energy = e_new;
                if energy < best_energy {
                    best_energy = energy;
                    best.clone_from(&current);
                }
            }
            temp = self.params.cooling.step(temp, t0, k + 1);
        }
        MetaResult { best, objective: best_energy, evaluations }
    }
}

/// The metropolis criterion of Algorithm 1: accept iff
/// `exp((E − E_new)/T) ≥ u` for `u ~ U[0,1)`. Improvements (`E_new ≤ E`)
/// are always accepted.
#[inline]
pub fn metropolis_accept(energy: Cost, energy_new: Cost, temp: f64, u: f64) -> bool {
    if energy_new <= energy {
        return true;
    }
    if temp <= 0.0 {
        return false;
    }
    ((energy - energy_new) as f64 / temp).exp() >= u
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::eval::CddEvaluator;
    use cdd_core::exact::best_sequence_bruteforce;
    use cdd_core::Instance;

    #[test]
    fn metropolis_always_accepts_improvements() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(metropolis_accept(100, 90, 0.001, rng.gen()));
            assert!(metropolis_accept(100, 100, 0.001, rng.gen()));
        }
    }

    #[test]
    fn metropolis_rejects_huge_uphill_at_low_temperature() {
        // exp(-1000/0.1) ≈ 0: any u > 0 rejects.
        assert!(!metropolis_accept(0, 1000, 0.1, 0.5));
        // At enormous temperature the same move is accepted for small u.
        assert!(metropolis_accept(0, 1000, 1e9, 0.5));
    }

    #[test]
    fn metropolis_zero_temperature_is_greedy() {
        assert!(metropolis_accept(10, 9, 0.0, 0.99));
        assert!(!metropolis_accept(10, 11, 0.0, 0.0));
    }

    #[test]
    fn sa_finds_the_paper_example_optimum() {
        // n = 5: the global optimum is known by brute force; SA with the
        // paper's parameters must find it.
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let eval = CddEvaluator::new(&inst);
        let sa = SimulatedAnnealing::new(&eval, SaParams::paper_1000());
        let result = sa.run(42);
        assert_eq!(result.objective, optimum, "SA missed the global optimum");
        assert_eq!(result.objective, eval.evaluate(result.best.as_slice()));
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let inst = cdd_instances_like(12, 99);
        let eval = CddEvaluator::new(&inst);
        let short = SimulatedAnnealing::new(&eval, SaParams { iterations: 50, ..Default::default() });
        let long = SimulatedAnnealing::new(&eval, SaParams { iterations: 3000, ..Default::default() });
        // Compare best-of-3 to damp run-to-run noise.
        let s = (0..3).map(|i| short.run(i).objective).min().unwrap();
        let l = (0..3).map(|i| long.run(i).objective).min().unwrap();
        assert!(l <= s, "3000 iters ({l}) worse than 50 iters ({s})");
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let inst = cdd_instances_like(10, 7);
        let eval = CddEvaluator::new(&inst);
        let sa = SimulatedAnnealing::new(&eval, SaParams::paper_1000());
        let a = sa.run(123);
        let b = sa.run(123);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn evaluation_count_matches_budget() {
        let inst = cdd_instances_like(8, 3);
        let eval = CddEvaluator::new(&inst);
        let sa = SimulatedAnnealing::new(&eval, SaParams { iterations: 100, ..Default::default() });
        let r = sa.run(5);
        assert_eq!(r.evaluations, 101); // initial + one per iteration
    }

    /// Small deterministic random instance helper.
    fn cdd_instances_like(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let p: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.6) as i64;
        Instance::cdd_from_arrays(&p, &a, &b, d).unwrap()
    }
}
