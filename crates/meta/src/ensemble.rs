//! Multi-chain parallel SA schemes (Ferreiro et al. [12]).
//!
//! * [`AsyncEnsemble`] — the **asynchronous** scheme (paper Fig. 7): ω
//!   independent chains run to completion, then one reduction selects the
//!   best result. This is the scheme the paper adopts on the GPU ("the
//!   reason for choosing the asynchronous version … is the premature
//!   convergence of the [synchronous] approach").
//! * [`SyncEnsemble`] — the **synchronous** scheme (paper Fig. 8): at each
//!   temperature level every chain simulates a constant-temperature Markov
//!   chain of length `M`; the best final state is broadcast as everyone's
//!   start for the next level.
//!
//! Chains execute through rayon so multi-core hosts parallelize them; on the
//! single-core evaluation host they degrade gracefully to sequential
//! execution (wall-clock GPU comparisons use the `cuda-sim` model instead).

use crate::cooling::Cooling;
use crate::perturb::shuffle_random_positions;
use crate::sa::{metropolis_accept, SaParams, SimulatedAnnealing};
use crate::temperature::initial_temperature;
use crate::MetaResult;
use cdd_core::eval::SequenceEvaluator;
use cdd_core::{Cost, JobSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Asynchronous multi-chain SA (Fig. 7).
pub struct AsyncEnsemble<'a, E: SequenceEvaluator + ?Sized> {
    eval: &'a E,
    /// Number of independent chains ω (768 in the paper's GPU runs).
    pub chains: usize,
    /// Per-chain SA parameters.
    pub sa: SaParams,
}

impl<'a, E: SequenceEvaluator + Sync + ?Sized> AsyncEnsemble<'a, E> {
    /// Build an ensemble of `chains` chains.
    pub fn new(eval: &'a E, chains: usize, sa: SaParams) -> Self {
        AsyncEnsemble { eval, chains, sa }
    }

    /// Run all chains (seeded `base_seed + chain index`) and reduce.
    pub fn run(&self, base_seed: u64) -> MetaResult {
        let (result, _) = self.run_detailed(base_seed);
        result
    }

    /// Run and additionally return every chain's final objective (used by
    /// the async-vs-sync ablation to study the ensemble distribution).
    pub fn run_detailed(&self, base_seed: u64) -> (MetaResult, Vec<Cost>) {
        assert!(self.chains >= 1, "ensemble needs at least one chain");
        let sa = SimulatedAnnealing::new(self.eval, self.sa.clone());
        let results: Vec<MetaResult> = (0..self.chains)
            .into_par_iter()
            .map(|c| sa.run(base_seed.wrapping_add(c as u64)))
            .collect();
        let objectives: Vec<Cost> = results.iter().map(|r| r.objective).collect();
        let evaluations = results.iter().map(|r| r.evaluations).sum();
        let best = results
            .into_iter()
            .min_by_key(|r| r.objective)
            .expect("at least one chain");
        (MetaResult { evaluations, ..best }, objectives)
    }
}

/// Synchronous multi-chain SA (Fig. 8).
pub struct SyncEnsemble<'a, E: SequenceEvaluator + ?Sized> {
    eval: &'a E,
    /// Number of chains ω.
    pub chains: usize,
    /// Markov-chain length `M` per temperature level.
    pub markov_len: u64,
    /// Number of temperature levels `t`.
    pub levels: u64,
    /// Cooling schedule between levels.
    pub cooling: Cooling,
    /// Perturbation size.
    pub pert: usize,
}

impl<'a, E: SequenceEvaluator + Sync + ?Sized> SyncEnsemble<'a, E> {
    /// Build a synchronous ensemble with the paper-equivalent defaults
    /// (μ = 0.88 cooling, Pert = 4).
    pub fn new(eval: &'a E, chains: usize, markov_len: u64, levels: u64) -> Self {
        SyncEnsemble {
            eval,
            chains,
            markov_len,
            levels,
            cooling: Cooling::paper(),
            pert: crate::perturb::PAPER_PERT,
        }
    }

    /// Run the synchronized scheme.
    pub fn run(&self, base_seed: u64) -> MetaResult {
        assert!(self.chains >= 1, "ensemble needs at least one chain");
        let n = self.eval.n();
        let mut seed_rng = StdRng::seed_from_u64(base_seed);
        let t0 = initial_temperature(self.eval, 2000, &mut seed_rng);

        // Random initial state per chain (sⁱ in the paper's description).
        let mut states: Vec<(JobSequence, Cost)> = (0..self.chains)
            .map(|_| {
                let s = JobSequence::random(n, &mut seed_rng);
                let c = self.eval.evaluate(s.as_slice());
                (s, c)
            })
            .collect();
        let mut evaluations = self.chains as u64;

        let mut global_best = states
            .iter()
            .min_by_key(|(_, c)| *c)
            .map(|(s, c)| (s.clone(), *c))
            .expect("at least one chain");

        for level in 0..self.levels {
            let temp = self.cooling.temperature(t0, level);
            // Simulate one constant-temperature Markov chain per processor.
            let chain_results: Vec<(JobSequence, Cost, u64)> = states
                .par_iter()
                .enumerate()
                .map(|(i, (start, start_cost))| {
                    let mut rng = StdRng::seed_from_u64(
                        base_seed ^ (level.wrapping_mul(0x9E37) + i as u64).wrapping_mul(0x85EB_CA6B),
                    );
                    let mut cur = start.clone();
                    let mut cur_cost = *start_cost;
                    let mut cand = cur.clone();
                    let mut evals = 0u64;
                    for _ in 0..self.markov_len {
                        cand.clone_from(&cur);
                        shuffle_random_positions(&mut cand, self.pert, &mut rng);
                        let c = self.eval.evaluate(cand.as_slice());
                        evals += 1;
                        if metropolis_accept(cur_cost, c, temp, rng.gen::<f64>()) {
                            std::mem::swap(&mut cur, &mut cand);
                            cur_cost = c;
                        }
                    }
                    (cur, cur_cost, evals)
                })
                .collect();
            evaluations += chain_results.iter().map(|(_, _, e)| e).sum::<u64>();

            // Reduction: best final state becomes everyone's next start
            // (s_j^min in the paper).
            let (best_state, best_cost, _) = chain_results
                .iter()
                .min_by_key(|(_, c, _)| *c)
                .expect("at least one chain")
                .clone();
            if best_cost < global_best.1 {
                global_best = (best_state.clone(), best_cost);
            }
            for s in &mut states {
                s.0.clone_from(&best_state);
                s.1 = best_cost;
            }
        }

        MetaResult { best: global_best.0, objective: global_best.1, evaluations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::eval::CddEvaluator;
    use cdd_core::exact::best_sequence_bruteforce;
    use cdd_core::Instance;

    #[test]
    fn async_ensemble_beats_or_matches_single_chain() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let params = SaParams { iterations: 100, ..Default::default() };
        let single = SimulatedAnnealing::new(&eval, params.clone()).run(500);
        let ensemble = AsyncEnsemble::new(&eval, 16, params).run(500);
        assert!(ensemble.objective <= single.objective);
    }

    #[test]
    fn async_ensemble_reaches_small_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let eval = CddEvaluator::new(&inst);
        let r = AsyncEnsemble::new(&eval, 8, SaParams::paper_1000()).run(1);
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn async_detailed_reports_every_chain() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let params = SaParams { iterations: 50, ..Default::default() };
        let (best, objectives) = AsyncEnsemble::new(&eval, 12, params).run_detailed(3);
        assert_eq!(objectives.len(), 12);
        assert_eq!(best.objective, *objectives.iter().min().unwrap());
    }

    #[test]
    fn async_is_deterministic_per_seed() {
        let inst = Instance::paper_example_ucddcp();
        let eval = cdd_core::eval::UcddcpEvaluator::new(&inst);
        let params = SaParams { iterations: 40, ..Default::default() };
        let e = AsyncEnsemble::new(&eval, 6, params);
        assert_eq!(e.run(7).objective, e.run(7).objective);
    }

    #[test]
    fn sync_ensemble_reaches_small_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let eval = CddEvaluator::new(&inst);
        let r = SyncEnsemble::new(&eval, 8, 25, 40).run(2);
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn sync_ensemble_counts_evaluations() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let r = SyncEnsemble::new(&eval, 4, 10, 5).run(3);
        // init evals + chains × markov × levels
        assert_eq!(r.evaluations, 4 + 4 * 10 * 5);
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn empty_async_ensemble_rejected() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        AsyncEnsemble::new(&eval, 0, SaParams::default()).run(0);
    }
}
