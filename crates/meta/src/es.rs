//! A (μ+λ) evolution strategy on permutations.
//!
//! Stands in for the metaheuristics of Feldmann & Biskup [18] (evolutionary
//! strategies, threshold accepting, …), which the paper uses as its second
//! CPU baseline in Table III. The ES maintains μ parents; each generation
//! creates λ offspring by mutating random parents (swap / insert / window
//! shuffle) and keeps the best μ of parents ∪ offspring.

use crate::perturb::{random_insert, random_swap, shuffle_random_positions};
use crate::MetaResult;
use cdd_core::eval::SequenceEvaluator;
use cdd_core::{Cost, JobSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// (μ+λ) ES parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EsParams {
    /// Parent population size μ.
    pub mu: usize,
    /// Offspring per generation λ.
    pub lambda: usize,
    /// Generations.
    pub generations: u64,
}

impl Default for EsParams {
    fn default() -> Self {
        EsParams { mu: 10, lambda: 20, generations: 500 }
    }
}

/// A runnable ES bound to a fitness function.
pub struct EvolutionStrategy<'a, E: SequenceEvaluator + ?Sized> {
    eval: &'a E,
    params: EsParams,
}

impl<'a, E: SequenceEvaluator + ?Sized> EvolutionStrategy<'a, E> {
    /// Bind `params` to a fitness function.
    pub fn new(eval: &'a E, params: EsParams) -> Self {
        EvolutionStrategy { eval, params }
    }

    /// Run from a random population derived from `seed`.
    pub fn run(&self, seed: u64) -> MetaResult {
        assert!(self.params.mu >= 1 && self.params.lambda >= 1, "μ and λ must be >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.eval.n();
        let mut evaluations = 0u64;

        let mut population: Vec<(JobSequence, Cost)> = (0..self.params.mu)
            .map(|_| {
                let s = JobSequence::random(n, &mut rng);
                let c = self.eval.evaluate(s.as_slice());
                evaluations += 1;
                (s, c)
            })
            .collect();
        population.sort_by_key(|(_, c)| *c);

        for _ in 0..self.params.generations {
            for _ in 0..self.params.lambda {
                let parent = rng.gen_range(0..self.params.mu.min(population.len()));
                let mut child = population[parent].0.clone();
                match rng.gen_range(0..3u8) {
                    0 => random_swap(&mut child, &mut rng),
                    1 => random_insert(&mut child, &mut rng),
                    _ => shuffle_random_positions(&mut child, 4, &mut rng),
                }
                let cost = self.eval.evaluate(child.as_slice());
                evaluations += 1;
                population.push((child, cost));
            }
            // (μ+λ) selection: keep the best μ of parents ∪ offspring.
            population.sort_by_key(|(_, c)| *c);
            population.truncate(self.params.mu);
        }

        let (best, objective) = population.swap_remove(0);
        MetaResult { best, objective, evaluations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::eval::CddEvaluator;
    use cdd_core::exact::best_sequence_bruteforce;
    use cdd_core::Instance;

    #[test]
    fn es_finds_small_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let eval = CddEvaluator::new(&inst);
        let es = EvolutionStrategy::new(&eval, EsParams { mu: 5, lambda: 10, generations: 200 });
        assert_eq!(es.run(11).objective, optimum);
    }

    #[test]
    fn es_is_deterministic_and_counts_evaluations() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let es = EvolutionStrategy::new(&eval, EsParams { mu: 3, lambda: 6, generations: 10 });
        let a = es.run(1);
        let b = es.run(1);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.evaluations, 3 + 6 * 10);
    }

    #[test]
    fn selection_is_elitist() {
        // Objective of the returned best can never be worse than any parent
        // from an earlier generation; cheap check: longer runs don't regress.
        let inst = Instance::paper_example_ucddcp();
        let eval = cdd_core::eval::UcddcpEvaluator::new(&inst);
        let short = EvolutionStrategy::new(&eval, EsParams { mu: 4, lambda: 8, generations: 5 });
        let long = EvolutionStrategy::new(&eval, EsParams { mu: 4, lambda: 8, generations: 100 });
        assert!(long.run(9).objective <= short.run(9).objective);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_mu_rejected() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        EvolutionStrategy::new(&eval, EsParams { mu: 0, lambda: 1, generations: 1 }).run(0);
    }
}
