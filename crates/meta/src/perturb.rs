//! Neighborhood operators on job sequences.
//!
//! The paper's SA neighborhood (Section VI): "`Pert` number of jobs are
//! selected at random from the current sequence and shuffled using the
//! Fisher Yates algorithm", with `Pert = 4` for all experiments.

use cdd_core::JobSequence;
use rand::Rng;

/// The paper's perturbation size.
pub const PAPER_PERT: usize = 4;

/// Shuffle the jobs at `pert` distinct random positions among themselves
/// (Fisher–Yates over the selected positions). Every other position keeps
/// its job; the result is always a valid permutation.
pub fn shuffle_random_positions<R: Rng + ?Sized>(
    seq: &mut JobSequence,
    pert: usize,
    rng: &mut R,
) {
    let n = seq.len();
    if n < 2 || pert < 2 {
        return;
    }
    let pert = pert.min(n);
    // Reservoir-style draw of `pert` distinct positions (n is small enough
    // that a partial Fisher–Yates over an index pool is cheapest and exact).
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..pert {
        let j = i + rng.gen_range(0..n - i);
        pool.swap(i, j);
    }
    let positions = &mut pool[..pert];
    // Fisher–Yates over the *jobs* at those positions.
    for i in (1..pert).rev() {
        let j = rng.gen_range(0..=i);
        seq.swap(positions[i], positions[j]);
    }
}

/// Swap two distinct random positions (the DPSO velocity operator F₁).
pub fn random_swap<R: Rng + ?Sized>(seq: &mut JobSequence, rng: &mut R) {
    let n = seq.len();
    if n < 2 {
        return;
    }
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    seq.swap(a, b);
}

/// Remove a random job and reinsert it at a random position (insertion
/// neighborhood, used by the ES baseline).
pub fn random_insert<R: Rng + ?Sized>(seq: &mut JobSequence, rng: &mut R) {
    let n = seq.len();
    if n < 2 {
        return;
    }
    let from = rng.gen_range(0..n);
    let to = rng.gen_range(0..n);
    seq.insert_move(from, to);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shuffle_touches_at_most_pert_positions() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let mut s = JobSequence::identity(20);
            shuffle_random_positions(&mut s, 4, &mut rng);
            assert!(s.is_valid_permutation());
            let moved = s.as_slice().iter().enumerate().filter(|(i, &j)| *i != j as usize).count();
            assert!(moved <= 4, "moved {moved} positions");
        }
    }

    #[test]
    fn shuffle_eventually_moves_something() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut changed = 0;
        for _ in 0..100 {
            let mut s = JobSequence::identity(10);
            shuffle_random_positions(&mut s, 4, &mut rng);
            if s != JobSequence::identity(10) {
                changed += 1;
            }
        }
        // A 4-element random permutation is the identity 1/24 of the time;
        // 100 draws virtually never stay all-identity.
        assert!(changed > 50, "only {changed} perturbations changed the sequence");
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = JobSequence::identity(1);
        shuffle_random_positions(&mut s, 4, &mut rng);
        assert_eq!(s.as_slice(), &[0]);

        let mut s = JobSequence::identity(3);
        shuffle_random_positions(&mut s, 10, &mut rng); // pert > n clamps
        assert!(s.is_valid_permutation());
    }

    #[test]
    fn random_swap_swaps_exactly_two() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let mut s = JobSequence::identity(15);
            random_swap(&mut s, &mut rng);
            let moved = s.as_slice().iter().enumerate().filter(|(i, &j)| *i != j as usize).count();
            assert_eq!(moved, 2);
            assert!(s.is_valid_permutation());
        }
    }

    #[test]
    fn random_insert_preserves_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let mut s = JobSequence::identity(12);
            random_insert(&mut s, &mut rng);
            assert!(s.is_valid_permutation());
        }
    }
}
