//! Cooling schedules for Simulated Annealing.

/// How the temperature evolves over iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cooling {
    /// `T ← μ·T` each iteration (the paper uses μ = 0.88).
    Exponential {
        /// Multiplicative factor `0 < μ < 1`.
        rate: f64,
    },
    /// `T ← max(T − step, floor)` each iteration.
    Linear {
        /// Subtracted amount per iteration.
        step: f64,
        /// Lowest reachable temperature.
        floor: f64,
    },
    /// `T(k) = T₀ / (1 + k)` — classic logarithmic-style decay, useful in
    /// the cooling ablation.
    Harmonic,
}

impl Cooling {
    /// The paper's schedule: exponential with μ = 0.88.
    pub fn paper() -> Self {
        Cooling::Exponential { rate: 0.88 }
    }

    /// Temperature at iteration `k` (0-based) for initial temperature `t0`.
    pub fn temperature(&self, t0: f64, k: u64) -> f64 {
        match *self {
            Cooling::Exponential { rate } => t0 * rate.powi(k.min(i32::MAX as u64) as i32),
            Cooling::Linear { step, floor } => (t0 - step * k as f64).max(floor),
            Cooling::Harmonic => t0 / (1.0 + k as f64),
        }
    }

    /// One in-place step (`T ← next(T)` given the iteration just finished).
    pub fn step(&self, t: f64, t0: f64, next_k: u64) -> f64 {
        match *self {
            Cooling::Exponential { rate } => t * rate,
            _ => self.temperature(t0, next_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_matches_power() {
        let c = Cooling::paper();
        let t0 = 100.0;
        assert!((c.temperature(t0, 0) - 100.0).abs() < 1e-12);
        assert!((c.temperature(t0, 1) - 88.0).abs() < 1e-12);
        assert!((c.temperature(t0, 2) - 77.44).abs() < 1e-10);
    }

    #[test]
    fn exponential_step_is_consistent_with_closed_form() {
        let c = Cooling::paper();
        let t0 = 42.0;
        let mut t = t0;
        for k in 1..=20 {
            t = c.step(t, t0, k);
            assert!((t - c.temperature(t0, k)).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_clamps_at_floor() {
        let c = Cooling::Linear { step: 10.0, floor: 5.0 };
        assert_eq!(c.temperature(100.0, 0), 100.0);
        assert_eq!(c.temperature(100.0, 5), 50.0);
        assert_eq!(c.temperature(100.0, 50), 5.0);
    }

    #[test]
    fn harmonic_decays() {
        let c = Cooling::Harmonic;
        assert_eq!(c.temperature(100.0, 0), 100.0);
        assert_eq!(c.temperature(100.0, 1), 50.0);
        assert_eq!(c.temperature(100.0, 99), 1.0);
    }

    #[test]
    fn all_schedules_are_monotone_nonincreasing() {
        for c in [
            Cooling::paper(),
            Cooling::Linear { step: 3.0, floor: 0.5 },
            Cooling::Harmonic,
        ] {
            let mut prev = f64::INFINITY;
            for k in 0..100 {
                let t = c.temperature(50.0, k);
                assert!(t <= prev + 1e-12, "{c:?} increased at k={k}");
                assert!(t >= 0.0);
                prev = t;
            }
        }
    }
}
