//! Discrete Particle Swarm Optimization — the paper's Algorithm 2, with the
//! permutation update rule of Pan et al. (Eq. 3):
//!
//! ```text
//! pᵢ(t+1) = c₂ ⊕ F₃( c₁ ⊕ F₂( w ⊕ F₁(pᵢ(t)), pᵢᵇ(t) ), g(t) )
//! ```
//!
//! * `F₁` — *velocity*: swap two random positions (applied with prob. `w`);
//! * `F₂` — *cognition*: one-point crossover with the particle's personal
//!   best (prob. `c₁`);
//! * `F₃` — *social*: two-point crossover with the swarm best (prob. `c₂`);
//! * `c ⊕ F(x)` applies `F` with probability `c`, else keeps `x`.

use crate::perturb::random_swap;
use crate::MetaResult;
use cdd_core::eval::SequenceEvaluator;
use cdd_core::{Cost, JobSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DPSO parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DpsoParams {
    /// Swarm size (one particle per GPU thread in the parallel version).
    pub particles: usize,
    /// Generations (the paper evaluates 1000 and 5000).
    pub iterations: u64,
    /// Velocity probability `w` (apply F₁).
    pub w: f64,
    /// Cognition probability `c₁` (apply F₂ with the personal best).
    pub c1: f64,
    /// Social probability `c₂` (apply F₃ with the swarm best).
    pub c2: f64,
}

impl Default for DpsoParams {
    fn default() -> Self {
        DpsoParams { particles: 30, iterations: 1000, w: 0.9, c1: 0.8, c2: 0.8 }
    }
}

impl DpsoParams {
    /// `DPSO₁₀₀₀` with the given swarm size.
    pub fn paper_1000(particles: usize) -> Self {
        DpsoParams { particles, iterations: 1000, ..Default::default() }
    }

    /// `DPSO₅₀₀₀` with the given swarm size.
    pub fn paper_5000(particles: usize) -> Self {
        DpsoParams { particles, iterations: 5000, ..Default::default() }
    }
}

/// One-point crossover `F₂`: keep `a`'s prefix up to `cut` (exclusive), then
/// append `b`'s remaining jobs in `b`'s order. Always yields a permutation.
pub fn one_point_crossover(a: &[u32], b: &[u32], cut: usize, out: &mut Vec<u32>) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(cut <= a.len());
    let n = a.len();
    out.clear();
    out.extend_from_slice(&a[..cut]);
    let mut present = vec![false; n];
    for &j in &a[..cut] {
        present[j as usize] = true;
    }
    for &j in b {
        if !present[j as usize] {
            out.push(j);
        }
    }
}

/// Two-point crossover `F₃`: keep `a`'s segment `[lo, hi)` *in place*, fill
/// the remaining positions with `b`'s other jobs in `b`'s order. Always
/// yields a permutation.
pub fn two_point_crossover(a: &[u32], b: &[u32], lo: usize, hi: usize, out: &mut Vec<u32>) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(lo <= hi && hi <= a.len());
    let n = a.len();
    let mut present = vec![false; n];
    for &j in &a[lo..hi] {
        present[j as usize] = true;
    }
    out.clear();
    out.resize(n, u32::MAX);
    out[lo..hi].copy_from_slice(&a[lo..hi]);
    let mut fill = b.iter().filter(|&&j| !present[j as usize]);
    for k in (0..lo).chain(hi..n) {
        out[k] = *fill.next().expect("counts match by construction");
    }
}

/// A runnable DPSO optimizer bound to a fitness function.
pub struct Dpso<'a, E: SequenceEvaluator + ?Sized> {
    eval: &'a E,
    params: DpsoParams,
}

impl<'a, E: SequenceEvaluator + ?Sized> Dpso<'a, E> {
    /// Bind `params` to a fitness function.
    pub fn new(eval: &'a E, params: DpsoParams) -> Self {
        Dpso { eval, params }
    }

    /// The bound parameters.
    pub fn params(&self) -> &DpsoParams {
        &self.params
    }

    /// Run the swarm from random initial particles derived from `seed`.
    pub fn run(&self, seed: u64) -> MetaResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.eval.n();
        let m = self.params.particles.max(1);

        // Initialize population (Algorithm 2, lines 1–2).
        let mut positions: Vec<JobSequence> =
            (0..m).map(|_| JobSequence::random(n, &mut rng)).collect();
        let mut evaluations = 0u64;
        let mut pbest: Vec<JobSequence> = positions.clone();
        let mut pbest_cost: Vec<Cost> = positions
            .iter()
            .map(|p| {
                evaluations += 1;
                self.eval.evaluate(p.as_slice())
            })
            .collect();
        let (mut gbest_idx, _) = pbest_cost
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("swarm is non-empty");
        let mut gbest = pbest[gbest_idx].clone();
        let mut gbest_cost = pbest_cost[gbest_idx];

        let mut scratch: Vec<u32> = Vec::with_capacity(n);
        for _ in 0..self.params.iterations {
            for i in 0..m {
                // λ = w ⊕ F₁(p)
                if rng.gen::<f64>() < self.params.w {
                    random_swap(&mut positions[i], &mut rng);
                }
                // δ = c₁ ⊕ F₂(λ, pbest)
                if n >= 2 && rng.gen::<f64>() < self.params.c1 {
                    let cut = rng.gen_range(1..n);
                    one_point_crossover(
                        positions[i].as_slice(),
                        pbest[i].as_slice(),
                        cut,
                        &mut scratch,
                    );
                    positions[i] =
                        JobSequence::from_vec(scratch.clone()).expect("crossover is closed");
                }
                // x = c₂ ⊕ F₃(δ, g)
                if n >= 2 && rng.gen::<f64>() < self.params.c2 {
                    let mut lo = rng.gen_range(0..n);
                    let mut hi = rng.gen_range(0..n);
                    if lo > hi {
                        std::mem::swap(&mut lo, &mut hi);
                    }
                    two_point_crossover(
                        positions[i].as_slice(),
                        gbest.as_slice(),
                        lo,
                        hi + 1,
                        &mut scratch,
                    );
                    positions[i] =
                        JobSequence::from_vec(scratch.clone()).expect("crossover is closed");
                }
                // Evaluate; update personal best (Algorithm 2, lines 4, 7).
                let cost = self.eval.evaluate(positions[i].as_slice());
                evaluations += 1;
                if cost < pbest_cost[i] {
                    pbest_cost[i] = cost;
                    pbest[i].clone_from(&positions[i]);
                }
            }
            // Update swarm best (line 5).
            let (idx, &cost) = pbest_cost
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .expect("swarm is non-empty");
            if cost < gbest_cost {
                gbest_cost = cost;
                gbest_idx = idx;
                gbest.clone_from(&pbest[gbest_idx]);
            }
        }
        MetaResult { best: gbest, objective: gbest_cost, evaluations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::eval::CddEvaluator;
    use cdd_core::exact::best_sequence_bruteforce;
    use cdd_core::Instance;

    #[test]
    fn one_point_crossover_is_closed() {
        let a = [0u32, 1, 2, 3, 4];
        let b = [4u32, 3, 2, 1, 0];
        let mut out = Vec::new();
        for cut in 0..=5 {
            one_point_crossover(&a, &b, cut, &mut out);
            let seq = JobSequence::from_vec(out.clone()).unwrap();
            assert!(seq.is_valid_permutation());
        }
        // cut = 2: prefix [0,1], then b's order skipping 0,1 → [4,3,2].
        one_point_crossover(&a, &b, 2, &mut out);
        assert_eq!(out, vec![0, 1, 4, 3, 2]);
    }

    #[test]
    fn two_point_crossover_is_closed_and_keeps_segment() {
        let a = [0u32, 1, 2, 3, 4];
        let b = [4u32, 3, 2, 1, 0];
        let mut out = Vec::new();
        two_point_crossover(&a, &b, 1, 4, &mut out);
        // Segment [1,2,3] kept in place; remaining (4,0) from b's order.
        assert_eq!(out, vec![4, 1, 2, 3, 0]);
        for lo in 0..=5 {
            for hi in lo..=5 {
                two_point_crossover(&a, &b, lo, hi, &mut out);
                assert!(JobSequence::from_vec(out.clone()).unwrap().is_valid_permutation());
            }
        }
    }

    #[test]
    fn dpso_finds_small_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let eval = CddEvaluator::new(&inst);
        let dpso = Dpso::new(&eval, DpsoParams { particles: 20, iterations: 300, ..Default::default() });
        let r = dpso.run(7);
        assert_eq!(r.objective, optimum);
        assert_eq!(r.objective, eval.evaluate(r.best.as_slice()));
    }

    #[test]
    fn dpso_is_deterministic_per_seed() {
        let inst = Instance::paper_example_ucddcp();
        let eval = cdd_core::eval::UcddcpEvaluator::new(&inst);
        let dpso = Dpso::new(&eval, DpsoParams { particles: 8, iterations: 50, ..Default::default() });
        assert_eq!(dpso.run(3).objective, dpso.run(3).objective);
    }

    #[test]
    fn evaluations_counted() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let dpso = Dpso::new(&eval, DpsoParams { particles: 10, iterations: 20, ..Default::default() });
        let r = dpso.run(1);
        assert_eq!(r.evaluations, 10 + 10 * 20);
    }

    #[test]
    fn single_particle_swarm_works() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let dpso = Dpso::new(&eval, DpsoParams { particles: 1, iterations: 50, ..Default::default() });
        let r = dpso.run(2);
        assert!(r.objective >= 1);
        assert!(r.best.is_valid_permutation());
    }
}
