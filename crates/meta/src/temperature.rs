//! Initial-temperature estimation.
//!
//! The paper (Section VI) takes `T₀` as "the standard deviation of fitness
//! values of 5000 different job sequences, generated randomly", following
//! Salamon, Sibani & Frost, *Facts, Conjectures, and Improvements for
//! Simulated Annealing* (SIAM 2002).

use cdd_core::eval::SequenceEvaluator;
use cdd_core::JobSequence;
use rand::Rng;

/// Number of random samples the paper uses.
pub const PAPER_SAMPLES: usize = 5000;

/// Estimate `T₀` as the standard deviation of the objective over `samples`
/// uniformly random sequences.
///
/// Returns at least `1.0` so the metropolis rule stays well-defined even on
/// degenerate landscapes (e.g. all-zero penalties).
pub fn initial_temperature<E: SequenceEvaluator + ?Sized, R: Rng + ?Sized>(
    eval: &E,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples >= 2, "need at least two samples for a standard deviation");
    let n = eval.n();
    // Welford's online algorithm: single pass, numerically stable.
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut seq = JobSequence::identity(n);
    for count in 1..=samples {
        // In-place reshuffle (full Fisher–Yates) avoids re-allocating.
        seq.shuffle_window(0, n, rng);
        let x = eval.evaluate(seq.as_slice()) as f64;
        let delta = x - mean;
        mean += delta / count as f64;
        m2 += delta * (x - mean);
    }
    let variance = m2 / (samples - 1) as f64;
    variance.sqrt().max(1.0)
}

/// Estimate `T₀` from the **local move scale**: the standard deviation of
/// the fitness deltas of single perturbation moves (window shuffles of size
/// `pert`) applied to `start`.
///
/// The paper's random-sequence rule calibrates the temperature to the
/// *global* fitness spread, which is appropriate for randomly initialized
/// chains. When chains start from a constructive heuristic (see
/// `cdd-gpu::InitStrategy::VShapedSpread`), that global scale is orders of
/// magnitude above any single move's delta, and the first dozens of
/// accepted uphill moves destroy the good start. Calibrating to the move
/// scale keeps early exploration local — the deviation from the paper is
/// recorded in DESIGN.md/EXPERIMENTS.md.
pub fn initial_temperature_local<E: SequenceEvaluator + ?Sized, R: Rng + ?Sized>(
    eval: &E,
    start: &JobSequence,
    pert: usize,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples >= 2, "need at least two samples for a standard deviation");
    let base = eval.evaluate(start.as_slice()) as f64;
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut probe = start.clone();
    for count in 1..=samples {
        probe.clone_from(start);
        crate::perturb::shuffle_random_positions(&mut probe, pert, rng);
        let x = eval.evaluate(probe.as_slice()) as f64 - base;
        let delta = x - mean;
        mean += delta / count as f64;
        m2 += delta * (x - mean);
    }
    let variance = m2 / (samples - 1) as f64;
    variance.sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::eval::CddEvaluator;
    use cdd_core::Instance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn local_estimate_is_much_smaller_than_global_on_large_instances() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(8);
        let p: Vec<i64> = (0..100).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..100).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..100).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.6) as i64;
        let inst = Instance::cdd_from_arrays(&p, &a, &b, d).unwrap();
        let eval = CddEvaluator::new(&inst);
        let start = cdd_core::heuristics::v_shaped_sequence(&inst);

        let global = initial_temperature(&eval, 1000, &mut rng);
        let local = initial_temperature_local(&eval, &start, 4, 200, &mut rng);
        assert!(local > 0.0);
        assert!(
            local < global / 3.0,
            "local T0 {local} not clearly below global T0 {global}"
        );
    }

    #[test]
    fn local_estimate_is_deterministic_per_rng() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let start = cdd_core::heuristics::v_shaped_sequence(&inst);
        let a = initial_temperature_local(&eval, &start, 4, 100, &mut StdRng::seed_from_u64(1));
        let b = initial_temperature_local(&eval, &start, 4, 100, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_is_positive_and_stable() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let mut rng = StdRng::seed_from_u64(1);
        let t1 = initial_temperature(&eval, 2000, &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let t2 = initial_temperature(&eval, 2000, &mut rng);
        assert!(t1 > 1.0);
        // Two independent estimates agree within a loose tolerance.
        assert!((t1 - t2).abs() / t1 < 0.25, "t1={t1} t2={t2}");
    }

    #[test]
    fn matches_two_pass_reference() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        // Welford vs. naive two-pass on the same sample stream.
        let mut rng = StdRng::seed_from_u64(3);
        let welford = initial_temperature(&eval, 500, &mut rng);

        let mut rng = StdRng::seed_from_u64(3);
        let mut seq = JobSequence::identity(5);
        let xs: Vec<f64> = (0..500)
            .map(|_| {
                seq.shuffle_window(0, 5, &mut rng);
                eval.evaluate(seq.as_slice()) as f64
            })
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((welford - var.sqrt().max(1.0)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_landscape_floors_at_one() {
        // All penalties zero → every sequence costs 0 → stddev 0 → floor 1.
        let inst = Instance::cdd_from_arrays(&[3, 4], &[0, 0], &[0, 0], 100).unwrap();
        let eval = CddEvaluator::new(&inst);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(initial_temperature(&eval, 100, &mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        let inst = Instance::paper_example_cdd();
        let eval = CddEvaluator::new(&inst);
        let mut rng = StdRng::seed_from_u64(5);
        initial_temperature(&eval, 1, &mut rng);
    }
}
