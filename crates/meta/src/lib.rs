//! # cdd-meta
//!
//! Layer (i) of the paper's two-layered approach: metaheuristics searching
//! the space of job sequences, with the O(n) optimizers of `cdd-core` as the
//! fitness function.
//!
//! CPU implementations (this crate):
//!
//! * [`sa`] — Simulated Annealing (the paper's Algorithm 1): metropolis
//!   acceptance, exponential cooling (μ = 0.88), initial temperature from
//!   the Salamon–Sibani–Frost rule ([`temperature`]), Fisher–Yates window
//!   perturbation ([`perturb`]). A long single chain of this SA is also the
//!   stand-in for the CPU reference of Lässig et al. [7].
//! * [`dpso`] — Discrete Particle Swarm Optimization (Algorithm 2, the
//!   update rule of Pan et al. with swap velocity F₁, one-point crossover F₂
//!   and two-point crossover F₃).
//! * [`es`] — a (μ+λ) evolution strategy on permutations, standing in for
//!   the Feldmann–Biskup metaheuristics [18] as the second CPU baseline.
//! * [`ensemble`] — the asynchronous (Fig. 7) and synchronous (Fig. 8)
//!   multi-chain parallel SA schemes of Ferreiro et al. [12], backed by
//!   CPU threads.
//!
//! The GPU versions of SA and DPSO live in `cdd-gpu`, mapped onto the
//! `cuda-sim` execution model.

pub mod cooling;
pub mod dpso;
pub mod ensemble;
pub mod es;
pub mod perturb;
pub mod sa;
pub mod temperature;

pub use cooling::Cooling;
pub use dpso::{Dpso, DpsoParams};
pub use ensemble::{AsyncEnsemble, SyncEnsemble};
pub use es::{EsParams, EvolutionStrategy};
pub use sa::{SaParams, SimulatedAnnealing};
pub use temperature::{initial_temperature, initial_temperature_local};

use cdd_core::{Cost, JobSequence};

/// Outcome of one metaheuristic run.
#[derive(Debug, Clone)]
pub struct MetaResult {
    /// Best job sequence found.
    pub best: JobSequence,
    /// Its objective value (from the O(n) fixed-sequence optimizer).
    pub objective: Cost,
    /// Fitness evaluations performed.
    pub evaluations: u64,
}
