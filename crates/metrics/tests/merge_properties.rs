//! Property tests for the fleet-aggregation primitive: registry merge is
//! associative and commutative at the byte level (a router folding N node
//! snapshots renders identical Prometheus/JSON text no matter which
//! upstream answered first or how the fold is parenthesised), and empty
//! histograms answer their summary queries without panicking.

use cdd_metrics::{latency_ms_buckets, Histogram, MetricsRegistry};
use proptest::prelude::*;

#[test]
fn empty_histogram_summary_queries_are_total() {
    let h = Histogram::new(latency_ms_buckets());
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0.0);
    assert_eq!(h.max(), 0.0);
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0.0, "empty histogram quantile({q}) is 0");
    }
    assert_eq!(h.cumulative_counts().last().copied(), Some(0));

    // Degenerate but legal: no finite bounds at all — only the +Inf bucket.
    let boundless = Histogram::new(&[]);
    assert_eq!(boundless.max(), 0.0);
    assert_eq!(boundless.quantile(0.5), 0.0);
    assert_eq!(boundless.cumulative_counts(), vec![0]);
}

#[test]
fn merging_an_empty_registry_is_identity() {
    let mut reg = MetricsRegistry::new();
    reg.inc("a_total", &[], 3);
    reg.observe("h_ms", &[], 2.5, latency_ms_buckets());
    let before = reg.render_prometheus();
    reg.merge_from(&MetricsRegistry::new());
    assert_eq!(reg.render_prometheus(), before);

    let mut empty = MetricsRegistry::new();
    empty.merge_from(&reg);
    assert_eq!(empty.render_prometheus(), before);
}

/// A small registry driven by an integer recipe so every generated value
/// is one the public mutation API can produce.
fn registry_strategy() -> impl Strategy<Value = MetricsRegistry> {
    let counter = (0..6u32, 0..3u32, 1..1_000u64);
    // Gauges add on merge; the byte-level associativity contract covers
    // the integral/dyadic values the workspace records (queue depths,
    // flags), where f64 addition is exact — so generate quarters.
    let gauge = (0..4u32, -4_000_000..4_000_000i64);
    let sample = (0..3u32, 0.0..1e5f64);
    (
        prop::collection::vec(counter, 0..8),
        prop::collection::vec(gauge, 0..6),
        prop::collection::vec(sample, 0..20),
        0..4usize,
    )
        .prop_map(|(counters, gauges, samples, described)| {
            let mut reg = MetricsRegistry::new();
            for d in 0..described {
                reg.describe(&format!("counter_{d}_total"), &format!("Counter number {d}."));
            }
            for (name, tenant, by) in &counters {
                let tenant = format!("t{tenant}");
                reg.inc(&format!("counter_{name}_total"), &[("tenant", &tenant)], *by);
            }
            for (name, value) in &gauges {
                reg.set_gauge(&format!("gauge_{name}"), &[], *value as f64 / 4.0);
            }
            for (name, value) in &samples {
                reg.observe(&format!("hist_{name}_ms"), &[], *value, latency_ms_buckets());
            }
            reg
        })
}

/// Byte-level fingerprint of a registry: both rendered artifacts.
fn fingerprint(reg: &MetricsRegistry) -> (String, String) {
    (reg.render_prometheus(), reg.render_json())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in registry_strategy(), b in registry_strategy()) {
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(fingerprint(&ab), fingerprint(&ba));
    }

    #[test]
    fn merge_is_associative(
        a in registry_strategy(),
        b in registry_strategy(),
        c in registry_strategy(),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
    }

    #[test]
    fn merged_histograms_are_a_function_of_the_sample_multiset(
        xs in prop::collection::vec(0.0..1e5f64, 0..30),
        ys in prop::collection::vec(0.0..1e5f64, 0..30),
    ) {
        let mut a = Histogram::new(latency_ms_buckets());
        for &x in &xs {
            a.observe(x);
        }
        let mut b = Histogram::new(latency_ms_buckets());
        for &y in &ys {
            b.observe(y);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
        // Summary queries agree with a histogram fed the union directly
        // (sample sets are sorted post-merge, so state is canonical).
        let mut union: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        union.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
        let direct = Histogram::from_parts(latency_ms_buckets().to_vec(), union)
            .expect("valid parts");
        prop_assert_eq!(ab.max(), direct.max());
        prop_assert_eq!(ab.quantile(0.5), direct.quantile(0.5));
        prop_assert_eq!(ab.cumulative_counts(), direct.cumulative_counts());
    }
}
