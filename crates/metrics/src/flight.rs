//! Per-request flight records: the distributed-tracing payload stitched
//! from per-hop spans as a request crosses the fleet (client → router →
//! node → queue → worker → device).
//!
//! Every hop carries **two** durations:
//!
//! * `modeled_us` — microseconds on the layer's deterministic clock
//!   (modeled device seconds for kernels, logical retry/backoff delays for
//!   the supervisor, 0 for instantaneous decisions). This is the only
//!   duration the fleet-merged Chrome trace renders, which is what makes
//!   the trace byte-stable across runs of the same workload.
//! * `wall_us` — measured wall-clock microseconds. Wall time is
//!   inherently run-dependent, so it never reaches a rendered artifact
//!   that CI byte-compares; it feeds the node's threshold-gated slow-log
//!   and consistency checks against `timing_request_wall_ms`.
//!
//! [`fleet_trace`] merges many records into one Chrome trace with one
//! process per node (plus one for the router) and per-device tracks,
//! using [`TraceSink`](crate::trace::TraceSink) merge support.

use crate::escape;
use crate::trace::{TraceEvent, TraceSink};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One span in a request's flight: a named step at a named layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightHop {
    /// Which layer recorded the hop (`router`, `node`, `queue`,
    /// `supervisor`, `worker`, `cache`).
    pub layer: String,
    /// Step name within the layer (`route`, `auth`, `queue_wait`,
    /// `retry`, `attempt`, `kernel`, …).
    pub name: String,
    /// Deterministic key/value payload (breaker state, retry ordinal,
    /// batch size, shard choice, …). Rendered into trace `args`.
    pub detail: Vec<(String, String)>,
    /// Duration on the layer's modeled/logical clock, microseconds.
    pub modeled_us: f64,
    /// Measured wall-clock duration, microseconds (never rendered into
    /// byte-compared artifacts).
    pub wall_us: f64,
    /// Pool device that executed the hop, for per-device trace tracks.
    pub device: Option<u32>,
}

impl FlightHop {
    /// A hop with no detail and no device.
    #[must_use]
    pub fn new(layer: &str, name: &str, modeled_us: f64, wall_us: f64) -> Self {
        FlightHop {
            layer: layer.to_string(),
            name: name.to_string(),
            detail: Vec::new(),
            modeled_us,
            wall_us,
            device: None,
        }
    }

    /// The same hop with one more detail pair.
    #[must_use]
    pub fn with_detail(mut self, key: &str, value: impl ToString) -> Self {
        self.detail.push((key.to_string(), value.to_string()));
        self
    }

    /// The same hop pinned to a device track.
    #[must_use]
    pub fn with_device(mut self, device: u32) -> Self {
        self.device = Some(device);
        self
    }
}

/// The stitched flight of one request: every hop span recorded along its
/// path, in path order (router hops first, then node-side hops).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecord {
    /// Fleet-unique id of the flight (the propagated trace id).
    pub trace_id: u64,
    /// Label of the node that served the request (empty until a node
    /// stamps it; the router prepends its hops without claiming the
    /// record).
    pub node: String,
    /// Hop spans in path order.
    pub hops: Vec<FlightHop>,
}

impl FlightRecord {
    /// An empty record for a flight.
    #[must_use]
    pub fn new(trace_id: u64, node: &str) -> Self {
        FlightRecord { trace_id, node: node.to_string(), hops: Vec::new() }
    }

    /// Sum of hop durations on the modeled clocks, microseconds.
    #[must_use]
    pub fn total_modeled_us(&self) -> f64 {
        self.hops.iter().map(|h| h.modeled_us).sum()
    }

    /// Sum of measured hop durations, microseconds.
    #[must_use]
    pub fn total_wall_us(&self) -> f64 {
        self.hops.iter().map(|h| h.wall_us).sum()
    }

    /// First hop with the given name, if any.
    #[must_use]
    pub fn hop(&self, name: &str) -> Option<&FlightHop> {
        self.hops.iter().find(|h| h.name == name)
    }

    /// One structured JSONL line for the node's threshold-gated slow-request
    /// log: the flight's latency attribution, hop by hop, with wall times
    /// (this artifact is diagnostic, not byte-compared).
    #[must_use]
    pub fn slow_log_json(&self, wall_ms: u64, threshold_ms: u64) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"slow_request\":true,\"trace_id\":\"{:016x}\",\"node\":\"{}\",\"wall_ms\":{},\
             \"threshold_ms\":{},\"total_modeled_us\":{:?},\"hops\":[",
            self.trace_id,
            escape(&self.node),
            wall_ms,
            threshold_ms,
            self.total_modeled_us()
        );
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"layer\":\"{}\",\"name\":\"{}\",\"modeled_us\":{:?},\"wall_us\":{:?}",
                escape(&hop.layer),
                escape(&hop.name),
                hop.modeled_us,
                hop.wall_us
            );
            if let Some(d) = hop.device {
                let _ = write!(out, ",\"device\":{d}");
            }
            for (k, v) in &hop.detail {
                let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(v));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Merge flight records into one fleet-wide Chrome trace: one process per
/// node (sorted by label) plus, when any record carries router hops, a
/// `router` process first; within a node, track 0 carries the request
/// spans and each device gets its own track.
///
/// Only `modeled_us` durations and `detail` args reach the output, so the
/// trace is a pure function of the record *set*: records are ordered
/// internally by `(node, trace_id)` and laid out on per-track cursors,
/// making the bytes independent of arrival order and wall-clock jitter.
#[must_use]
pub fn fleet_trace(records: &[FlightRecord]) -> TraceSink {
    let mut order: Vec<&FlightRecord> = records.iter().collect();
    order.sort_by(|a, b| (a.node.as_str(), a.trace_id).cmp(&(b.node.as_str(), b.trace_id)));

    let has_router = order.iter().any(|r| r.hops.iter().any(|h| h.layer == "router"));
    let mut router = TraceSink::new();
    let mut router_cursor = 0.0;
    if has_router {
        router.name_track(0, 0, "routing");
    }

    let labels: BTreeSet<&str> = order.iter().map(|r| r.node.as_str()).collect();
    let mut nodes: Vec<(&str, TraceSink, f64, BTreeSet<u32>)> = labels
        .into_iter()
        .map(|l| {
            let mut sink = TraceSink::new();
            sink.name_track(0, 0, "requests");
            (l, sink, 0.0, BTreeSet::new())
        })
        .collect();

    for record in &order {
        let trace = format!("{:016x}", record.trace_id);
        for hop in record.hops.iter().filter(|h| h.layer == "router") {
            let mut e =
                TraceEvent::complete(&hop.name, "router", 0, 0, router_cursor, hop.modeled_us)
                    .with_arg("trace_id", &trace);
            for (k, v) in &hop.detail {
                e = e.with_arg(k, v);
            }
            router.push(e);
            router_cursor += hop.modeled_us + 1.0;
        }

        let part = nodes
            .iter_mut()
            .find(|(l, ..)| *l == record.node)
            .expect("every record's node has a part");
        let (_, sink, cursor, named_devices) = part;
        let node_hops: Vec<&FlightHop> =
            record.hops.iter().filter(|h| h.layer != "router").collect();
        let dur: f64 = node_hops.iter().map(|h| h.modeled_us).sum();
        sink.push(
            TraceEvent::complete(&format!("request {trace}"), "request", 0, 0, *cursor, dur)
                .with_arg("hops", node_hops.len()),
        );
        let mut offset = *cursor;
        for hop in node_hops {
            let mut e = TraceEvent::complete(&hop.name, &hop.layer, 0, 0, offset, hop.modeled_us);
            for (k, v) in &hop.detail {
                e = e.with_arg(k, v);
            }
            if let Some(d) = hop.device {
                if named_devices.insert(d) {
                    sink.name_track(0, 1 + d, &format!("device {d}"));
                }
                let mut de =
                    TraceEvent::complete(&hop.name, &hop.layer, 0, 1 + d, offset, hop.modeled_us)
                        .with_arg("trace_id", &trace);
                for (k, v) in &hop.detail {
                    de = de.with_arg(k, v);
                }
                sink.push(de);
            }
            sink.push(e);
            offset += hop.modeled_us;
        }
        *cursor = offset + 1.0;
    }

    let mut parts: Vec<(String, &TraceSink)> = Vec::new();
    if has_router {
        parts.push(("router".to_string(), &router));
    }
    for (label, sink, ..) in &nodes {
        parts.push((format!("node {label}"), sink));
    }
    let named: Vec<(&str, &TraceSink)> =
        parts.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    TraceSink::merge_named(&named)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(node: &str, trace_id: u64) -> FlightRecord {
        let mut r = FlightRecord::new(trace_id, node);
        r.hops.push(
            FlightHop::new("router", "route", 0.0, 3.0).with_detail("shard", node),
        );
        r.hops.push(FlightHop::new("queue", "queue_wait", 0.0, 40.0));
        r.hops
            .push(FlightHop::new("worker", "attempt", 1500.0, 1700.0).with_device(0));
        r
    }

    #[test]
    fn totals_sum_both_clocks() {
        let r = record("a", 7);
        assert_eq!(r.total_modeled_us(), 1500.0);
        assert_eq!(r.total_wall_us(), 1743.0);
        assert_eq!(r.hop("queue_wait").unwrap().wall_us, 40.0);
        assert!(r.hop("absent").is_none());
    }

    #[test]
    fn fleet_trace_is_independent_of_record_order_and_wall_time() {
        let mut a = record("a", 1);
        let b = record("b", 2);
        let one = fleet_trace(&[a.clone(), b.clone()]);
        let two = fleet_trace(&[b.clone(), a.clone()]);
        assert_eq!(one.render_chrome_json(), two.render_chrome_json());

        // Wall-clock jitter must not reach the rendered bytes.
        for hop in &mut a.hops {
            hop.wall_us *= 17.0;
        }
        let jittered = fleet_trace(&[a, b]);
        assert_eq!(one.render_chrome_json(), jittered.render_chrome_json());
    }

    #[test]
    fn fleet_trace_groups_by_node_with_device_tracks() {
        let json = fleet_trace(&[record("a", 1), record("b", 2)]).render_chrome_json();
        assert!(json.contains("\"args\":{\"name\":\"router\"}"), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"node a\"}"));
        assert!(json.contains("\"args\":{\"name\":\"node b\"}"));
        assert!(json.contains("\"args\":{\"name\":\"device 0\"}"));
        assert!(json.contains("request 0000000000000001"));
        assert!(json.contains("\"name\":\"queue_wait\""));
        assert!(!json.contains("1700"), "wall_us never renders");
    }

    #[test]
    fn router_process_is_omitted_without_router_hops() {
        let mut r = record("a", 1);
        r.hops.retain(|h| h.layer != "router");
        let json = fleet_trace(&[r]).render_chrome_json();
        assert!(!json.contains("\"name\":\"router\"}"));
        assert!(json.contains("\"args\":{\"name\":\"node a\"}"));
    }

    #[test]
    fn slow_log_line_is_structured_and_single_line() {
        let line = record("a", 0xAB).slow_log_json(12, 10);
        assert!(line.starts_with("{\"slow_request\":true,\"trace_id\":\"00000000000000ab\""));
        assert!(line.contains("\"wall_ms\":12,\"threshold_ms\":10"));
        assert!(line.contains("\"layer\":\"worker\",\"name\":\"attempt\""));
        assert!(line.contains("\"device\":0"));
        assert!(line.contains("\"shard\":\"a\""));
        assert!(!line.contains('\n'));
    }
}
