//! Structured trace sink: Chrome `trace_event` JSON (loadable in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)) and JSONL.
//!
//! Events are positioned on a `(pid, tid)` track at microsecond timestamps.
//! Consumers of `gpu-sim` timelines derive those timestamps from the
//! *modeled* device clock (cumulative modeled seconds × 10⁶), never from
//! the wall clock — so a trace of a deterministic run is itself
//! reproducible, and track time reads as device time, matching how the
//! paper's Nvidia-profiler timelines are labelled.
//!
//! Event phases used here: `X` (complete, with a duration), `B`/`E`
//! (nested span begin/end — the pipelines' per-generation spans), `C`
//! (counter samples — e.g. the best-so-far convergence curve plotted on the
//! modeled clock), and `M` (metadata: process/track names).

use crate::escape;
use std::fmt::Write as _;

/// One Chrome `trace_event` record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (kernel name, span label, …).
    pub name: String,
    /// Category (`kernel`, `transfer`, `span`, `request`, …).
    pub cat: String,
    /// Phase: `X` complete, `B` begin, `E` end, `M` metadata.
    pub ph: char,
    /// Timestamp, microseconds on the track's clock.
    pub ts_us: f64,
    /// Duration in microseconds (`X` events only).
    pub dur_us: Option<f64>,
    /// Process id (trace-viewer grouping, not an OS pid).
    pub pid: u32,
    /// Thread id — one per simulated device.
    pub tid: u32,
    /// Extra key/value payload rendered into `args`.
    pub args: Vec<(String, String)>,
    /// Numeric payload rendered into `args` unquoted — required for `C`
    /// (counter) events, whose series values the trace viewer plots.
    pub num_args: Vec<(String, f64)>,
}

impl TraceEvent {
    /// A complete (`ph = X`) event covering `[ts_us, ts_us + dur_us]`.
    #[must_use]
    pub fn complete(name: &str, cat: &str, pid: u32, tid: u32, ts_us: f64, dur_us: f64) -> Self {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us),
            pid,
            tid,
            args: Vec::new(),
            num_args: Vec::new(),
        }
    }

    /// A span-begin (`ph = B`) marker.
    #[must_use]
    pub fn begin(name: &str, cat: &str, pid: u32, tid: u32, ts_us: f64) -> Self {
        TraceEvent { ph: 'B', dur_us: None, ..Self::complete(name, cat, pid, tid, ts_us, 0.0) }
    }

    /// A span-end (`ph = E`) marker.
    #[must_use]
    pub fn end(name: &str, cat: &str, pid: u32, tid: u32, ts_us: f64) -> Self {
        TraceEvent { ph: 'E', dur_us: None, ..Self::complete(name, cat, pid, tid, ts_us, 0.0) }
    }

    /// A counter-sample (`ph = C`) event; attach the plotted series values
    /// with [`with_num_arg`](Self::with_num_arg).
    #[must_use]
    pub fn counter(name: &str, cat: &str, pid: u32, tid: u32, ts_us: f64) -> Self {
        TraceEvent { ph: 'C', dur_us: None, ..Self::complete(name, cat, pid, tid, ts_us, 0.0) }
    }

    /// The same event with one more `args` entry.
    #[must_use]
    pub fn with_arg(mut self, key: &str, value: impl ToString) -> Self {
        self.args.push((key.to_string(), value.to_string()));
        self
    }

    /// The same event with one more numeric `args` entry (rendered unquoted,
    /// so counter series plot as numbers).
    #[must_use]
    pub fn with_num_arg(mut self, key: &str, value: f64) -> Self {
        self.num_args.push((key.to_string(), value));
        self
    }

    /// Render as a single JSON object (one line, no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:?},\"pid\":{},\"tid\":{}",
            escape(&self.name),
            escape(&self.cat),
            self.ph,
            self.ts_us,
            self.pid,
            self.tid
        );
        if let Some(dur) = self.dur_us {
            let _ = write!(out, ",\"dur\":{dur:?}");
        }
        if !self.args.is_empty() || !self.num_args.is_empty() {
            let inner: Vec<String> = self
                .args
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
                .chain(self.num_args.iter().map(|(k, v)| format!("\"{}\":{v:?}", escape(k))))
                .collect();
            let _ = write!(out, ",\"args\":{{{}}}", inner.join(","));
        }
        out.push('}');
        out
    }
}

/// An accumulating list of trace events with Chrome-JSON and JSONL
/// renderers.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Append many events.
    pub fn extend(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        self.events.extend(events);
    }

    /// Name the process group `pid` (metadata event).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.events.push(
            TraceEvent {
                ph: 'M',
                dur_us: None,
                ..TraceEvent::complete("process_name", "__metadata", pid, 0, 0.0, 0.0)
            }
            .with_arg("name", name),
        );
    }

    /// Name the `(pid, tid)` track (metadata event) — e.g. `device 0`.
    pub fn name_track(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(
            TraceEvent {
                ph: 'M',
                dur_us: None,
                ..TraceEvent::complete("thread_name", "__metadata", pid, tid, 0.0, 0.0)
            }
            .with_arg("name", name),
        );
    }

    /// Events recorded so far, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the Chrome `trace_event` JSON object
    /// (`{"displayTimeUnit": "ms", "traceEvents": […]}`).
    #[must_use]
    pub fn render_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&e.to_json());
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Merge named per-process sinks into one fleet trace: part `i` becomes
    /// process `i` (its events' pids are rewritten, so each part is treated
    /// as a single-process sink), preceded by a `process_name` metadata
    /// event. Part order is preserved verbatim — callers sort parts
    /// deterministically to keep merged output byte-stable.
    #[must_use]
    pub fn merge_named(parts: &[(&str, &TraceSink)]) -> TraceSink {
        let mut out = TraceSink::new();
        for (i, (name, sink)) in parts.iter().enumerate() {
            let pid = u32::try_from(i).expect("fewer than 2^32 processes");
            out.name_process(pid, name);
            for event in sink.events() {
                out.push(TraceEvent { pid, ..event.clone() });
            }
        }
        out
    }

    /// Render one JSON object per line (streaming-friendly).
    #[must_use]
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_renders_ts_and_dur() {
        let e = TraceEvent::complete("fitness", "kernel", 0, 3, 12.5, 100.0)
            .with_arg("blocks", 4)
            .with_arg("threads", 192);
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"name\":\"fitness\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":12.5,\"pid\":0,\
             \"tid\":3,\"dur\":100.0,\"args\":{\"blocks\":\"4\",\"threads\":\"192\"}}"
        );
    }

    #[test]
    fn counter_event_renders_numeric_args_unquoted() {
        let e = TraceEvent::counter("convergence", "convergence", 0, 2, 1500.0)
            .with_num_arg("best", 1234.0)
            .with_arg("algo", "sa");
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"name\":\"convergence\",\"cat\":\"convergence\",\"ph\":\"C\",\"ts\":1500.0,\
             \"pid\":0,\"tid\":2,\"args\":{\"algo\":\"sa\",\"best\":1234.0}}"
        );
    }

    #[test]
    fn begin_end_events_have_no_duration() {
        let b = TraceEvent::begin("sa-generation", "span", 0, 1, 5.0);
        assert_eq!(b.ph, 'B');
        assert!(!b.to_json().contains("dur"));
        let e = TraceEvent::end("sa-generation", "span", 0, 1, 9.0);
        assert_eq!(e.ph, 'E');
    }

    #[test]
    fn chrome_json_wraps_events_with_metadata_tracks() {
        let mut sink = TraceSink::new();
        sink.name_process(0, "cdd-service");
        sink.name_track(0, 1, "device 1");
        sink.push(TraceEvent::complete("h2d", "transfer", 0, 1, 0.0, 2.0));
        let json = sink.render_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"device 1\"}"));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(sink.len(), 3);
        // Exactly one comma separator per event gap: valid JSON.
        assert_eq!(json.matches(",\n").count(), sink.len() - 1);
    }

    #[test]
    fn jsonl_is_one_event_per_line() {
        let mut sink = TraceSink::new();
        sink.push(TraceEvent::complete("a", "kernel", 0, 0, 0.0, 1.0));
        sink.push(TraceEvent::complete("b", "kernel", 0, 0, 1.0, 1.0));
        let jsonl = sink.render_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn merge_named_rewrites_pids_and_names_processes() {
        let mut a = TraceSink::new();
        a.push(TraceEvent::complete("ka", "kernel", 7, 1, 0.0, 1.0));
        let mut b = TraceSink::new();
        b.push(TraceEvent::complete("kb", "kernel", 9, 0, 0.0, 1.0));
        let merged = TraceSink::merge_named(&[("node a", &a), ("node b", &b)]);
        assert_eq!(merged.len(), 4, "two metadata + two events");
        let json = merged.render_chrome_json();
        assert!(json.contains("\"args\":{\"name\":\"node a\"}"));
        assert!(json.contains("\"args\":{\"name\":\"node b\"}"));
        let pids: Vec<u32> = merged.events().iter().map(|e| e.pid).collect();
        assert_eq!(pids, vec![0, 0, 1, 1], "source pids are rewritten per part");
        assert_eq!(merged.events()[1].tid, 1, "tids pass through untouched");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut sink = TraceSink::new();
            sink.name_track(0, 0, "device 0");
            sink.push(TraceEvent::complete("k", "kernel", 0, 0, 0.25, 0.125));
            sink.render_chrome_json()
        };
        assert_eq!(build(), build());
    }
}
