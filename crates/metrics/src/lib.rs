//! # cdd-metrics
//!
//! A **deterministic** metrics registry for the workspace: counters, gauges
//! and fixed-bucket histograms with exact percentiles, plus a Prometheus
//! text exporter, a JSON snapshot exporter and (in [`trace`]) a Chrome
//! `trace_event` sink for `gpu-sim` timelines.
//!
//! Determinism is the design constraint everything else follows from (it is
//! what lets CI byte-compare two runs of the same workload, mirroring the
//! service's determinism contract):
//!
//! * all series live in `BTreeMap`s keyed by `(name, sorted labels)` —
//!   iteration (and therefore rendering) order never depends on insertion
//!   order or hash seeds;
//! * counters are integers, so their rendered value is independent of the
//!   order in which concurrent contributors were folded in;
//! * nothing in this crate reads the wall clock — time enters only as
//!   values the *caller* observes (modeled seconds, measured latencies), so
//!   the hot path stays free of `Instant::now` calls;
//! * floats render through Rust's shortest-roundtrip formatter (`{:?}`),
//!   which is a pure function of the bits.
//!
//! Histograms keep both fixed bucket counts (for the Prometheus exposition)
//! and the raw samples (for *exact* p50/p95/p99 — no interpolation error at
//! the sample counts this workspace produces).
//!
//! ```
//! use cdd_metrics::{latency_ms_buckets, MetricsRegistry};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.inc("service_requests_total", &[], 3);
//! reg.observe("timing_request_wall_ms", &[], 12.5, latency_ms_buckets());
//! let text = reg.render_prometheus();
//! assert!(text.contains("service_requests_total 3"));
//! assert!(text.contains("timing_request_wall_ms_count 1"));
//! ```

pub mod flight;
pub mod trace;

pub use flight::{fleet_trace, FlightHop, FlightRecord};

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fixed bucket bounds for request-latency histograms, milliseconds
/// (50 µs … 10 s, roughly 1–2.5–5 per decade).
#[must_use]
pub fn latency_ms_buckets() -> &'static [f64] {
    &[
        0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
        2500.0, 5000.0, 10000.0,
    ]
}

/// Fixed bucket bounds for modeled device durations, seconds
/// (100 ns … 1 s — the range the simulator's kernels and transfers span).
#[must_use]
pub fn modeled_seconds_buckets() -> &'static [f64] {
    &[
        1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
        2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
    ]
}

/// Fixed bucket bounds for wire-frame sizes, bytes (16 B … 1 MiB in
/// powers of four — request/response frames cluster at the small end,
/// inline instances and long sequence streams at the large end).
#[must_use]
pub fn frame_bytes_buckets() -> &'static [f64] {
    &[
        16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
    ]
}

/// Fixed bucket bounds for per-connection request counts (1 … 4096):
/// how much work each accepted socket carried before closing.
#[must_use]
pub fn connection_requests_buckets() -> &'static [f64] {
    &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0]
}

/// Render an f64 deterministically (shortest string that round-trips).
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Escape a string for a JSON literal or a Prometheus label value.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A fully-qualified series identity: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        SeriesKey { name: name.to_string(), labels }
    }

    /// Same identity from owned label pairs (wire decoding path).
    fn from_owned(name: String, mut labels: Vec<(String, String)>) -> Self {
        labels.sort();
        SeriesKey { name, labels }
    }

    /// `name{k="v",…}` — the Prometheus sample identity.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }

    /// Same, with extra label pairs appended (histogram `le`).
    fn render_with(&self, extra: &[(&str, String)]) -> String {
        let mut inner: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
        inner.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))));
        format!("{}{{{}}}", self.name, inner.join(","))
    }

    fn labels_json(&self) -> String {
        let inner: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v))).collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// A fixed-bucket histogram that also keeps its raw samples, so bucket
/// counts serve the Prometheus exposition while percentiles stay exact.
///
/// The histogram's state is fully determined by `(bounds, samples)`:
/// bucket counts re-derive by bucketing the samples and the sum re-derives
/// by folding them in storage order, which is what lets the wire codec ship
/// only those two fields and still round-trip bit-exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Strictly increasing finite bucket upper bounds; `+Inf` is implicit.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts[bounds.len()]` is the
    /// overflow (`+Inf`) bucket.
    counts: Vec<u64>,
    sum: f64,
    samples: Vec<f64>,
}

impl Histogram {
    /// A histogram over the given finite upper bounds (must be sorted).
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            samples: Vec::new(),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx =
            self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.samples.push(value);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation (0 when empty; observations are durations, so
    /// they are non-negative).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Exact q-quantile by the nearest-rank rule over the raw samples
    /// (0 when empty). `quantile(0.5)` is the median element itself, not an
    /// interpolation.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    /// Finite bucket bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per bound, Prometheus style: one entry per finite
    /// bound plus the final `+Inf` total.
    #[must_use]
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Raw samples in storage order (observation order for a histogram fed
    /// through [`Self::observe`]; sorted after a merge).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Rebuild a histogram from its canonical state: finite, strictly
    /// increasing bounds and finite samples (the wire decoding path, so
    /// hostile input is an error, never a panic). Bucket counts and the sum
    /// are re-derived, making `encode → decode` bit-exact: the sum was
    /// originally accumulated by folding samples in storage order, and that
    /// is exactly how it is recomputed here.
    pub fn from_parts(bounds: Vec<f64>, samples: Vec<f64>) -> Result<Self, String> {
        if !bounds.iter().all(|b| b.is_finite()) {
            return Err("histogram bounds must be finite".to_string());
        }
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err("histogram bounds must be strictly increasing".to_string());
        }
        if !samples.iter().all(|s| s.is_finite()) {
            return Err("histogram samples must be finite".to_string());
        }
        let mut h = Histogram {
            bounds,
            counts: Vec::new(),
            sum: samples.iter().sum(),
            samples,
        };
        h.counts = h.rebucket();
        Ok(h)
    }

    /// Per-bucket (non-cumulative) counts derived from the samples.
    fn rebucket(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.bounds.len() + 1];
        for &value in &self.samples {
            let idx =
                self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
            counts[idx] += 1;
        }
        counts
    }

    /// Fold another histogram into this one, keeping this histogram's
    /// bounds (the other's samples are re-bucketed). The merged sample set
    /// is **sorted** and the sum recomputed by folding it in that order, so
    /// the merged state is a pure function of the combined sample *multiset*
    /// — merge order and fold shape cannot leak into the bytes a fleet
    /// snapshot renders.
    pub fn merge_from(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        self.sum = self.samples.iter().sum();
        self.counts = self.rebucket();
    }
}

/// A deterministic registry of counters, gauges and histograms.
///
/// Series are created on first touch; touching a series with an increment of
/// zero still creates it, so two runs that take the same code paths render
/// the same *set* of lines even where the values are zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
    /// Optional `# HELP` text per metric name, registered at observation
    /// sites via [`Self::describe`].
    descriptions: BTreeMap<String, String>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to a counter (creating it at zero first).
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        *self.counters.entry(SeriesKey::new(name, labels)).or_insert(0) += by;
    }

    /// Set a gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(SeriesKey::new(name, labels), value);
    }

    /// Record one observation into a histogram; the series is created with
    /// `bounds` on first touch (later calls reuse the existing buckets).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64, bounds: &[f64]) {
        self.histograms
            .entry(SeriesKey::new(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current counter value (0 if the series does not exist).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&SeriesKey::new(name, labels)).copied().unwrap_or(0)
    }

    /// Current gauge value.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&SeriesKey::new(name, labels)).copied()
    }

    /// Histogram series, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&SeriesKey::new(name, labels))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Register `# HELP` text for a metric name. Conflict resolution is
    /// order-independent: the lexicographically smallest description wins,
    /// so a fleet merge renders the same bytes no matter which node's
    /// snapshot arrived first. (In practice every process registers the
    /// same text, so this is only a tie-break for buggy callers.)
    pub fn describe(&mut self, name: &str, help: &str) {
        self.descriptions
            .entry(name.to_string())
            .and_modify(|d| {
                if help < d.as_str() {
                    *d = help.to_string();
                }
            })
            .or_insert_with(|| help.to_string());
    }

    /// `# HELP` text registered for a metric name, if any.
    #[must_use]
    pub fn description(&self, name: &str) -> Option<&str> {
        self.descriptions.get(name).map(String::as_str)
    }

    /// All registered descriptions in name order (wire encoding path).
    pub fn descriptions(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.descriptions.iter().map(|(n, d)| (n.as_str(), d.as_str()))
    }

    /// All counter series in `(name, labels)` order (wire encoding path).
    pub fn counter_series(&self) -> impl Iterator<Item = (&str, &[(String, String)], u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.name.as_str(), k.labels.as_slice(), *v))
    }

    /// All gauge series in `(name, labels)` order (wire encoding path).
    pub fn gauge_series(&self) -> impl Iterator<Item = (&str, &[(String, String)], f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (k.name.as_str(), k.labels.as_slice(), *v))
    }

    /// All histogram series in `(name, labels)` order (wire encoding path).
    pub fn histogram_series(
        &self,
    ) -> impl Iterator<Item = (&str, &[(String, String)], &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (k.name.as_str(), k.labels.as_slice(), h))
    }

    /// Insert-or-add a counter series from owned label pairs (wire decoding
    /// path; labels are sorted into canonical order).
    pub fn put_counter(&mut self, name: String, labels: Vec<(String, String)>, value: u64) {
        *self.counters.entry(SeriesKey::from_owned(name, labels)).or_insert(0) += value;
    }

    /// Insert a gauge series from owned label pairs (wire decoding path).
    pub fn put_gauge(&mut self, name: String, labels: Vec<(String, String)>, value: f64) {
        self.gauges.insert(SeriesKey::from_owned(name, labels), value);
    }

    /// Insert a histogram series from owned label pairs (wire decoding
    /// path). An existing series under the same key is merged into.
    pub fn put_histogram(&mut self, name: String, labels: Vec<(String, String)>, hist: Histogram) {
        match self.histograms.entry(SeriesKey::from_owned(name, labels)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(hist);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge_from(&hist),
        }
    }

    /// Fold another registry into this one — the fleet-aggregation
    /// primitive. The operation is deterministic and order-independent so
    /// that a router merging N node snapshots renders the same bytes no
    /// matter which upstream answered first and no matter how the fold is
    /// parenthesised:
    ///
    /// * counters add (integer addition — exactly associative);
    /// * gauges add (additive gauges like queue depths are the fleet-wide
    ///   semantic; float addition is exact for the integral/dyadic values
    ///   this workspace records);
    /// * histograms merge via [`Histogram::merge_from`] — the merged state
    ///   is a pure function of the combined sample multiset. A series only
    ///   one side has is cloned as-is. Merging mismatched bounds keeps the
    ///   target's bounds and re-buckets;
    /// * descriptions union with the lexicographically smallest text
    ///   winning on conflict.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, value) in &other.gauges {
            *self.gauges.entry(key.clone()).or_insert(0.0) += value;
        }
        for (key, hist) in &other.histograms {
            match self.histograms.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(hist.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge_from(hist);
                }
            }
        }
        for (name, help) in &other.descriptions {
            self.describe(name, help);
        }
    }

    /// Render the registry in the Prometheus text exposition format.
    /// Counters first, then gauges, then histograms; within each kind,
    /// series sort by `(name, labels)`. A `# HELP` line precedes the
    /// `# TYPE` line for metrics with a [`Self::describe`]d description.
    /// The output is a pure function of the recorded values.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let descriptions = &self.descriptions;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                if let Some(help) = descriptions.get(name) {
                    let _ = writeln!(
                        out,
                        "# HELP {name} {}",
                        help.replace('\\', "\\\\").replace('\n', "\\n")
                    );
                }
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (key, value) in &self.counters {
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{} {}", key.render(), value);
        }
        for (key, value) in &self.gauges {
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{} {}", key.render(), fmt_f64(*value));
        }
        for (key, hist) in &self.histograms {
            type_line(&mut out, &key.name, "histogram");
            let bucket_key = SeriesKey { name: format!("{}_bucket", key.name), ..key.clone() };
            let cumulative = hist.cumulative_counts();
            for (bound, count) in hist.bounds().iter().zip(&cumulative) {
                let _ = writeln!(
                    out,
                    "{} {}",
                    bucket_key.render_with(&[("le", fmt_f64(*bound))]),
                    count
                );
            }
            let _ = writeln!(
                out,
                "{} {}",
                bucket_key.render_with(&[("le", "+Inf".to_string())]),
                cumulative.last().copied().unwrap_or(0)
            );
            let sum_key = SeriesKey { name: format!("{}_sum", key.name), ..key.clone() };
            let _ = writeln!(out, "{} {}", sum_key.render(), fmt_f64(hist.sum()));
            let count_key = SeriesKey { name: format!("{}_count", key.name), ..key.clone() };
            let _ = writeln!(out, "{} {}", count_key.render(), hist.count());
        }
        out
    }

    /// Render a JSON snapshot: every series with its labels, plus exact
    /// p50/p95/p99 and min/max for histograms. Deterministic ordering.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        let mut first = true;
        for (key, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                escape(&key.name),
                key.labels_json(),
                value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        first = true;
        for (key, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                escape(&key.name),
                key.labels_json(),
                fmt_f64(*value)
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        first = true;
        for (key, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let mut buckets = String::new();
            let cumulative = hist.cumulative_counts();
            for (bound, count) in hist.bounds().iter().zip(&cumulative) {
                let _ = write!(buckets, "{{\"le\": {}, \"count\": {}}}, ", fmt_f64(*bound), count);
            }
            let _ = write!(
                buckets,
                "{{\"le\": \"+Inf\", \"count\": {}}}",
                cumulative.last().copied().unwrap_or(0)
            );
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"count\": {}, \"sum\": {}, \
                 \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                escape(&key.name),
                key.labels_json(),
                hist.count(),
                fmt_f64(hist.sum()),
                fmt_f64(hist.max()),
                fmt_f64(hist.quantile(0.50)),
                fmt_f64(hist.quantile(0.95)),
                fmt_f64(hist.quantile(0.99)),
                buckets
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.inc("requests_total", &[], 2);
        reg.inc("requests_total", &[], 3);
        reg.inc("errors_total", &[("kind", "timeout")], 0);
        assert_eq!(reg.counter("requests_total", &[]), 5);
        assert_eq!(reg.counter("errors_total", &[("kind", "timeout")]), 0);
        assert_eq!(reg.counter("absent", &[]), 0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 5"));
        assert!(text.contains("errors_total{kind=\"timeout\"} 0"), "zero series still render");
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut a = MetricsRegistry::new();
        a.inc("m", &[("x", "1"), ("y", "2")], 1);
        let mut b = MetricsRegistry::new();
        b.inc("m", &[("y", "2"), ("x", "1")], 1);
        assert_eq!(a.render_prometheus(), b.render_prometheus());
        assert_eq!(a.counter("m", &[("y", "2"), ("x", "1")]), 1);
    }

    #[test]
    fn gauges_render_shortest_roundtrip_floats() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("utilization", &[("device", "0")], 0.25);
        reg.set_gauge("utilization", &[("device", "0")], 0.5); // overwrite
        let text = reg.render_prometheus();
        assert!(text.contains("utilization{device=\"0\"} 0.5"));
        assert_eq!(reg.gauge("utilization", &[("device", "0")]), Some(0.5));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_percentiles_exact() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 0.7, 3.0, 7.0, 20.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_counts(), vec![2, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 31.2).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 3.0, "median is the exact middle sample");
        assert_eq!(h.quantile(0.95), 20.0);
        assert_eq!(h.quantile(0.0), 0.5);
        assert_eq!(h.max(), 20.0);
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0, "empty histogram");
    }

    #[test]
    fn boundary_observation_lands_in_its_le_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // le="1" is inclusive, Prometheus semantics
        assert_eq!(h.cumulative_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn prometheus_histogram_exposition_shape() {
        let mut reg = MetricsRegistry::new();
        reg.observe("lat_ms", &[("op", "solve")], 0.3, &[0.25, 0.5]);
        reg.observe("lat_ms", &[("op", "solve")], 0.1, &[0.25, 0.5]);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_ms histogram"));
        assert!(text.contains("lat_ms_bucket{op=\"solve\",le=\"0.25\"} 1"));
        assert!(text.contains("lat_ms_bucket{op=\"solve\",le=\"0.5\"} 2"));
        assert!(text.contains("lat_ms_bucket{op=\"solve\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ms_sum{op=\"solve\"} 0.4"));
        assert!(text.contains("lat_ms_count{op=\"solve\"} 2"));
    }

    #[test]
    fn rendering_is_deterministic_across_insertion_orders() {
        let mut a = MetricsRegistry::new();
        a.inc("z_total", &[], 1);
        a.inc("a_total", &[("dev", "1")], 2);
        a.set_gauge("g", &[], 1.5);
        a.observe("h", &[], 2.0, &[1.0, 3.0]);

        let mut b = MetricsRegistry::new();
        b.observe("h", &[], 2.0, &[1.0, 3.0]);
        b.set_gauge("g", &[], 1.5);
        b.inc("a_total", &[("dev", "1")], 2);
        b.inc("z_total", &[], 1);

        assert_eq!(a.render_prometheus(), b.render_prometheus());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn json_snapshot_contains_percentiles() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100 {
            reg.observe("lat", &[], f64::from(v), latency_ms_buckets());
        }
        let json = reg.render_json();
        assert!(json.contains("\"p50\": 50.0"), "{json}");
        assert!(json.contains("\"p95\": 95.0"));
        assert!(json.contains("\"p99\": 99.0"));
        assert!(json.contains("\"max\": 100.0"));
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        let mut reg = MetricsRegistry::new();
        reg.inc("m", &[("msg", "a\"b\\c\nd")], 1);
        let text = reg.render_prometheus();
        assert!(text.contains("m{msg=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn preset_buckets_are_strictly_increasing() {
        for bounds in [latency_ms_buckets(), modeled_seconds_buckets()] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_histogram_quantile_and_max_are_zero() {
        let h = Histogram::new(&[1.0, 2.0]);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "empty histogram q={q}");
        }
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.cumulative_counts(), vec![0, 0, 0]);
    }

    #[test]
    fn histogram_from_parts_rederives_counts_and_sum() {
        let mut direct = Histogram::new(&[1.0, 5.0]);
        for v in [0.5, 3.0, 9.0] {
            direct.observe(v);
        }
        let rebuilt =
            Histogram::from_parts(vec![1.0, 5.0], vec![0.5, 3.0, 9.0]).expect("valid parts");
        assert_eq!(direct, rebuilt, "state is fully determined by (bounds, samples)");
        assert!(Histogram::from_parts(vec![2.0, 1.0], vec![]).is_err(), "unsorted bounds");
        assert!(Histogram::from_parts(vec![f64::NAN], vec![]).is_err(), "non-finite bound");
        assert!(
            Histogram::from_parts(vec![1.0], vec![f64::INFINITY]).is_err(),
            "non-finite sample"
        );
    }

    #[test]
    fn histogram_merge_is_a_function_of_the_sample_multiset() {
        let mut a = Histogram::new(&[1.0, 5.0]);
        let mut b = Histogram::new(&[1.0, 5.0]);
        for v in [3.0, 0.5] {
            a.observe(v);
        }
        for v in [9.0, 0.25] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count(), 4);
        assert_eq!(ab.samples(), &[0.25, 0.5, 3.0, 9.0], "merged samples are sorted");
        assert_eq!(ab.cumulative_counts(), vec![2, 3, 4]);
    }

    #[test]
    fn registry_merge_adds_counters_gauges_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("reqs_total", &[("node", "a")], 2);
        a.inc("shared_total", &[], 1);
        a.set_gauge("depth", &[], 3.0);
        a.observe("lat", &[], 1.0, &[2.0]);

        let mut b = MetricsRegistry::new();
        b.inc("reqs_total", &[("node", "b")], 5);
        b.inc("shared_total", &[], 4);
        b.set_gauge("depth", &[], 2.0);
        b.observe("lat", &[], 3.0, &[2.0]);

        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.counter("reqs_total", &[("node", "a")]), 2);
        assert_eq!(merged.counter("reqs_total", &[("node", "b")]), 5);
        assert_eq!(merged.counter("shared_total", &[]), 5);
        assert_eq!(merged.gauge("depth", &[]), Some(5.0));
        let h = merged.histogram("lat", &[]).expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.samples(), &[1.0, 3.0]);

        let mut other_way = b.clone();
        other_way.merge_from(&a);
        assert_eq!(merged, other_way, "registry merge is commutative");
        assert_eq!(merged.render_prometheus(), other_way.render_prometheus());
    }

    #[test]
    fn help_lines_render_before_type_and_stay_deterministic() {
        let mut reg = MetricsRegistry::new();
        reg.inc("reqs_total", &[("t", "a")], 1);
        reg.inc("reqs_total", &[("t", "b")], 2);
        reg.describe("reqs_total", "Requests admitted per tenant.");
        reg.observe("lat", &[], 1.0, &[2.0]);
        let text = reg.render_prometheus();
        assert!(
            text.contains("# HELP reqs_total Requests admitted per tenant.\n# TYPE reqs_total counter"),
            "{text}"
        );
        assert!(!text.contains("# HELP lat"), "undescribed metrics get no HELP line");
        // HELP is emitted once per metric, not per labelled series.
        assert_eq!(text.matches("# HELP reqs_total").count(), 1);

        // Conflicting descriptions resolve order-independently.
        let mut x = MetricsRegistry::new();
        x.describe("m", "zzz");
        let mut y = MetricsRegistry::new();
        y.describe("m", "aaa");
        let mut xy = x.clone();
        xy.merge_from(&y);
        let mut yx = y.clone();
        yx.merge_from(&x);
        assert_eq!(xy.description("m"), Some("aaa"));
        assert_eq!(xy, yx);
    }
}
