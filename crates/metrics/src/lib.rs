//! # cdd-metrics
//!
//! A **deterministic** metrics registry for the workspace: counters, gauges
//! and fixed-bucket histograms with exact percentiles, plus a Prometheus
//! text exporter, a JSON snapshot exporter and (in [`trace`]) a Chrome
//! `trace_event` sink for `gpu-sim` timelines.
//!
//! Determinism is the design constraint everything else follows from (it is
//! what lets CI byte-compare two runs of the same workload, mirroring the
//! service's determinism contract):
//!
//! * all series live in `BTreeMap`s keyed by `(name, sorted labels)` —
//!   iteration (and therefore rendering) order never depends on insertion
//!   order or hash seeds;
//! * counters are integers, so their rendered value is independent of the
//!   order in which concurrent contributors were folded in;
//! * nothing in this crate reads the wall clock — time enters only as
//!   values the *caller* observes (modeled seconds, measured latencies), so
//!   the hot path stays free of `Instant::now` calls;
//! * floats render through Rust's shortest-roundtrip formatter (`{:?}`),
//!   which is a pure function of the bits.
//!
//! Histograms keep both fixed bucket counts (for the Prometheus exposition)
//! and the raw samples (for *exact* p50/p95/p99 — no interpolation error at
//! the sample counts this workspace produces).
//!
//! ```
//! use cdd_metrics::{latency_ms_buckets, MetricsRegistry};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.inc("service_requests_total", &[], 3);
//! reg.observe("timing_request_wall_ms", &[], 12.5, latency_ms_buckets());
//! let text = reg.render_prometheus();
//! assert!(text.contains("service_requests_total 3"));
//! assert!(text.contains("timing_request_wall_ms_count 1"));
//! ```

pub mod trace;

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fixed bucket bounds for request-latency histograms, milliseconds
/// (50 µs … 10 s, roughly 1–2.5–5 per decade).
#[must_use]
pub fn latency_ms_buckets() -> &'static [f64] {
    &[
        0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
        2500.0, 5000.0, 10000.0,
    ]
}

/// Fixed bucket bounds for modeled device durations, seconds
/// (100 ns … 1 s — the range the simulator's kernels and transfers span).
#[must_use]
pub fn modeled_seconds_buckets() -> &'static [f64] {
    &[
        1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
        2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
    ]
}

/// Fixed bucket bounds for wire-frame sizes, bytes (16 B … 1 MiB in
/// powers of four — request/response frames cluster at the small end,
/// inline instances and long sequence streams at the large end).
#[must_use]
pub fn frame_bytes_buckets() -> &'static [f64] {
    &[
        16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
    ]
}

/// Fixed bucket bounds for per-connection request counts (1 … 4096):
/// how much work each accepted socket carried before closing.
#[must_use]
pub fn connection_requests_buckets() -> &'static [f64] {
    &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0]
}

/// Render an f64 deterministically (shortest string that round-trips).
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Escape a string for a JSON literal or a Prometheus label value.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A fully-qualified series identity: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        SeriesKey { name: name.to_string(), labels }
    }

    /// `name{k="v",…}` — the Prometheus sample identity.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }

    /// Same, with extra label pairs appended (histogram `le`).
    fn render_with(&self, extra: &[(&str, String)]) -> String {
        let mut inner: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
        inner.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))));
        format!("{}{{{}}}", self.name, inner.join(","))
    }

    fn labels_json(&self) -> String {
        let inner: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v))).collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// A fixed-bucket histogram that also keeps its raw samples, so bucket
/// counts serve the Prometheus exposition while percentiles stay exact.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Strictly increasing finite bucket upper bounds; `+Inf` is implicit.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts[bounds.len()]` is the
    /// overflow (`+Inf`) bucket.
    counts: Vec<u64>,
    sum: f64,
    samples: Vec<f64>,
}

impl Histogram {
    /// A histogram over the given finite upper bounds (must be sorted).
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            samples: Vec::new(),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx =
            self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.samples.push(value);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation (0 when empty; observations are durations, so
    /// they are non-negative).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Exact q-quantile by the nearest-rank rule over the raw samples
    /// (0 when empty). `quantile(0.5)` is the median element itself, not an
    /// interpolation.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    /// Finite bucket bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per bound, Prometheus style: one entry per finite
    /// bound plus the final `+Inf` total.
    #[must_use]
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }
}

/// A deterministic registry of counters, gauges and histograms.
///
/// Series are created on first touch; touching a series with an increment of
/// zero still creates it, so two runs that take the same code paths render
/// the same *set* of lines even where the values are zero.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to a counter (creating it at zero first).
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        *self.counters.entry(SeriesKey::new(name, labels)).or_insert(0) += by;
    }

    /// Set a gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(SeriesKey::new(name, labels), value);
    }

    /// Record one observation into a histogram; the series is created with
    /// `bounds` on first touch (later calls reuse the existing buckets).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64, bounds: &[f64]) {
        self.histograms
            .entry(SeriesKey::new(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current counter value (0 if the series does not exist).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&SeriesKey::new(name, labels)).copied().unwrap_or(0)
    }

    /// Current gauge value.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&SeriesKey::new(name, labels)).copied()
    }

    /// Histogram series, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&SeriesKey::new(name, labels))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the registry in the Prometheus text exposition format.
    /// Counters first, then gauges, then histograms; within each kind,
    /// series sort by `(name, labels)`. The output is a pure function of
    /// the recorded values.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (key, value) in &self.counters {
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{} {}", key.render(), value);
        }
        for (key, value) in &self.gauges {
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{} {}", key.render(), fmt_f64(*value));
        }
        for (key, hist) in &self.histograms {
            type_line(&mut out, &key.name, "histogram");
            let bucket_key = SeriesKey { name: format!("{}_bucket", key.name), ..key.clone() };
            let cumulative = hist.cumulative_counts();
            for (bound, count) in hist.bounds().iter().zip(&cumulative) {
                let _ = writeln!(
                    out,
                    "{} {}",
                    bucket_key.render_with(&[("le", fmt_f64(*bound))]),
                    count
                );
            }
            let _ = writeln!(
                out,
                "{} {}",
                bucket_key.render_with(&[("le", "+Inf".to_string())]),
                cumulative.last().copied().unwrap_or(0)
            );
            let sum_key = SeriesKey { name: format!("{}_sum", key.name), ..key.clone() };
            let _ = writeln!(out, "{} {}", sum_key.render(), fmt_f64(hist.sum()));
            let count_key = SeriesKey { name: format!("{}_count", key.name), ..key.clone() };
            let _ = writeln!(out, "{} {}", count_key.render(), hist.count());
        }
        out
    }

    /// Render a JSON snapshot: every series with its labels, plus exact
    /// p50/p95/p99 and min/max for histograms. Deterministic ordering.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        let mut first = true;
        for (key, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                escape(&key.name),
                key.labels_json(),
                value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        first = true;
        for (key, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                escape(&key.name),
                key.labels_json(),
                fmt_f64(*value)
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        first = true;
        for (key, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let mut buckets = String::new();
            let cumulative = hist.cumulative_counts();
            for (bound, count) in hist.bounds().iter().zip(&cumulative) {
                let _ = write!(buckets, "{{\"le\": {}, \"count\": {}}}, ", fmt_f64(*bound), count);
            }
            let _ = write!(
                buckets,
                "{{\"le\": \"+Inf\", \"count\": {}}}",
                cumulative.last().copied().unwrap_or(0)
            );
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"count\": {}, \"sum\": {}, \
                 \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                escape(&key.name),
                key.labels_json(),
                hist.count(),
                fmt_f64(hist.sum()),
                fmt_f64(hist.max()),
                fmt_f64(hist.quantile(0.50)),
                fmt_f64(hist.quantile(0.95)),
                fmt_f64(hist.quantile(0.99)),
                buckets
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.inc("requests_total", &[], 2);
        reg.inc("requests_total", &[], 3);
        reg.inc("errors_total", &[("kind", "timeout")], 0);
        assert_eq!(reg.counter("requests_total", &[]), 5);
        assert_eq!(reg.counter("errors_total", &[("kind", "timeout")]), 0);
        assert_eq!(reg.counter("absent", &[]), 0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 5"));
        assert!(text.contains("errors_total{kind=\"timeout\"} 0"), "zero series still render");
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut a = MetricsRegistry::new();
        a.inc("m", &[("x", "1"), ("y", "2")], 1);
        let mut b = MetricsRegistry::new();
        b.inc("m", &[("y", "2"), ("x", "1")], 1);
        assert_eq!(a.render_prometheus(), b.render_prometheus());
        assert_eq!(a.counter("m", &[("y", "2"), ("x", "1")]), 1);
    }

    #[test]
    fn gauges_render_shortest_roundtrip_floats() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("utilization", &[("device", "0")], 0.25);
        reg.set_gauge("utilization", &[("device", "0")], 0.5); // overwrite
        let text = reg.render_prometheus();
        assert!(text.contains("utilization{device=\"0\"} 0.5"));
        assert_eq!(reg.gauge("utilization", &[("device", "0")]), Some(0.5));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_percentiles_exact() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 0.7, 3.0, 7.0, 20.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_counts(), vec![2, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 31.2).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 3.0, "median is the exact middle sample");
        assert_eq!(h.quantile(0.95), 20.0);
        assert_eq!(h.quantile(0.0), 0.5);
        assert_eq!(h.max(), 20.0);
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0, "empty histogram");
    }

    #[test]
    fn boundary_observation_lands_in_its_le_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // le="1" is inclusive, Prometheus semantics
        assert_eq!(h.cumulative_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn prometheus_histogram_exposition_shape() {
        let mut reg = MetricsRegistry::new();
        reg.observe("lat_ms", &[("op", "solve")], 0.3, &[0.25, 0.5]);
        reg.observe("lat_ms", &[("op", "solve")], 0.1, &[0.25, 0.5]);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_ms histogram"));
        assert!(text.contains("lat_ms_bucket{op=\"solve\",le=\"0.25\"} 1"));
        assert!(text.contains("lat_ms_bucket{op=\"solve\",le=\"0.5\"} 2"));
        assert!(text.contains("lat_ms_bucket{op=\"solve\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ms_sum{op=\"solve\"} 0.4"));
        assert!(text.contains("lat_ms_count{op=\"solve\"} 2"));
    }

    #[test]
    fn rendering_is_deterministic_across_insertion_orders() {
        let mut a = MetricsRegistry::new();
        a.inc("z_total", &[], 1);
        a.inc("a_total", &[("dev", "1")], 2);
        a.set_gauge("g", &[], 1.5);
        a.observe("h", &[], 2.0, &[1.0, 3.0]);

        let mut b = MetricsRegistry::new();
        b.observe("h", &[], 2.0, &[1.0, 3.0]);
        b.set_gauge("g", &[], 1.5);
        b.inc("a_total", &[("dev", "1")], 2);
        b.inc("z_total", &[], 1);

        assert_eq!(a.render_prometheus(), b.render_prometheus());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn json_snapshot_contains_percentiles() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100 {
            reg.observe("lat", &[], f64::from(v), latency_ms_buckets());
        }
        let json = reg.render_json();
        assert!(json.contains("\"p50\": 50.0"), "{json}");
        assert!(json.contains("\"p95\": 95.0"));
        assert!(json.contains("\"p99\": 99.0"));
        assert!(json.contains("\"max\": 100.0"));
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        let mut reg = MetricsRegistry::new();
        reg.inc("m", &[("msg", "a\"b\\c\nd")], 1);
        let text = reg.render_prometheus();
        assert!(text.contains("m{msg=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn preset_buckets_are_strictly_increasing() {
        for bounds in [latency_ms_buckets(), modeled_seconds_buckets()] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
