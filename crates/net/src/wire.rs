//! Bounded little-endian byte codec for the cdd-net wire protocol.
//!
//! Everything on the wire is built from a handful of primitives — `u8`,
//! `u32`, `u64`, `i64`, `f64` (IEEE-754 bits), length-prefixed UTF-8
//! strings and length-prefixed byte blobs — written little-endian. The
//! reader is the security boundary: every `take_*` checks the remaining
//! buffer *before* touching it and returns a structured [`WireError`]
//! instead of panicking, and every length prefix is validated against the
//! bytes actually present before any allocation happens, so a hostile
//! 4-byte prefix claiming 4 GiB of payload costs nothing (DESIGN.md §13).

use std::fmt;

/// Decode-side failure: what was expected, and where the buffer ran out or
/// the content went wrong. Converted to `SuiteError::Protocol` at the
/// frame layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of the failed read.
    pub detail: String,
    /// Byte offset at which the failure was detected.
    pub at: usize,
}

impl WireError {
    fn new(detail: impl Into<String>, at: usize) -> Self {
        WireError { detail: detail.into(), at }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.detail, self.at)
    }
}

/// Growable little-endian writer. Infallible: the writer trusts its
/// caller; only the *reader* deals with hostile input.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern — exact round-trip, no formatting involved.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// `u32` length prefix + UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string fits a u32 length prefix"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `u32` length prefix + raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(u32::try_from(b.len()).expect("blob fits a u32 length prefix"));
        self.buf.extend_from_slice(b);
    }

    /// `Some(v)` as `1` + encoded value, `None` as `0`.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }
}

/// Bounds-checked little-endian reader over a borrowed buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless every byte was consumed — trailing garbage in a frame
    /// payload is a protocol violation, not padding.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::new(
                format!("{} trailing bytes after payload", self.remaining()),
                self.pos,
            ))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(
                format!("truncated {what}: need {n} bytes, have {}", self.remaining()),
                self.pos,
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn take_u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub fn take_u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub fn take_i64(&mut self, what: &str) -> Result<i64, WireError> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub fn take_f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    pub fn take_bool(&mut self, what: &str) -> Result<bool, WireError> {
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::new(format!("invalid bool {v} in {what}"), self.pos - 1)),
        }
    }

    /// Length-prefixed UTF-8 string. The prefix is validated against the
    /// bytes remaining *before* anything is copied.
    pub fn take_str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.take_u32(what)? as usize;
        if len > self.remaining() {
            return Err(WireError::new(
                format!("{what} length {len} exceeds {} remaining bytes", self.remaining()),
                self.pos,
            ));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::new(format!("{what} is not valid UTF-8"), self.pos - len))
    }

    /// Length-prefixed byte blob, prefix validated before allocation.
    pub fn take_bytes(&mut self, what: &str) -> Result<Vec<u8>, WireError> {
        let len = self.take_u32(what)? as usize;
        if len > self.remaining() {
            return Err(WireError::new(
                format!("{what} length {len} exceeds {} remaining bytes", self.remaining()),
                self.pos,
            ));
        }
        Ok(self.take(len, what)?.to_vec())
    }

    /// Element count for a fixed-stride array, validated against the bytes
    /// remaining so a hostile count can never drive an allocation larger
    /// than the (already length-capped) frame itself.
    pub fn take_count(&mut self, elem_size: usize, what: &str) -> Result<usize, WireError> {
        let count = self.take_u32(what)? as usize;
        let need = count.saturating_mul(elem_size.max(1));
        if need > self.remaining() {
            return Err(WireError::new(
                format!(
                    "{what} count {count} needs {need} bytes but only {} remain",
                    self.remaining()
                ),
                self.pos,
            ));
        }
        Ok(count)
    }

    pub fn take_opt_u64(&mut self, what: &str) -> Result<Option<u64>, WireError> {
        match self.take_u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64(what)?)),
            v => Err(WireError::new(format!("invalid option tag {v} in {what}"), self.pos - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(std::f64::consts::PI);
        w.put_bool(true);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8("a").unwrap(), 7);
        assert_eq!(r.take_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64("d").unwrap(), -42);
        assert_eq!(r.take_f64("e").unwrap(), std::f64::consts::PI);
        assert!(r.take_bool("f").unwrap());
        assert_eq!(r.take_str("g").unwrap(), "héllo");
        assert_eq!(r.take_bytes("h").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_opt_u64("i").unwrap(), Some(9));
        assert_eq!(r.take_opt_u64("j").unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.take_u32("field").unwrap_err();
        assert!(err.detail.contains("truncated field"), "{err}");
    }

    #[test]
    fn hostile_string_length_is_rejected_before_allocation() {
        // Claims a 4 GiB string with 1 byte behind it.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0x41];
        let mut r = ByteReader::new(&bytes);
        let err = r.take_str("name").unwrap_err();
        assert!(err.detail.contains("exceeds"), "{err}");
    }

    #[test]
    fn hostile_array_count_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // claims 4 G elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.take_count(40, "jobs").unwrap_err();
        assert!(err.detail.contains("only 0 remain"), "{err}");
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut r = ByteReader::new(&[0, 1, 2]);
        r.take_u8("x").unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_are_errors() {
        assert!(ByteReader::new(&[2]).take_bool("b").is_err());
        assert!(ByteReader::new(&[7]).take_opt_u64("o").is_err());
    }
}
