//! The cdd-net frame vocabulary and its length-prefixed encoding.
//!
//! Every frame on the wire is `[u32 len LE][u8 version][u8 tag][payload]`,
//! where `len` counts the version byte, the tag byte and the payload. The
//! length prefix is capped at [`MAX_FRAME_LEN`] and checked **before** any
//! allocation, so a hostile prefix cannot drive memory growth; unknown
//! tags and versions decode to structured `Protocol` errors, never panics
//! (satellite 1's proptest suite in `tests/frame_properties.rs` holds the
//! codec to that contract).
//!
//! Nine frame kinds cover the protocol:
//!
//! | tag | frame        | direction        | purpose                              |
//! |-----|--------------|------------------|--------------------------------------|
//! | 1   | `Request`    | client → node    | authenticated solve submission       |
//! | 2   | `Response`   | node → client    | terminal outcome summary             |
//! | 3   | `Chunk`      | node → client    | streamed job-sequence bytes          |
//! | 4   | `Error`      | node → client    | structured failure with retry hint   |
//! | 5   | `Ping`       | any → any        | liveness probe                       |
//! | 6   | `Pong`       | any → any        | liveness echo                        |
//! | 7   | `Stats`      | client → node    | snapshot request                     |
//! | 8   | `StatsReply` | node → client    | live service counters                |
//! | 9   | `Shutdown`   | client → node    | drain queue, join workers, exit      |
//!
//! ## Frame extensions
//!
//! `Request`, `Response`, `Stats` and `StatsReply` may carry an optional
//! **extension block** after their legacy fields:
//! `[u8 count]([u8 ext_tag][u32 len][payload])*`. The block is written
//! only when at least one extension is present, so a frame without
//! extensions encodes byte-identically to protocol version 1 before
//! extensions existed — tracing off means bytes unchanged. Decoders skip
//! unknown extension tags (and tolerate bytes appended inside a known
//! extension's payload), so an old node still parses a new client's
//! frames and vice versa. Current extensions: trace context on `Request`
//! (tag 1), a [`FlightRecord`] on `Response` (tag 1), the full-snapshot
//! flag on `Stats` (tag 1), and a full [`MetricsRegistry`] snapshot
//! (tag 1) plus router [`UpstreamHealth`] (tag 2) on `StatsReply`.

use crate::snapshot::{decode_flight, decode_registry, encode_flight, encode_registry};
use crate::wire::{ByteReader, ByteWriter, WireError};
use cdd_core::{Algorithm, Instance, Job, Priority, SolveRequest, SuiteError, TraceContext};
use cdd_instances::InstanceId;
use cdd_metrics::{FlightRecord, MetricsRegistry};
use std::io::{Read, Write};

/// Wire protocol version; bumped on any incompatible layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a frame's `len` prefix (1 MiB). Large enough for a
/// 20 000-job inline instance plus headers, small enough that a hostile
/// prefix cannot make a node allocate unbounded memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Upper bound on inline job counts and catalog `n` accepted over the
/// wire; the solver's own campaign sizes top out at 1000 jobs.
pub const MAX_WIRE_JOBS: usize = 20_000;

/// `Request` extension: a propagated [`TraceContext`].
pub const EXT_REQUEST_TRACE: u8 = 1;

/// `Response` extension: the request's stitched [`FlightRecord`].
pub const EXT_RESPONSE_FLIGHT: u8 = 1;

/// `Stats` extension: ask for a full [`MetricsRegistry`] snapshot in the
/// reply, not just the flat counters (empty payload — presence is the
/// flag).
pub const EXT_STATS_FULL: u8 = 1;

/// `StatsReply` extension: a full [`MetricsRegistry`] snapshot.
pub const EXT_STATS_REPLY_REGISTRY: u8 = 1;

/// `StatsReply` extension: router-side [`UpstreamHealth`].
pub const EXT_STATS_REPLY_HEALTH: u8 = 2;

/// Append the extension block — only when non-empty, so extension-free
/// frames stay byte-identical to the pre-extension wire format.
fn write_extensions(w: &mut ByteWriter, exts: &[(u8, Vec<u8>)]) {
    if exts.is_empty() {
        return;
    }
    w.put_u8(u8::try_from(exts.len()).expect("extension count fits u8"));
    for (tag, payload) in exts {
        w.put_u8(*tag);
        w.put_bytes(payload);
    }
}

/// Parse the optional extension block (anything after the legacy fields).
/// Unknown tags are returned to the caller, which skips them — the
/// cross-version tolerance rule. Hostile counts/lengths fail through the
/// bounds-checked reader.
fn read_extensions(r: &mut ByteReader) -> Result<Vec<(u8, Vec<u8>)>, WireError> {
    if r.remaining() == 0 {
        return Ok(Vec::new());
    }
    let count = r.take_u8("extension count")? as usize;
    let mut exts = Vec::with_capacity(count.min(16));
    for _ in 0..count {
        let tag = r.take_u8("extension tag")?;
        let payload = r.take_bytes("extension payload")?;
        exts.push((tag, payload));
    }
    Ok(exts)
}

/// Encode a [`TraceContext`] extension payload: trace id, parent span id,
/// then a flags byte (bit 0 = sampled; other bits reserved).
fn encode_trace(t: &TraceContext) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(t.trace_id);
    w.put_u64(t.parent_span_id);
    w.put_u8(u8::from(t.sampled));
    w.into_bytes()
}

/// Decode a [`TraceContext`] payload; unknown flag bits and appended
/// future fields are tolerated.
fn decode_trace(payload: &[u8]) -> Result<TraceContext, WireError> {
    let mut r = ByteReader::new(payload);
    let trace_id = r.take_u64("trace id")?;
    let parent_span_id = r.take_u64("parent span id")?;
    let flags = r.take_u8("trace flags")?;
    Ok(TraceContext { trace_id, parent_span_id, sampled: flags & 1 == 1 })
}

fn decode_health(payload: &[u8]) -> Result<UpstreamHealth, WireError> {
    let mut r = ByteReader::new(payload);
    Ok(UpstreamHealth {
        upstreams_alive: r.take_u32("upstreams alive")?,
        upstreams_unreachable: r.take_u32("upstreams unreachable")?,
    })
}

/// Structured error codes carried by [`Frame::Error`]; stable numeric
/// values are part of the wire contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Token does not match the tenant.
    Auth,
    /// Per-tenant token bucket empty; retry after the carried hint.
    RateLimited,
    /// Admission control rejected the request (queue full / headroom).
    Rejected,
    /// The request's deadline expired before dispatch.
    DeadlineExceeded,
    /// Malformed frame or request content.
    Protocol,
    /// The service failed internally (solver error, worker loss).
    Internal,
    /// No upstream node can take the request (router-side).
    Unavailable,
}

impl ErrorCode {
    /// Stable wire value.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Auth => 1,
            ErrorCode::RateLimited => 2,
            ErrorCode::Rejected => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Protocol => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Unavailable => 7,
        }
    }

    /// Inverse of [`ErrorCode::as_u8`]; unknown values are a protocol
    /// violation, not a panic.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => ErrorCode::Auth,
            2 => ErrorCode::RateLimited,
            3 => ErrorCode::Rejected,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Unavailable,
            other => return Err(WireError { detail: format!("unknown error code {other}"), at: 0 }),
        })
    }

    /// Short label used in metrics and log lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Auth => "auth",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::Rejected => "rejected",
            ErrorCode::DeadlineExceeded => "deadline",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Internal => "internal",
            ErrorCode::Unavailable => "unavailable",
        }
    }
}

/// What to solve: either a catalog coordinate (the normal path — both
/// ends regenerate the identical instance from `(n, k, h)`) or a fully
/// inline instance for ad-hoc work.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkSpec {
    /// Benchmark-catalog instance; `h = None` selects the UCDDCP
    /// generator, `Some(h)` the Biskup–Feldmann CDD generator.
    ById {
        /// Job count.
        n: u64,
        /// Instance number within the size class.
        k: u32,
        /// Restrictive factor for CDD, `None` for UCDDCP.
        h: Option<f64>,
    },
    /// Explicit job data, validated on receipt exactly like locally
    /// constructed instances.
    Inline {
        /// `false` = CDD, `true` = UCDDCP.
        ucddcp: bool,
        /// Common due date.
        due_date: i64,
        /// Job parameter rows `(P, M, α, β, γ)`.
        jobs: Vec<Job>,
    },
}

/// An authenticated solve submission.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRequest {
    /// Caller-chosen correlation id, echoed on every reply frame.
    pub id: u64,
    /// Tenant name; the unit of auth, rate limiting and accounting.
    pub tenant: String,
    /// Auth token for `tenant` (see [`crate::auth`]).
    pub token: String,
    /// Queue priority class.
    pub priority: Priority,
    /// Optional deadline in modeled milliseconds (admission control).
    pub deadline_ms: Option<u64>,
    /// Metaheuristic to run.
    pub algorithm: Algorithm,
    /// Iteration budget.
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// The instance to solve.
    pub work: WorkSpec,
    /// Optional distributed-tracing context, carried as a frame extension
    /// (`None` encodes byte-identically to the pre-extension format).
    pub trace: Option<TraceContext>,
}

impl NetRequest {
    /// Materialize the wire request into a typed [`SolveRequest`],
    /// validating catalog coordinates and inline job data. The resulting
    /// request's `content_key` is what the router shards on.
    pub fn to_solve_request(&self) -> Result<SolveRequest, SuiteError> {
        let instance = match &self.work {
            WorkSpec::ById { n, k, h } => {
                let n = usize::try_from(*n)
                    .ok()
                    .filter(|n| (1..=MAX_WIRE_JOBS).contains(n))
                    .ok_or_else(|| {
                        SuiteError::protocol(format!("instance size n={} out of range", self.n()))
                    })?;
                if *k == 0 || *k > 10_000 {
                    return Err(SuiteError::protocol(format!("instance number k={k} out of range")));
                }
                if let Some(h) = h {
                    if !h.is_finite() || *h <= 0.0 || *h > 1.0 {
                        return Err(SuiteError::protocol(format!(
                            "restrictive factor h={h} outside (0, 1]"
                        )));
                    }
                }
                InstanceId { n, k: *k, h: *h }.instantiate()
            }
            WorkSpec::Inline { ucddcp, due_date, jobs } => {
                let build = if *ucddcp { Instance::ucddcp } else { Instance::cdd };
                build(jobs.clone(), *due_date)
                    .map_err(|e| SuiteError::protocol(format!("inline instance rejected: {e}")))?
            }
        };
        Ok(SolveRequest {
            deadline_ms: self.deadline_ms,
            tenant: self.tenant.clone(),
            priority: self.priority,
            trace: self.trace,
            ..SolveRequest::new(instance, self.algorithm, self.iterations, self.seed)
        })
    }

    fn n(&self) -> u64 {
        match &self.work {
            WorkSpec::ById { n, .. } => *n,
            WorkSpec::Inline { jobs, .. } => jobs.len() as u64,
        }
    }
}

/// Terminal outcome summary for one request (the job sequence itself
/// arrives beforehand in [`Frame::Chunk`] frames).
#[derive(Debug, Clone, PartialEq)]
pub struct NetResponse {
    /// Correlation id of the originating request.
    pub id: u64,
    /// Objective value (total penalty).
    pub objective: i64,
    /// Modeled device-seconds the campaign consumed.
    pub modeled_seconds: f64,
    /// Fitness evaluations performed.
    pub evaluations: u64,
    /// Served from the solution cache (or coalesced onto an in-flight
    /// duplicate).
    pub cache_hit: bool,
    /// Device that ran the campaign, if any.
    pub device: Option<u64>,
    /// Answered by the CPU oracle instead of a device.
    pub cpu_fallback: bool,
    /// Degraded-mode answer (see DESIGN.md §12).
    pub degraded: bool,
    /// Wall-clock milliseconds from submit to completion (timing-shaped,
    /// excluded from determinism comparisons).
    pub wall_ms: f64,
    /// Opt-in per-hop latency attribution for traced requests, carried as
    /// a frame extension (`None` encodes byte-identically to the
    /// pre-extension format).
    pub flight: Option<FlightRecord>,
}

/// One slice of a streamed job sequence. Chunks for a request arrive in
/// order; `index == 0` restarts reassembly (a router re-route after a
/// node death replays the stream from the top).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamChunk {
    /// Correlation id of the originating request.
    pub id: u64,
    /// Zero-based chunk index.
    pub index: u32,
    /// Total chunks in this stream.
    pub total: u32,
    /// Little-endian `u32` job indices, at most [`CHUNK_JOBS`] per chunk.
    pub data: Vec<u8>,
}

/// Job indices per stream chunk (256 × 4 bytes ≈ 1 KiB of payload).
pub const CHUNK_JOBS: usize = 256;

/// Structured failure reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetError {
    /// Correlation id of the originating request (0 for connection-level
    /// failures that cannot name a request).
    pub id: u64,
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
    /// For `RateLimited`/`Rejected`: how long the client should wait
    /// before retrying, in milliseconds (0 = no hint).
    pub retry_after_ms: u64,
}

/// Live service counters, the wire twin of
/// [`cdd_service::ServiceSnapshot`] plus cache internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Requests accepted into the service.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed terminally.
    pub failed: u64,
    /// Requests expired by deadline.
    pub expired: u64,
    /// Degraded (CPU-oracle) completions.
    pub degraded: u64,
    /// Admission-control rejections.
    pub rejected: u64,
    /// Supervisor retry dispatches.
    pub retried: u64,
    /// Worker restarts.
    pub restarts: u64,
    /// Current submission-queue depth.
    pub queue_depth: u64,
    /// Solution-cache hits.
    pub cache_hits: u64,
    /// Solution-cache misses.
    pub cache_misses: u64,
    /// Requests coalesced onto in-flight duplicates.
    pub coalesced: u64,
}

/// Router-side upstream reachability attached to an aggregated
/// `StatsReply`, so a partial fleet aggregate is distinguishable from a
/// full one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpstreamHealth {
    /// Upstreams that answered the stats poll.
    pub upstreams_alive: u32,
    /// Upstreams that were dead or unreachable when aggregating (their
    /// counters are missing from the aggregate).
    pub upstreams_unreachable: u32,
}

/// The `StatsReply` payload: the legacy flat counters, plus optional
/// extensions — a full registry snapshot and (from routers) upstream
/// health. A plain-counters envelope encodes byte-identically to the
/// pre-extension `StatsReply`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsEnvelope {
    /// Flat service counters (always present — the legacy payload).
    pub stats: NodeStats,
    /// Router aggregation health (routers always attach this; nodes never
    /// do).
    pub health: Option<UpstreamHealth>,
    /// Full metrics-registry snapshot (attached when the poll asked for
    /// `Stats { full: true }`).
    pub registry: Option<MetricsRegistry>,
}

impl StatsEnvelope {
    /// An envelope carrying only the flat counters.
    #[must_use]
    pub fn flat(stats: NodeStats) -> Self {
        StatsEnvelope { stats, health: None, registry: None }
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Solve submission (tag 1).
    Request(NetRequest),
    /// Terminal outcome (tag 2).
    Response(NetResponse),
    /// Streamed sequence slice (tag 3).
    Chunk(StreamChunk),
    /// Structured failure (tag 4).
    Error(NetError),
    /// Liveness probe (tag 5).
    Ping {
        /// Echoed verbatim in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Liveness echo (tag 6).
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Snapshot request (tag 7); `full` asks for a registry snapshot in
    /// the reply (carried as an extension — `full: false` encodes as the
    /// legacy empty payload).
    Stats {
        /// Whether the reply should include the full metrics registry.
        full: bool,
    },
    /// Snapshot reply (tag 8).
    StatsReply(StatsEnvelope),
    /// Drain-and-exit request (tag 9).
    Shutdown,
}

impl Frame {
    /// Wire tag for this frame kind.
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Request(_) => 1,
            Frame::Response(_) => 2,
            Frame::Chunk(_) => 3,
            Frame::Error(_) => 4,
            Frame::Ping { .. } => 5,
            Frame::Pong { .. } => 6,
            Frame::Stats { .. } => 7,
            Frame::StatsReply(_) => 8,
            Frame::Shutdown => 9,
        }
    }

    /// Short label used in `net_frames_total{type=…}` metrics.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Frame::Request(_) => "request",
            Frame::Response(_) => "response",
            Frame::Chunk(_) => "chunk",
            Frame::Error(_) => "error",
            Frame::Ping { .. } => "ping",
            Frame::Pong { .. } => "pong",
            Frame::Stats { .. } => "stats",
            Frame::StatsReply(_) => "stats_reply",
            Frame::Shutdown => "shutdown",
        }
    }

    /// Encode to the full wire form, length prefix included.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(PROTOCOL_VERSION);
        w.put_u8(self.tag());
        match self {
            Frame::Request(r) => {
                w.put_u64(r.id);
                w.put_str(&r.tenant);
                w.put_str(&r.token);
                w.put_u8(r.priority.as_u8());
                w.put_opt_u64(r.deadline_ms);
                w.put_str(&r.algorithm.to_string());
                w.put_u64(r.iterations);
                w.put_u64(r.seed);
                match &r.work {
                    WorkSpec::ById { n, k, h } => {
                        w.put_u8(0);
                        w.put_u64(*n);
                        w.put_u32(*k);
                        match h {
                            Some(h) => {
                                w.put_u8(1);
                                w.put_f64(*h);
                            }
                            None => w.put_u8(0),
                        }
                    }
                    WorkSpec::Inline { ucddcp, due_date, jobs } => {
                        w.put_u8(1);
                        w.put_bool(*ucddcp);
                        w.put_i64(*due_date);
                        w.put_u32(u32::try_from(jobs.len()).expect("job count fits u32"));
                        for j in jobs {
                            w.put_i64(j.processing);
                            w.put_i64(j.min_processing);
                            w.put_i64(j.earliness_penalty);
                            w.put_i64(j.tardiness_penalty);
                            w.put_i64(j.compression_penalty);
                        }
                    }
                }
                let mut exts = Vec::new();
                if let Some(t) = &r.trace {
                    exts.push((EXT_REQUEST_TRACE, encode_trace(t)));
                }
                write_extensions(&mut w, &exts);
            }
            Frame::Response(r) => {
                w.put_u64(r.id);
                w.put_i64(r.objective);
                w.put_f64(r.modeled_seconds);
                w.put_u64(r.evaluations);
                w.put_bool(r.cache_hit);
                w.put_opt_u64(r.device);
                w.put_bool(r.cpu_fallback);
                w.put_bool(r.degraded);
                w.put_f64(r.wall_ms);
                let mut exts = Vec::new();
                if let Some(f) = &r.flight {
                    exts.push((EXT_RESPONSE_FLIGHT, encode_flight(f)));
                }
                write_extensions(&mut w, &exts);
            }
            Frame::Chunk(c) => {
                w.put_u64(c.id);
                w.put_u32(c.index);
                w.put_u32(c.total);
                w.put_bytes(&c.data);
            }
            Frame::Error(e) => {
                w.put_u64(e.id);
                w.put_u8(e.code.as_u8());
                w.put_str(&e.detail);
                w.put_u64(e.retry_after_ms);
            }
            Frame::Ping { nonce } | Frame::Pong { nonce } => w.put_u64(*nonce),
            Frame::Shutdown => {}
            Frame::Stats { full } => {
                if *full {
                    write_extensions(&mut w, &[(EXT_STATS_FULL, Vec::new())]);
                }
            }
            Frame::StatsReply(env) => {
                let s = &env.stats;
                w.put_u64(s.submitted);
                w.put_u64(s.completed);
                w.put_u64(s.failed);
                w.put_u64(s.expired);
                w.put_u64(s.degraded);
                w.put_u64(s.rejected);
                w.put_u64(s.retried);
                w.put_u64(s.restarts);
                w.put_u64(s.queue_depth);
                w.put_u64(s.cache_hits);
                w.put_u64(s.cache_misses);
                w.put_u64(s.coalesced);
                let mut exts = Vec::new();
                if let Some(reg) = &env.registry {
                    exts.push((EXT_STATS_REPLY_REGISTRY, encode_registry(reg)));
                }
                if let Some(h) = &env.health {
                    let mut hw = ByteWriter::new();
                    hw.put_u32(h.upstreams_alive);
                    hw.put_u32(h.upstreams_unreachable);
                    exts.push((EXT_STATS_REPLY_HEALTH, hw.into_bytes()));
                }
                write_extensions(&mut w, &exts);
            }
        }
        let body = w.into_bytes();
        debug_assert!(body.len() <= MAX_FRAME_LEN, "encoded frame exceeds MAX_FRAME_LEN");
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&u32::try_from(body.len()).expect("frame length fits u32").to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a frame body (version byte onward, length prefix already
    /// stripped and validated). Never panics on any input.
    pub fn decode_body(body: &[u8]) -> Result<Frame, SuiteError> {
        let mut r = ByteReader::new(body);
        let wire = |e: WireError| SuiteError::protocol(e.to_string());
        let version = r.take_u8("version").map_err(wire)?;
        if version != PROTOCOL_VERSION {
            return Err(SuiteError::protocol(format!(
                "unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
            )));
        }
        let tag = r.take_u8("frame tag").map_err(wire)?;
        let frame = match tag {
            1 => {
                let id = r.take_u64("request id").map_err(wire)?;
                let tenant = r.take_str("tenant").map_err(wire)?;
                let token = r.take_str("token").map_err(wire)?;
                let priority_raw = r.take_u8("priority").map_err(wire)?;
                let priority = Priority::from_u8(priority_raw)
                    .map_err(|_| SuiteError::protocol(format!("unknown priority class {priority_raw}")))?;
                let deadline_ms = r.take_opt_u64("deadline").map_err(wire)?;
                let algo_s = r.take_str("algorithm").map_err(wire)?;
                let algorithm: Algorithm = algo_s
                    .parse()
                    .map_err(|_| SuiteError::protocol(format!("unknown algorithm {algo_s:?}")))?;
                let iterations = r.take_u64("iterations").map_err(wire)?;
                let seed = r.take_u64("seed").map_err(wire)?;
                let work = match r.take_u8("work kind").map_err(wire)? {
                    0 => {
                        let n = r.take_u64("n").map_err(wire)?;
                        let k = r.take_u32("k").map_err(wire)?;
                        let h = match r.take_u8("h flag").map_err(wire)? {
                            0 => None,
                            1 => Some(r.take_f64("h").map_err(wire)?),
                            v => {
                                return Err(SuiteError::protocol(format!("invalid h flag {v}")));
                            }
                        };
                        WorkSpec::ById { n, k, h }
                    }
                    1 => {
                        let ucddcp = r.take_bool("ucddcp flag").map_err(wire)?;
                        let due_date = r.take_i64("due date").map_err(wire)?;
                        let count = r.take_count(40, "inline jobs").map_err(wire)?;
                        if count > MAX_WIRE_JOBS {
                            return Err(SuiteError::protocol(format!(
                                "inline job count {count} exceeds limit {MAX_WIRE_JOBS}"
                            )));
                        }
                        let mut jobs = Vec::with_capacity(count);
                        for _ in 0..count {
                            jobs.push(Job {
                                processing: r.take_i64("P").map_err(wire)?,
                                min_processing: r.take_i64("M").map_err(wire)?,
                                earliness_penalty: r.take_i64("alpha").map_err(wire)?,
                                tardiness_penalty: r.take_i64("beta").map_err(wire)?,
                                compression_penalty: r.take_i64("gamma").map_err(wire)?,
                            });
                        }
                        WorkSpec::Inline { ucddcp, due_date, jobs }
                    }
                    v => return Err(SuiteError::protocol(format!("unknown work kind {v}"))),
                };
                let mut trace = None;
                for (ext, payload) in read_extensions(&mut r).map_err(wire)? {
                    if ext == EXT_REQUEST_TRACE {
                        trace = Some(decode_trace(&payload).map_err(wire)?);
                    }
                }
                Frame::Request(NetRequest {
                    id,
                    tenant,
                    token,
                    priority,
                    deadline_ms,
                    algorithm,
                    iterations,
                    seed,
                    work,
                    trace,
                })
            }
            2 => {
                let mut resp = NetResponse {
                    id: r.take_u64("response id").map_err(wire)?,
                    objective: r.take_i64("objective").map_err(wire)?,
                    modeled_seconds: r.take_f64("modeled seconds").map_err(wire)?,
                    evaluations: r.take_u64("evaluations").map_err(wire)?,
                    cache_hit: r.take_bool("cache hit").map_err(wire)?,
                    device: r.take_opt_u64("device").map_err(wire)?,
                    cpu_fallback: r.take_bool("cpu fallback").map_err(wire)?,
                    degraded: r.take_bool("degraded").map_err(wire)?,
                    wall_ms: r.take_f64("wall ms").map_err(wire)?,
                    flight: None,
                };
                for (ext, payload) in read_extensions(&mut r).map_err(wire)? {
                    if ext == EXT_RESPONSE_FLIGHT {
                        resp.flight = Some(decode_flight(&payload).map_err(wire)?);
                    }
                }
                Frame::Response(resp)
            }
            3 => Frame::Chunk(StreamChunk {
                id: r.take_u64("chunk id").map_err(wire)?,
                index: r.take_u32("chunk index").map_err(wire)?,
                total: r.take_u32("chunk total").map_err(wire)?,
                data: r.take_bytes("chunk data").map_err(wire)?,
            }),
            4 => Frame::Error(NetError {
                id: r.take_u64("error id").map_err(wire)?,
                code: ErrorCode::from_u8(r.take_u8("error code").map_err(wire)?)
                    .map_err(|e| SuiteError::protocol(e.detail))?,
                detail: r.take_str("error detail").map_err(wire)?,
                retry_after_ms: r.take_u64("retry hint").map_err(wire)?,
            }),
            5 => Frame::Ping { nonce: r.take_u64("ping nonce").map_err(wire)? },
            6 => Frame::Pong { nonce: r.take_u64("pong nonce").map_err(wire)? },
            7 => {
                let exts = read_extensions(&mut r).map_err(wire)?;
                Frame::Stats { full: exts.iter().any(|(ext, _)| *ext == EXT_STATS_FULL) }
            }
            8 => {
                let stats = NodeStats {
                    submitted: r.take_u64("submitted").map_err(wire)?,
                    completed: r.take_u64("completed").map_err(wire)?,
                    failed: r.take_u64("failed").map_err(wire)?,
                    expired: r.take_u64("expired").map_err(wire)?,
                    degraded: r.take_u64("degraded").map_err(wire)?,
                    rejected: r.take_u64("rejected").map_err(wire)?,
                    retried: r.take_u64("retried").map_err(wire)?,
                    restarts: r.take_u64("restarts").map_err(wire)?,
                    queue_depth: r.take_u64("queue depth").map_err(wire)?,
                    cache_hits: r.take_u64("cache hits").map_err(wire)?,
                    cache_misses: r.take_u64("cache misses").map_err(wire)?,
                    coalesced: r.take_u64("coalesced").map_err(wire)?,
                };
                let mut env = StatsEnvelope::flat(stats);
                for (ext, payload) in read_extensions(&mut r).map_err(wire)? {
                    match ext {
                        EXT_STATS_REPLY_REGISTRY => {
                            env.registry = Some(decode_registry(&payload).map_err(wire)?);
                        }
                        EXT_STATS_REPLY_HEALTH => {
                            env.health = Some(decode_health(&payload).map_err(wire)?);
                        }
                        _ => {}
                    }
                }
                Frame::StatsReply(env)
            }
            9 => Frame::Shutdown,
            other => {
                return Err(SuiteError::protocol(format!("unknown frame tag {other}")));
            }
        };
        r.finish().map_err(wire)?;
        Ok(frame)
    }
}

/// Split a job sequence into ordered [`StreamChunk`]s of [`CHUNK_JOBS`]
/// indices each. An empty sequence still yields one (empty) chunk so the
/// receiver always sees a complete stream before the response.
#[must_use]
pub fn chunk_sequence(id: u64, order: &[u32]) -> Vec<StreamChunk> {
    let chunks: Vec<&[u32]> =
        if order.is_empty() { vec![&[][..]] } else { order.chunks(CHUNK_JOBS).collect() };
    let total = u32::try_from(chunks.len()).expect("chunk count fits u32");
    chunks
        .iter()
        .enumerate()
        .map(|(i, slice)| {
            let mut data = Vec::with_capacity(slice.len() * 4);
            for &j in *slice {
                data.extend_from_slice(&j.to_le_bytes());
            }
            StreamChunk { id, index: u32::try_from(i).expect("chunk index fits u32"), total, data }
        })
        .collect()
}

/// Reassemble chunk payloads back into the job-index sequence.
pub fn assemble_sequence(data: &[u8]) -> Result<Vec<u32>, SuiteError> {
    if !data.len().is_multiple_of(4) {
        return Err(SuiteError::protocol(format!(
            "sequence stream length {} is not a multiple of 4",
            data.len()
        )));
    }
    Ok(data.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))).collect())
}

/// Error detail reported when a read timeout fires before the first byte
/// of a frame arrives. Servers poll with a socket read timeout so they
/// can observe shutdown flags between frames; [`is_idle_timeout`] lets
/// them tell that benign case apart from real protocol damage.
pub const IDLE_TIMEOUT_DETAIL: &str = "frame read idled before any byte arrived";

/// Whether `err` is the benign between-frames read timeout.
#[must_use]
pub fn is_idle_timeout(err: &SuiteError) -> bool {
    matches!(err, SuiteError::Protocol { detail } if detail == IDLE_TIMEOUT_DETAIL)
}

fn is_wait(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Read one frame from `r`. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection); a hostile or oversized
/// length prefix is rejected **before** any payload allocation. If the
/// stream has a read timeout and it fires with no frame started, the
/// error satisfies [`is_idle_timeout`]; once a frame has begun, timeouts
/// retry (the rest of the frame is already in flight).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, SuiteError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(SuiteError::protocol("connection closed mid length prefix")),
            Ok(n) => filled += n,
            Err(e) if is_wait(e.kind()) && filled == 0 && e.kind() != std::io::ErrorKind::Interrupted => {
                return Err(SuiteError::protocol(IDLE_TIMEOUT_DETAIL));
            }
            Err(e) if is_wait(e.kind()) => {}
            Err(e) => return Err(SuiteError::protocol(format!("read failed: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len < 2 {
        return Err(SuiteError::protocol(format!("frame length {len} below minimum of 2")));
    }
    if len > MAX_FRAME_LEN {
        return Err(SuiteError::protocol(format!(
            "frame length {len} exceeds limit {MAX_FRAME_LEN}"
        )));
    }
    let mut body = vec![0u8; len];
    let mut have = 0;
    while have < len {
        match r.read(&mut body[have..]) {
            Ok(0) => return Err(SuiteError::protocol("connection closed mid frame")),
            Ok(n) => have += n,
            Err(e) if is_wait(e.kind()) => {}
            Err(e) => return Err(SuiteError::protocol(format!("read failed mid frame: {e}"))),
        }
    }
    Frame::decode_body(&body).map(Some)
}

/// Write one frame to `w` and flush it.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), SuiteError> {
    let bytes = frame.encode();
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| SuiteError::protocol(format!("write failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_request() -> NetRequest {
        NetRequest {
            id: 42,
            tenant: "t0".into(),
            token: "deadbeef".into(),
            priority: Priority::Interactive,
            deadline_ms: Some(5000),
            algorithm: Algorithm::Sa,
            iterations: 100,
            seed: 7,
            work: WorkSpec::ById { n: 10, k: 1, h: Some(0.6) },
            trace: None,
        }
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames = vec![
            Frame::Request(sample_request()),
            Frame::Response(NetResponse {
                id: 42,
                objective: 1025,
                modeled_seconds: 0.25,
                evaluations: 76_800,
                cache_hit: false,
                device: Some(1),
                cpu_fallback: false,
                degraded: false,
                wall_ms: 12.5,
                flight: None,
            }),
            Frame::Chunk(StreamChunk { id: 42, index: 0, total: 1, data: vec![1, 0, 0, 0] }),
            Frame::Error(NetError {
                id: 9,
                code: ErrorCode::RateLimited,
                detail: "tenant t0 over budget".into(),
                retry_after_ms: 250,
            }),
            Frame::Ping { nonce: 77 },
            Frame::Pong { nonce: 77 },
            Frame::Stats { full: false },
            Frame::StatsReply(StatsEnvelope::flat(NodeStats {
                submitted: 3,
                completed: 2,
                ..Default::default()
            })),
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for f in &frames {
            let got = read_frame(&mut cursor).unwrap().expect("frame present");
            assert_eq!(&got, f);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after last frame");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert!(err.to_string().contains("exceeds limit"), "{err}");
    }

    #[test]
    fn unknown_tag_is_a_structured_protocol_error() {
        let err = Frame::decode_body(&[PROTOCOL_VERSION, 200]).unwrap_err();
        assert!(err.to_string().contains("unknown frame tag 200"), "{err}");
    }

    #[test]
    fn unknown_version_is_rejected() {
        let err = Frame::decode_body(&[99, 5, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Frame::Ping { nonce: 1 }.encode()[4..].to_vec();
        body.push(0xFF);
        assert!(Frame::decode_body(&body).is_err());
    }

    #[test]
    fn traced_frames_round_trip_and_untraced_bytes_are_unchanged() {
        let untraced = Frame::Request(sample_request());
        let traced = Frame::Request(NetRequest {
            trace: Some(TraceContext { trace_id: 0xABCD, parent_span_id: 7, sampled: true }),
            ..sample_request()
        });
        assert_eq!(Frame::decode_body(&traced.encode()[4..]).unwrap(), traced);
        // The extension block appears only when an extension is present:
        // past the length prefix, the untraced body is a byte-identical
        // prefix of the traced one.
        let (traced_wire, untraced_wire) = (traced.encode(), untraced.encode());
        assert!(traced_wire.len() > untraced_wire.len());
        assert_eq!(
            &traced_wire[4..untraced_wire.len()],
            &untraced_wire[4..],
            "legacy fields are a byte-identical prefix"
        );

        let response = Frame::Response(NetResponse {
            id: 42,
            objective: 10,
            modeled_seconds: 0.5,
            evaluations: 100,
            cache_hit: false,
            device: Some(0),
            cpu_fallback: false,
            degraded: false,
            wall_ms: 3.25,
            flight: Some(FlightRecord {
                trace_id: 0xABCD,
                node: "a".into(),
                hops: vec![cdd_metrics::FlightHop::new("worker", "attempt", 500.0, 512.0)],
            }),
        });
        assert_eq!(Frame::decode_body(&response.encode()[4..]).unwrap(), response);
    }

    #[test]
    fn stats_frames_round_trip_with_extensions() {
        for frame in [Frame::Stats { full: false }, Frame::Stats { full: true }] {
            assert_eq!(Frame::decode_body(&frame.encode()[4..]).unwrap(), frame);
        }
        assert_eq!(
            Frame::Stats { full: false }.encode().len(),
            4 + 2,
            "plain stats poll is the legacy empty payload"
        );

        let mut reg = MetricsRegistry::new();
        reg.inc("net_requests_total", &[("tenant", "t0")], 3);
        let env = StatsEnvelope {
            stats: NodeStats { submitted: 3, ..Default::default() },
            health: Some(UpstreamHealth { upstreams_alive: 2, upstreams_unreachable: 1 }),
            registry: Some(reg),
        };
        let frame = Frame::StatsReply(env);
        assert_eq!(Frame::decode_body(&frame.encode()[4..]).unwrap(), frame);
    }

    #[test]
    fn unknown_extensions_are_skipped_not_errors() {
        // A frame from a *newer* peer: legacy fields, then an extension
        // block holding one unknown tag. This build must parse the known
        // shape and ignore the stranger.
        let mut body = Frame::Request(sample_request()).encode()[4..].to_vec();
        body.push(1); // extension count
        body.push(200); // unknown tag
        body.extend_from_slice(&3u32.to_le_bytes());
        body.extend_from_slice(&[1, 2, 3]);
        let decoded = Frame::decode_body(&body).expect("unknown extension tolerated");
        assert_eq!(decoded, Frame::Request(sample_request()));

        // Same for a stats reply carrying a future extension.
        let mut body =
            Frame::StatsReply(StatsEnvelope::flat(NodeStats::default())).encode()[4..].to_vec();
        body.push(1);
        body.push(250);
        body.extend_from_slice(&0u32.to_le_bytes());
        assert!(Frame::decode_body(&body).is_ok());

        // A truncated extension block is still an error.
        let mut body = Frame::Request(sample_request()).encode()[4..].to_vec();
        body.push(2); // claims two extensions, provides none
        assert!(Frame::decode_body(&body).is_err());
    }

    #[test]
    fn request_materializes_and_keys_like_a_local_request() {
        let wire_req = sample_request().to_solve_request().unwrap();
        let local = SolveRequest::new(
            InstanceId { n: 10, k: 1, h: Some(0.6) }.instantiate(),
            Algorithm::Sa,
            100,
            7,
        );
        assert_eq!(wire_req.content_key(), local.content_key());
        assert_eq!(wire_req.tenant, "t0");
        assert_eq!(wire_req.priority, Priority::Interactive);
    }

    #[test]
    fn hostile_by_id_parameters_are_protocol_errors() {
        for (n, k, h) in [
            (0u64, 1u32, Some(0.5)),
            (u64::MAX, 1, Some(0.5)),
            (10, 0, Some(0.5)),
            (10, 1, Some(f64::NAN)),
            (10, 1, Some(-0.5)),
            (10, 1, Some(7.0)),
        ] {
            let req =
                NetRequest { work: WorkSpec::ById { n, k, h }, ..sample_request() };
            assert!(req.to_solve_request().is_err(), "({n},{k},{h:?}) must be rejected");
        }
    }

    #[test]
    fn inline_work_is_validated_on_receipt() {
        let bad = NetRequest {
            work: WorkSpec::Inline {
                ucddcp: false,
                due_date: 10,
                jobs: vec![Job::cdd(0, 1, 1)], // zero processing time
            },
            ..sample_request()
        };
        assert!(bad.to_solve_request().is_err());

        let good = NetRequest {
            work: WorkSpec::Inline {
                ucddcp: false,
                due_date: 10,
                jobs: vec![Job::cdd(4, 1, 2), Job::cdd(6, 2, 1)],
            },
            ..sample_request()
        };
        assert!(good.to_solve_request().is_ok());
    }

    #[test]
    fn sequences_chunk_and_reassemble() {
        let order: Vec<u32> = (0..1000).collect();
        let chunks = chunk_sequence(5, &order);
        assert_eq!(chunks.len(), 4); // 256×3 + 232
        assert!(chunks.iter().all(|c| c.total == 4 && c.id == 5));
        let mut data = Vec::new();
        for c in &chunks {
            data.extend_from_slice(&c.data);
        }
        assert_eq!(assemble_sequence(&data).unwrap(), order);

        let empty = chunk_sequence(1, &[]);
        assert_eq!(empty.len(), 1);
        assert!(empty[0].data.is_empty());
        assert!(assemble_sequence(&[1, 2, 3]).is_err(), "ragged stream rejected");
    }
}
