//! Per-tenant token-bucket rate limiting for `cdd-node`.
//!
//! Each tenant owns an independent bucket of `burst` tokens refilled at
//! `rate_per_sec`; a request costs one token. Time enters only through
//! the caller-supplied millisecond clock, so the limiter itself is a pure
//! state machine — tests (and the determinism story) drive it with a
//! logical clock, while the node feeds it milliseconds since process
//! start. Shedding is **lossless** at the protocol level: a limited
//! request is answered with `ErrorCode::RateLimited` plus a
//! `retry_after_ms` hint and the client resubmits, so the final outcome
//! set is unchanged — rate limiting shapes *when* work is admitted, never
//! *what* it computes (DESIGN.md §13).

use std::collections::BTreeMap;

/// Rejection detail: how long until a token is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAfter {
    /// Milliseconds until the next token matures (minimum 1).
    pub retry_after_ms: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Token balance scaled by 1000 (milli-tokens) to keep refill integer.
    milli_tokens: u64,
    last_refill_ms: u64,
}

/// Token buckets keyed by tenant name (`BTreeMap` for deterministic
/// iteration in stats and tests).
#[derive(Debug, Clone)]
pub struct TenantLimiter {
    rate_per_sec: u64,
    burst: u64,
    buckets: BTreeMap<String, Bucket>,
}

impl TenantLimiter {
    /// A limiter granting `rate_per_sec` requests/second with bursts up to
    /// `burst`. `rate_per_sec == 0` disables limiting entirely.
    #[must_use]
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        TenantLimiter { rate_per_sec, burst: burst.max(1), buckets: BTreeMap::new() }
    }

    /// Whether limiting is active at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.rate_per_sec > 0
    }

    /// Try to spend one token for `tenant` at time `now_ms`.
    pub fn try_acquire(&mut self, tenant: &str, now_ms: u64) -> Result<(), RetryAfter> {
        if !self.enabled() {
            return Ok(());
        }
        let full = self.burst * 1000;
        let bucket = self
            .buckets
            .entry(tenant.to_string())
            .or_insert(Bucket { milli_tokens: full, last_refill_ms: now_ms });
        // Refill: rate_per_sec tokens/s == rate_per_sec milli-tokens/ms.
        // A long-idle bucket can see an elapsed gap large enough that
        // `elapsed * rate` wraps `u64` (release builds wrap silently and the
        // `.min(full)` clamp would then *corrupt* the balance instead of
        // capping it), so the refill saturates before clamping.
        let elapsed = now_ms.saturating_sub(bucket.last_refill_ms);
        bucket.milli_tokens =
            elapsed.saturating_mul(self.rate_per_sec).saturating_add(bucket.milli_tokens).min(full);
        bucket.last_refill_ms = now_ms;
        if bucket.milli_tokens >= 1000 {
            bucket.milli_tokens -= 1000;
            Ok(())
        } else {
            let deficit = 1000 - bucket.milli_tokens;
            Err(RetryAfter { retry_after_ms: deficit.div_ceil(self.rate_per_sec).max(1) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_limiter_admits_everything() {
        let mut l = TenantLimiter::new(0, 1);
        for i in 0..10_000 {
            assert!(l.try_acquire("t", i).is_ok());
        }
    }

    #[test]
    fn burst_then_refill() {
        let mut l = TenantLimiter::new(10, 3); // 10/s, burst 3
        assert!(l.try_acquire("t", 0).is_ok());
        assert!(l.try_acquire("t", 0).is_ok());
        assert!(l.try_acquire("t", 0).is_ok());
        let hint = l.try_acquire("t", 0).unwrap_err();
        assert_eq!(hint.retry_after_ms, 100, "one token matures in 1000/10 ms");
        // 100 ms later exactly one token has matured.
        assert!(l.try_acquire("t", 100).is_ok());
        assert!(l.try_acquire("t", 100).is_err());
        // A long idle period caps at the burst, not unbounded credit.
        assert!(l.try_acquire("t", 1_000_000).is_ok());
        assert!(l.try_acquire("t", 1_000_000).is_ok());
        assert!(l.try_acquire("t", 1_000_000).is_ok());
        assert!(l.try_acquire("t", 1_000_000).is_err());
    }

    #[test]
    fn tenants_are_isolated() {
        let mut l = TenantLimiter::new(1, 1);
        assert!(l.try_acquire("a", 0).is_ok());
        assert!(l.try_acquire("a", 0).is_err(), "a exhausted its bucket");
        assert!(l.try_acquire("b", 0).is_ok(), "b is unaffected");
    }

    #[test]
    fn near_u64_max_idle_gap_refills_to_burst_instead_of_overflowing() {
        let mut l = TenantLimiter::new(1000, 2);
        // Drain the bucket at t=0.
        assert!(l.try_acquire("t", 0).is_ok());
        assert!(l.try_acquire("t", 0).is_ok());
        assert!(l.try_acquire("t", 0).is_err(), "burst exhausted");
        // A near-u64::MAX gap previously wrapped `elapsed * rate` and could
        // zero out the balance; it must refill to exactly the burst cap.
        assert!(l.try_acquire("t", u64::MAX - 1).is_ok());
        assert!(l.try_acquire("t", u64::MAX - 1).is_ok());
        assert!(
            l.try_acquire("t", u64::MAX - 1).is_err(),
            "refill caps at burst, no unbounded or wrapped credit"
        );
        // And the limiter keeps functioning after the jump: at 1000/s one
        // token matures in the final millisecond before the clock pegs.
        assert!(l.try_acquire("t", u64::MAX).is_ok());
        let hint = l.try_acquire("t", u64::MAX).unwrap_err();
        assert!(hint.retry_after_ms >= 1);
    }

    #[test]
    fn clock_going_backwards_is_tolerated() {
        let mut l = TenantLimiter::new(10, 1);
        assert!(l.try_acquire("t", 1000).is_ok());
        // Earlier timestamp: elapsed saturates to 0, no panic, no credit.
        assert!(l.try_acquire("t", 500).is_err());
    }
}
