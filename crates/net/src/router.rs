//! `cdd-router`: a framed-protocol front that shards requests across N
//! `cdd-node` upstreams by **content key**.
//!
//! Routing is rendezvous (highest-random-weight) hashing of the
//! request's [`cdd_core::SolveRequest::content_key`] against each
//! upstream's address: every duplicate of a piece of work — regardless
//! of tenant, priority, or which client connection it arrived on — lands
//! on the same node, so that node's LRU solution cache and in-flight
//! coalescing deduplicate across the whole fleet. Tenant identity is
//! deliberately *not* part of the routing key (it is not part of the
//! content key either; see `core/src/solve.rs`).
//!
//! Failure handling follows the PR-6 retry discipline: when an upstream
//! connection dies, its in-flight requests are re-routed to the next
//! rendezvous choice among the surviving nodes after a bounded,
//! deterministically-jittered backoff keyed by the request's content key
//! and attempt number. A health thread pings dead upstreams and re-admits
//! them on reconnect (restarted nodes rejoin the hash automatically).
//! Because nodes are deterministic in (request → objective) and retries
//! carry identical work, the sorted outcome set a workload produces is
//! byte-identical whatever the shard count, routing, or mid-campaign node
//! deaths (DESIGN.md §13).

use crate::auth;
use crate::client as netclient;
use crate::frame::{
    self, read_frame, ErrorCode, Frame, NetError, NetRequest, NodeStats, StatsEnvelope,
    UpstreamHealth,
};
use cdd_metrics::{FlightHop, MetricsRegistry};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (port 0 = OS-assigned).
    pub addr: String,
    /// Upstream `cdd-node` addresses. Order is irrelevant to routing —
    /// rendezvous hashing weighs each upstream by its address string.
    pub upstreams: Vec<String>,
    /// Auth secret; must match the upstreams' so forwarded tokens verify.
    pub secret: String,
    /// Dead-upstream reconnect probe cadence, milliseconds.
    pub health_interval_ms: u64,
    /// Re-route attempts per request before answering `Unavailable`.
    pub max_attempts: u32,
    /// Base of the deterministic re-route backoff, milliseconds.
    pub backoff_base_ms: u64,
    /// Forward a client `Shutdown` frame to every upstream before
    /// draining the router itself.
    pub forward_shutdown: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            upstreams: Vec::new(),
            secret: auth::DEFAULT_SECRET.to_string(),
            health_interval_ms: 100,
            max_attempts: 8,
            backoff_base_ms: 10,
            forward_shutdown: true,
        }
    }
}

/// What a router run leaves behind.
#[derive(Debug)]
pub struct RouterReport {
    /// The router's `net_*` metrics (routed/reroute/shed counters).
    pub net_metrics: MetricsRegistry,
    /// Requests forwarded upstream (first routes, not retries).
    pub routed: u64,
    /// Re-routes performed after upstream deaths.
    pub reroutes: u64,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Rendezvous choice: the alive upstream whose `(content_key, addr)`
/// weight is highest. Pure in its inputs — every router instance (and
/// every restart) agrees on the winner.
#[must_use]
pub fn shard_for(content_key: u64, upstream_addrs: &[&str], alive: &[bool]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (i, addr) in upstream_addrs.iter().enumerate() {
        if !alive.get(i).copied().unwrap_or(false) {
            continue;
        }
        let w = mix(content_key, fnv64(addr.as_bytes()));
        if best.is_none_or(|(bw, _)| w > bw) {
            best = Some((w, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Deterministic re-route backoff (PR-6 discipline): exponential in the
/// attempt with a splitmix-style jitter keyed by the content key, pure in
/// `(base, key, attempt)`.
#[must_use]
pub fn backoff_ms(base: u64, key: u64, attempt: u32) -> u64 {
    let base = base.max(1);
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(6));
    exp + mix(key, u64::from(attempt)) % base
}

struct Upstream {
    addr: String,
    writer: Mutex<Option<TcpStream>>,
    alive: AtomicBool,
}

struct ClientConn {
    writer: Mutex<TcpStream>,
}

struct PendingRoute {
    client: Arc<ClientConn>,
    client_frame_id: u64,
    request: NetRequest,
    content_key: u64,
    upstream: usize,
    attempts: u32,
    /// Router-layer hop spans (route decision, re-route sweeps) for a
    /// sampled request; prepended to the node's flight record when the
    /// response passes back through. Empty for untraced requests.
    hops: Vec<FlightHop>,
}

struct RouterShared {
    cfg: RouterConfig,
    upstreams: Vec<Upstream>,
    pending: Mutex<BTreeMap<u64, PendingRoute>>,
    next_route_id: AtomicU64,
    stop: AtomicBool,
    metrics: Mutex<MetricsRegistry>,
    routed: AtomicU64,
    reroutes: AtomicU64,
}

impl RouterShared {
    fn alive_mask(&self) -> Vec<bool> {
        self.upstreams.iter().map(|u| u.alive.load(Ordering::SeqCst)).collect()
    }

    fn upstream_addrs(&self) -> Vec<&str> {
        self.upstreams.iter().map(|u| u.addr.as_str()).collect()
    }

    /// Send a frame to upstream `idx`; on failure mark it dead and
    /// trigger the re-route sweep for everything routed there.
    fn forward(self: &Arc<Self>, idx: usize, frame: &Frame) -> bool {
        let bytes = frame.encode();
        let ok = {
            let mut guard = self.upstreams[idx].writer.lock().expect("upstream writer lock");
            match guard.as_mut() {
                Some(w) => w.write_all(&bytes).and_then(|()| w.flush()).is_ok(),
                None => false,
            }
        };
        if !ok {
            self.mark_dead(idx);
        }
        ok
    }

    fn mark_dead(self: &Arc<Self>, idx: usize) {
        if !self.upstreams[idx].alive.swap(false, Ordering::SeqCst) {
            return; // already dead; someone else is sweeping
        }
        *self.upstreams[idx].writer.lock().expect("upstream writer lock") = None;
        self.metrics.lock().expect("router metrics lock").inc(
            "net_router_upstream_deaths_total",
            &[("upstream", &self.upstreams[idx].addr)],
            1,
        );
        // Sweep this upstream's in-flight requests onto survivors from a
        // dedicated thread (the caller may be the dying reader itself).
        let sh = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("cdd-router-sweep-{idx}"))
            .spawn(move || sh.reroute_orphans(idx))
            .expect("spawn reroute sweep");
    }

    fn reroute_orphans(self: &Arc<Self>, dead_idx: usize) {
        let orphans: Vec<u64> = {
            let pending = self.pending.lock().expect("router pending lock");
            pending
                .iter()
                .filter(|(_, p)| p.upstream == dead_idx)
                .map(|(rid, _)| *rid)
                .collect()
        };
        for rid in orphans {
            self.reroute_one(rid);
        }
    }

    /// Move one pending request to its next shard (or fail it to the
    /// client once attempts are exhausted).
    fn reroute_one(self: &Arc<Self>, rid: u64) {
        loop {
            let (key, attempts, client, client_frame_id) = {
                let mut pending = self.pending.lock().expect("router pending lock");
                let Some(p) = pending.get_mut(&rid) else { return };
                p.attempts += 1;
                (p.content_key, p.attempts, Arc::clone(&p.client), p.client_frame_id)
            };
            let delay = backoff_ms(self.cfg.backoff_base_ms, key, attempts);
            if attempts > self.cfg.max_attempts {
                let removed = self.pending.lock().expect("router pending lock").remove(&rid);
                if removed.is_some() {
                    send_to_client(
                        &client,
                        &Frame::Error(NetError {
                            id: client_frame_id,
                            code: ErrorCode::Unavailable,
                            detail: format!("no upstream available after {attempts} attempts"),
                            retry_after_ms: self.cfg.backoff_base_ms * 4,
                        }),
                    );
                    self.metrics
                        .lock()
                        .expect("router metrics lock")
                        .inc("net_router_unavailable_total", &[], 1);
                }
                return;
            }
            std::thread::sleep(Duration::from_millis(delay));
            let target = shard_for(key, &self.upstream_addrs(), &self.alive_mask());
            let Some(target) = target else { continue };
            let frame = {
                let mut pending = self.pending.lock().expect("router pending lock");
                let Some(p) = pending.get_mut(&rid) else { return };
                p.upstream = target;
                if p.request.trace.is_some_and(|t| t.sampled) {
                    p.hops.push(
                        // Shard is named by its index in the configured
                        // upstream list, not its address: OS-assigned
                        // ports vary run to run and would break the
                        // fleet trace's byte-stability contract.
                        FlightHop::new("router", "reroute", 0.0, 0.0)
                            .with_detail("attempt", attempts)
                            .with_detail("backoff_ms", delay)
                            .with_detail("shard", target),
                    );
                }
                let mut req = p.request.clone();
                req.id = rid;
                Frame::Request(req)
            };
            self.reroutes.fetch_add(1, Ordering::SeqCst);
            self.metrics.lock().expect("router metrics lock").inc(
                "net_router_reroutes_total",
                &[("upstream", &self.upstreams[target].addr)],
                1,
            );
            if self.forward(target, &frame) {
                return;
            }
            // Target died under us; loop and try the next survivor.
        }
    }

    /// (Re)connect upstream `idx` and spawn its reader thread.
    fn connect_upstream(self: &Arc<Self>, idx: usize) -> bool {
        let Ok(stream) = TcpStream::connect(&self.upstreams[idx].addr) else {
            return false;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let Ok(writer) = stream.try_clone() else { return false };
        *self.upstreams[idx].writer.lock().expect("upstream writer lock") = Some(writer);
        self.upstreams[idx].alive.store(true, Ordering::SeqCst);
        let sh = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("cdd-router-up-{idx}"))
            .spawn(move || sh.upstream_reader(idx, stream))
            .expect("spawn upstream reader");
        true
    }

    /// Pump replies from upstream `idx` back to the owning clients until
    /// the connection dies or the router stops.
    fn upstream_reader(self: &Arc<Self>, idx: usize, mut stream: TcpStream) {
        loop {
            match read_frame(&mut stream) {
                Ok(Some(Frame::Chunk(mut c))) => {
                    let dest = {
                        let pending = self.pending.lock().expect("router pending lock");
                        pending
                            .get(&c.id)
                            .map(|p| (Arc::clone(&p.client), p.client_frame_id))
                    };
                    if let Some((client, cid)) = dest {
                        c.id = cid;
                        send_to_client(&client, &Frame::Chunk(c));
                    }
                }
                Ok(Some(Frame::Response(mut r))) => {
                    let dest =
                        self.pending.lock().expect("router pending lock").remove(&r.id);
                    if let Some(p) = dest {
                        r.id = p.client_frame_id;
                        // Stitch the router's hops onto the front of the
                        // node's flight record (path order: the route
                        // decision happened before anything node-side).
                        if let Some(f) = r.flight.as_mut() {
                            if !p.hops.is_empty() {
                                let mut hops = p.hops;
                                hops.append(&mut f.hops);
                                f.hops = hops;
                            }
                        }
                        send_to_client(&p.client, &Frame::Response(r));
                    }
                }
                Ok(Some(Frame::Error(mut e))) => {
                    let dest =
                        self.pending.lock().expect("router pending lock").remove(&e.id);
                    if let Some(p) = dest {
                        e.id = p.client_frame_id;
                        send_to_client(&p.client, &Frame::Error(e));
                    }
                }
                // Pongs answer the health probes; anything else from a
                // node is noise we can safely drop.
                Ok(Some(_)) => {}
                Err(e) if frame::is_idle_timeout(&e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Ok(None) | Err(_) => {
                    if !self.stop.load(Ordering::SeqCst) {
                        self.mark_dead(idx);
                    }
                    return;
                }
            }
        }
    }
}

fn send_to_client(client: &ClientConn, frame: &Frame) {
    let bytes = frame.encode();
    let mut w = client.writer.lock().expect("client writer lock");
    let _ = w.write_all(&bytes).and_then(|()| w.flush());
}

/// A running router: bound address plus the drain handle.
pub struct RouterHandle {
    /// The address the listener actually bound.
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: std::thread::JoinHandle<RouterReport>,
}

impl RouterHandle {
    /// Stop the router without a `Shutdown` frame.
    pub fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the router to stop and return its report.
    pub fn join(self) -> RouterReport {
        self.accept.join().expect("router accept loop panicked")
    }
}

/// Bind `config.addr`, connect the upstreams, and route until stopped.
pub fn serve(config: RouterConfig) -> std::io::Result<RouterHandle> {
    assert!(!config.upstreams.is_empty(), "router needs at least one upstream");
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(RouterShared {
        upstreams: config
            .upstreams
            .iter()
            .map(|a| Upstream {
                addr: a.clone(),
                writer: Mutex::new(None),
                alive: AtomicBool::new(false),
            })
            .collect(),
        cfg: config,
        pending: Mutex::new(BTreeMap::new()),
        next_route_id: AtomicU64::new(1),
        stop: AtomicBool::new(false),
        metrics: Mutex::new(MetricsRegistry::new()),
        routed: AtomicU64::new(0),
        reroutes: AtomicU64::new(0),
    });
    for idx in 0..shared.upstreams.len() {
        shared.connect_upstream(idx);
    }
    // Health thread: probe live upstreams, reconnect dead ones (a
    // restarted node rejoins the rendezvous hash here).
    {
        let sh = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cdd-router-health".to_string())
            .spawn(move || {
                let mut nonce = 0u64;
                while !sh.stop.load(Ordering::SeqCst) {
                    nonce += 1;
                    for idx in 0..sh.upstreams.len() {
                        if sh.upstreams[idx].alive.load(Ordering::SeqCst) {
                            sh.forward(idx, &Frame::Ping { nonce });
                        } else {
                            sh.connect_upstream(idx);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(sh.cfg.health_interval_ms.max(10)));
                }
            })
            .expect("spawn health thread");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_in = Arc::clone(&stop);
    let accept = std::thread::Builder::new()
        .name("cdd-router-accept".to_string())
        .spawn(move || accept_loop(&listener, &shared, &stop_in))
        .expect("spawn router accept loop");
    Ok(RouterHandle { addr, stop, accept })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<RouterShared>,
    external_stop: &AtomicBool,
) -> RouterReport {
    let mut conns = Vec::new();
    loop {
        if external_stop.load(Ordering::SeqCst) {
            shared.stop.store(true, Ordering::SeqCst);
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let sh = Arc::clone(shared);
                let h = std::thread::Builder::new()
                    .name("cdd-router-conn".to_string())
                    .spawn(move || handle_client(&sh, stream))
                    .expect("spawn router connection thread");
                conns.push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in conns {
        let _ = h.join();
    }
    RouterReport {
        net_metrics: std::mem::take(&mut *shared.metrics.lock().expect("router metrics lock")),
        routed: shared.routed.load(Ordering::SeqCst),
        reroutes: shared.reroutes.load(Ordering::SeqCst),
    }
}

fn handle_client(shared: &Arc<RouterShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(writer) = stream.try_clone() else { return };
    let client = Arc::new(ClientConn { writer: Mutex::new(writer) });
    let mut reader = stream;
    loop {
        let fr = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(e) if frame::is_idle_timeout(&e) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => {
                send_to_client(
                    &client,
                    &Frame::Error(NetError {
                        id: 0,
                        code: ErrorCode::Protocol,
                        detail: e.to_string(),
                        retry_after_ms: 0,
                    }),
                );
                break;
            }
        };
        match fr {
            Frame::Request(req) => route_request(shared, &client, req),
            Frame::Ping { nonce } => send_to_client(&client, &Frame::Pong { nonce }),
            Frame::Stats { full } => {
                // Aggregate over currently-alive upstreams via fresh
                // short-lived connections (the persistent ones belong to
                // the reader threads). The health extension makes a
                // partial aggregate distinguishable from a full one: an
                // upstream that is marked dead — or that fails the stats
                // round-trip right now — counts as unreachable and its
                // (unknown) counters are simply absent from the sums.
                let mut agg = NodeStats::default();
                let mut health = UpstreamHealth::default();
                let mut registry = full.then(MetricsRegistry::new);
                for u in &shared.upstreams {
                    if !u.alive.load(Ordering::SeqCst) {
                        health.upstreams_unreachable += 1;
                        continue;
                    }
                    match netclient::stats_envelope(&u.addr, full) {
                        Ok(env) => {
                            health.upstreams_alive += 1;
                            agg = add_stats(agg, env.stats);
                            if let (Some(fleet), Some(up)) =
                                (registry.as_mut(), env.registry.as_ref())
                            {
                                fleet.merge_from(up);
                            }
                        }
                        Err(_) => health.upstreams_unreachable += 1,
                    }
                }
                if let Some(fleet) = registry.as_mut() {
                    // The router's own net_router_* series join the fleet
                    // view.
                    fleet.merge_from(&shared.metrics.lock().expect("router metrics lock"));
                }
                let mut envelope = StatsEnvelope::flat(agg);
                envelope.health = Some(health);
                envelope.registry = registry;
                send_to_client(&client, &Frame::StatsReply(envelope));
            }
            Frame::Shutdown => {
                if shared.cfg.forward_shutdown {
                    for u in &shared.upstreams {
                        if u.alive.load(Ordering::SeqCst) {
                            let _ = netclient::shutdown(&u.addr);
                        }
                    }
                }
                shared.stop.store(true, Ordering::SeqCst);
                send_to_client(&client, &Frame::Shutdown);
                break;
            }
            other => send_to_client(
                &client,
                &Frame::Error(NetError {
                    id: 0,
                    code: ErrorCode::Protocol,
                    detail: format!("unexpected {} frame from client", other.label()),
                    retry_after_ms: 0,
                }),
            ),
        }
    }
}

fn add_stats(a: NodeStats, b: NodeStats) -> NodeStats {
    NodeStats {
        submitted: a.submitted + b.submitted,
        completed: a.completed + b.completed,
        failed: a.failed + b.failed,
        expired: a.expired + b.expired,
        degraded: a.degraded + b.degraded,
        rejected: a.rejected + b.rejected,
        retried: a.retried + b.retried,
        restarts: a.restarts + b.restarts,
        queue_depth: a.queue_depth + b.queue_depth,
        cache_hits: a.cache_hits + b.cache_hits,
        cache_misses: a.cache_misses + b.cache_misses,
        coalesced: a.coalesced + b.coalesced,
    }
}

fn route_request(shared: &Arc<RouterShared>, client: &Arc<ClientConn>, req: NetRequest) {
    // Authenticate at the edge; the node re-verifies with the same secret.
    if !auth::verify(&req.tenant, &req.token, &shared.cfg.secret) {
        send_to_client(
            client,
            &Frame::Error(NetError {
                id: req.id,
                code: ErrorCode::Auth,
                detail: format!("bad token for tenant {:?}", req.tenant),
                retry_after_ms: 0,
            }),
        );
        return;
    }
    // Materialize to compute the true content key — the same bytes the
    // node's cache will key on.
    let content_key = match req.to_solve_request() {
        Ok(r) => r.content_key(),
        Err(e) => {
            send_to_client(
                client,
                &Frame::Error(NetError {
                    id: req.id,
                    code: ErrorCode::Protocol,
                    detail: e.to_string(),
                    retry_after_ms: 0,
                }),
            );
            return;
        }
    };
    let Some(target) = shard_for(content_key, &shared.upstream_addrs(), &shared.alive_mask())
    else {
        send_to_client(
            client,
            &Frame::Error(NetError {
                id: req.id,
                code: ErrorCode::Unavailable,
                detail: "no upstream alive".to_string(),
                retry_after_ms: shared.cfg.backoff_base_ms * 4,
            }),
        );
        shared.metrics.lock().expect("router metrics lock").inc(
            "net_router_unavailable_total",
            &[],
            1,
        );
        return;
    };
    let rid = shared.next_route_id.fetch_add(1, Ordering::SeqCst);
    // The route decision is a logical hop (modeled 0): its detail — which
    // shard rendezvous hashing picked — is deterministic in the content
    // key and the upstream set. The shard is named by its index in the
    // configured upstream list (addresses carry OS-assigned ports, which
    // would break trace byte-stability across runs).
    let hops = if req.trace.is_some_and(|t| t.sampled) {
        vec![FlightHop::new("router", "route", 0.0, 0.0).with_detail("shard", target)]
    } else {
        Vec::new()
    };
    let mut fwd = req.clone();
    fwd.id = rid;
    shared.pending.lock().expect("router pending lock").insert(
        rid,
        PendingRoute {
            client: Arc::clone(client),
            client_frame_id: req.id,
            request: req,
            content_key,
            upstream: target,
            attempts: 1,
            hops,
        },
    );
    shared.routed.fetch_add(1, Ordering::SeqCst);
    shared.metrics.lock().expect("router metrics lock").inc(
        "net_router_routed_total",
        &[("upstream", &shared.upstreams[target].addr)],
        1,
    );
    if !shared.forward(target, &Frame::Request(fwd)) {
        // forward() marked the target dead and kicked off the orphan
        // sweep, which will pick this request up; nothing else to do.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_stable_and_minimal_on_death() {
        let addrs = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"];
        let all = [true, true, true];
        let keys: Vec<u64> = (0..200u64).map(|i| mix(i, 0xABCD)).collect();
        let full: Vec<usize> =
            keys.iter().map(|&k| shard_for(k, &addrs, &all).unwrap()).collect();
        // Deterministic.
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(shard_for(k, &addrs, &all).unwrap(), full[i]);
        }
        // Spread: every node owns some keys.
        for node in 0..3 {
            assert!(full.contains(&node), "node {node} owns no keys");
        }
        // Kill node 1: only its keys move, others stay put.
        let degraded = [true, false, true];
        for (i, &k) in keys.iter().enumerate() {
            let s = shard_for(k, &addrs, &degraded).unwrap();
            if full[i] != 1 {
                assert_eq!(s, full[i], "key {k:#x} moved although its shard survived");
            } else {
                assert_ne!(s, 1);
            }
        }
        // No nodes alive.
        assert_eq!(shard_for(7, &addrs, &[false, false, false]), None);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let a = backoff_ms(10, 42, 1);
        assert_eq!(a, backoff_ms(10, 42, 1), "pure in (base, key, attempt)");
        assert!((10..20).contains(&a), "attempt 1: base + jitter < 2*base, got {a}");
        let late = backoff_ms(10, 42, 20);
        assert!(late <= 10 * 64 + 9, "exponent is capped, got {late}");
        assert!(backoff_ms(10, 42, 3) >= 40, "exponential growth");
        assert_ne!(backoff_ms(10, 1, 2), backoff_ms(10, 2, 2), "jitter is keyed");
    }
}
