//! `cdd-node`: a [`SolverService`] behind a framed TCP listener.
//!
//! Thread-per-connection, no async runtime (DESIGN.md §13): the accept
//! loop hands each connection to a reader thread; each accepted request
//! spawns a short-lived waiter thread that blocks on
//! [`SolverService::wait`] and streams the result back through a shared
//! writer lock, so responses for a connection interleave at frame
//! granularity and a slow campaign never blocks the connection's other
//! replies. A `Shutdown` frame drains deterministically: stop accepting,
//! finish every admitted request, then [`SolverService::shutdown`] joins
//! the supervisor and workers.
//!
//! All `net_*` metrics live in the node's own registry, separate from the
//! service's `service_*`/`timing_*` namespaces: per-tenant admitted and
//! shed counters are deterministic for a fixed workload *and* arrival
//! order, frame-size and per-connection histograms are traffic-shaped.

use crate::auth;
use crate::frame::{
    self, chunk_sequence, read_frame, ErrorCode, Frame, NetError, NetRequest, NetResponse,
    NodeStats, StatsEnvelope,
};
use crate::limiter::TenantLimiter;
use cdd_metrics::{connection_requests_buckets, frame_bytes_buckets, FlightHop, MetricsRegistry};
use cdd_service::{ServiceConfig, ServiceReport, SolverService};
use cdd_core::SuiteError;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Bind address; port 0 asks the OS for a free port (the bound
    /// address is reported on the returned handle).
    pub addr: String,
    /// The wrapped solver service's configuration.
    pub service: ServiceConfig,
    /// Auth secret tokens are verified against.
    pub secret: String,
    /// Per-tenant admission rate, requests/second (0 disables limiting).
    pub rate_per_sec: u64,
    /// Per-tenant burst allowance.
    pub burst: u64,
    /// Label this node stamps on every flight record it ships (and on its
    /// slow-log lines). Fleet traces group by it, so give each node in a
    /// fleet a distinct label.
    pub label: String,
    /// Append threshold-gated slow-request JSONL lines to this file (only
    /// traced requests can be logged — the line is the flight record's
    /// latency attribution). `None` disables the log.
    pub slow_log: Option<PathBuf>,
    /// Wall-clock latency, milliseconds, at or above which a traced
    /// request is written to `slow_log`.
    pub slow_threshold_ms: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            addr: "127.0.0.1:0".to_string(),
            service: ServiceConfig::default(),
            secret: auth::DEFAULT_SECRET.to_string(),
            rate_per_sec: 0,
            burst: 8,
            label: "node".to_string(),
            slow_log: None,
            slow_threshold_ms: 0,
        }
    }
}

/// Everything a node run leaves behind.
#[derive(Debug)]
pub struct NodeReport {
    /// The wrapped service's final report (counters, cache, devices,
    /// folded `service_*`/`timing_*` metrics).
    pub service: ServiceReport,
    /// The node's own `net_*` metrics registry.
    pub net_metrics: MetricsRegistry,
    /// Connections accepted over the node's lifetime.
    pub connections: u64,
}

struct NodeShared {
    service: SolverService,
    limiter: Mutex<TenantLimiter>,
    metrics: Mutex<MetricsRegistry>,
    secret: String,
    label: String,
    slow_log: Option<Mutex<std::fs::File>>,
    slow_threshold_ms: u64,
    stop: AtomicBool,
    connections: AtomicU64,
    started: Instant,
}

/// The node's `net_*` registry with its deterministic `# HELP` table
/// pre-installed (descriptions render only for series that exist).
fn net_registry() -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    for (name, help) in [
        ("net_frames_total", "Frames read and written, by direction and type."),
        ("net_frame_bytes", "Encoded frame sizes, bytes, by direction."),
        ("net_requests_total", "Request frames received, per tenant."),
        ("net_admitted_total", "Requests admitted into the service, per tenant."),
        ("net_shed_total", "Requests shed before admission, per tenant and reason."),
        ("net_connection_requests", "Requests handled per connection."),
    ] {
        m.describe(name, help);
    }
    m
}

impl NodeShared {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn count_frame(&self, dir: &str, f: &Frame, bytes: usize) {
        let mut m = self.metrics.lock().expect("net metrics lock");
        m.inc("net_frames_total", &[("dir", dir), ("type", f.label())], 1);
        #[allow(clippy::cast_precision_loss)]
        m.observe("net_frame_bytes", &[("dir", dir)], bytes as f64, frame_bytes_buckets());
    }
}

/// A running node: its bound address plus the join handle for the accept
/// loop (which returns the final [`NodeReport`] once drained).
pub struct NodeHandle {
    /// The address the listener actually bound (resolves port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: std::thread::JoinHandle<NodeReport>,
}

impl NodeHandle {
    /// Ask the accept loop to stop without a `Shutdown` frame (used by
    /// embedders; remote peers send the frame instead).
    pub fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the node to drain and return its report.
    pub fn join(self) -> NodeReport {
        self.accept.join().expect("node accept loop panicked")
    }
}

/// Bind `config.addr` and serve until a `Shutdown` frame (or
/// [`NodeHandle::begin_shutdown`]) stops the accept loop; the returned
/// handle reports the bound address immediately.
pub fn serve(config: NodeConfig) -> std::io::Result<NodeHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let slow_log = match &config.slow_log {
        Some(path) => Some(Mutex::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        )),
        None => None,
    };
    let shared = Arc::new(NodeShared {
        service: SolverService::start(config.service),
        limiter: Mutex::new(TenantLimiter::new(config.rate_per_sec, config.burst)),
        metrics: Mutex::new(net_registry()),
        secret: config.secret,
        label: config.label,
        slow_log,
        slow_threshold_ms: config.slow_threshold_ms,
        stop: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        started: Instant::now(),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let stop_in = Arc::clone(&stop);
    let accept = std::thread::Builder::new()
        .name("cdd-node-accept".to_string())
        .spawn(move || accept_loop(&listener, shared, &stop_in))
        .expect("spawn accept loop");
    Ok(NodeHandle { addr, stop, accept })
}

fn accept_loop(
    listener: &TcpListener,
    shared: Arc<NodeShared>,
    external_stop: &AtomicBool,
) -> NodeReport {
    let mut conns = Vec::new();
    loop {
        if external_stop.load(Ordering::SeqCst) {
            shared.stop.store(true, Ordering::SeqCst);
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let id = shared.connections.fetch_add(1, Ordering::SeqCst);
                let sh = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name(format!("cdd-node-conn-{id}"))
                    .spawn(move || handle_connection(&sh, stream))
                    .expect("spawn connection thread");
                conns.push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in conns {
        let _ = h.join();
    }
    // Drain: every admitted request completes before the service joins
    // its workers, so a restart never strands work.
    while !shared.service.idle() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let connections = shared.connections.load(Ordering::SeqCst);
    // Every connection (and waiter) thread has been joined, so this node
    // holds the last reference.
    let sh = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("connection threads still hold the node state"));
    NodeReport {
        service: sh.service.shutdown(),
        net_metrics: sh.metrics.into_inner().expect("net metrics lock"),
        connections,
    }
}

/// Map a service-side failure to its wire error code and retry hint.
fn map_error(err: &SuiteError) -> (ErrorCode, u64) {
    match err {
        SuiteError::Rejected { .. } => (ErrorCode::Rejected, 25),
        SuiteError::DeadlineExceeded { .. } => (ErrorCode::DeadlineExceeded, 0),
        SuiteError::RateLimited { retry_after_ms, .. } => (ErrorCode::RateLimited, *retry_after_ms),
        SuiteError::Protocol { .. } => (ErrorCode::Protocol, 0),
        _ => (ErrorCode::Internal, 0),
    }
}

fn send(shared: &NodeShared, writer: &Mutex<TcpStream>, frame: &Frame) {
    let bytes = frame.encode();
    shared.count_frame("out", frame, bytes.len());
    let mut w = writer.lock().expect("connection writer lock");
    let _ = w.write_all(&bytes).and_then(|()| w.flush());
}

fn handle_connection(shared: &Arc<NodeShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    }));
    let mut reader = stream;
    let mut waiters: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut requests_on_conn: u64 = 0;

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(e) if frame::is_idle_timeout(&e) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => {
                // Framing is damaged; report once and close.
                send(
                    shared,
                    &writer,
                    &Frame::Error(NetError {
                        id: 0,
                        code: ErrorCode::Protocol,
                        detail: e.to_string(),
                        retry_after_ms: 0,
                    }),
                );
                break;
            }
        };
        shared.count_frame("in", &frame, frame.encode().len());
        match frame {
            Frame::Request(req) => {
                requests_on_conn += 1;
                handle_request(shared, &writer, req, &mut waiters);
            }
            Frame::Ping { nonce } => send(shared, &writer, &Frame::Pong { nonce }),
            Frame::Stats { full } => {
                let snap = shared.service.snapshot();
                let mut envelope = StatsEnvelope::flat(NodeStats {
                    submitted: snap.submitted,
                    completed: snap.completed,
                    failed: snap.failed,
                    expired: snap.expired,
                    degraded: snap.degraded,
                    rejected: snap.rejected,
                    retried: snap.retried,
                    restarts: snap.restarts,
                    queue_depth: snap.queue_depth as u64,
                    cache_hits: snap.cache.hits,
                    cache_misses: snap.cache.misses,
                    coalesced: snap.cache.coalesced,
                });
                if full {
                    // The full registry: the service's lifetime fold plus
                    // the node's own net_* namespace, one merged snapshot.
                    let mut registry = shared.service.metrics_snapshot();
                    registry.merge_from(&shared.metrics.lock().expect("net metrics lock"));
                    envelope.registry = Some(registry);
                }
                send(shared, &writer, &Frame::StatsReply(envelope));
            }
            Frame::Shutdown => {
                shared.stop.store(true, Ordering::SeqCst);
                // Echoed back as the acknowledgement: the node closes the
                // connection after draining this connection's waiters.
                send(shared, &writer, &Frame::Shutdown);
                break;
            }
            other => send(
                shared,
                &writer,
                &Frame::Error(NetError {
                    id: 0,
                    code: ErrorCode::Protocol,
                    detail: format!("unexpected {} frame from client", other.label()),
                    retry_after_ms: 0,
                }),
            ),
        }
    }

    for h in waiters {
        let _ = h.join();
    }
    #[allow(clippy::cast_precision_loss)]
    shared.metrics.lock().expect("net metrics lock").observe(
        "net_connection_requests",
        &[],
        requests_on_conn as f64,
        connection_requests_buckets(),
    );
}

fn handle_request(
    shared: &Arc<NodeShared>,
    writer: &Arc<Mutex<TcpStream>>,
    req: NetRequest,
    waiters: &mut Vec<std::thread::JoinHandle<()>>,
) {
    let tenant = req.tenant.clone();
    shared
        .metrics
        .lock()
        .expect("net metrics lock")
        .inc("net_requests_total", &[("tenant", &tenant)], 1);

    let shed = |code: ErrorCode, detail: String, retry_after_ms: u64| {
        shared.metrics.lock().expect("net metrics lock").inc(
            "net_shed_total",
            &[("tenant", &tenant), ("reason", code.label())],
            1,
        );
        send(
            shared,
            writer,
            &Frame::Error(NetError { id: req.id, code, detail, retry_after_ms }),
        );
    };

    // Node-layer hop spans for the flight record: each admission step is a
    // logical decision (modeled 0), wall-timed for the slow log only.
    // Recorded only for sampled requests, so untraced traffic pays nothing.
    let sampled = req.trace.is_some_and(|t| t.sampled);
    let mut node_hops: Vec<FlightHop> = Vec::new();
    let mut step = Instant::now();

    if !auth::verify(&req.tenant, &req.token, &shared.secret) {
        shed(ErrorCode::Auth, format!("bad token for tenant {:?}", req.tenant), 0);
        return;
    }
    if sampled {
        node_hops.push(
            FlightHop::new("node", "auth", 0.0, step.elapsed().as_secs_f64() * 1e6)
                .with_detail("tenant", &tenant),
        );
        step = Instant::now();
    }
    let now = shared.now_ms();
    if let Err(hint) =
        shared.limiter.lock().expect("limiter lock").try_acquire(&req.tenant, now)
    {
        shed(
            ErrorCode::RateLimited,
            format!("tenant {:?} over rate budget", req.tenant),
            hint.retry_after_ms,
        );
        return;
    }
    if sampled {
        node_hops.push(FlightHop::new("node", "limit", 0.0, step.elapsed().as_secs_f64() * 1e6));
        step = Instant::now();
    }
    let solve_req = match req.to_solve_request() {
        Ok(r) => r,
        Err(e) => {
            shed(ErrorCode::Protocol, e.to_string(), 0);
            return;
        }
    };
    if sampled {
        node_hops
            .push(FlightHop::new("node", "validate", 0.0, step.elapsed().as_secs_f64() * 1e6));
    }
    match shared.service.submit(solve_req) {
        Ok(ticket) => {
            shared
                .metrics
                .lock()
                .expect("net metrics lock")
                .inc("net_admitted_total", &[("tenant", &tenant)], 1);
            let sh = Arc::clone(shared);
            let wr = Arc::clone(writer);
            let id = req.id;
            let h = std::thread::Builder::new()
                .name(format!("cdd-node-wait-{ticket}"))
                .spawn(move || {
                    let outcome = sh.service.wait(ticket);
                    // Stitch the flight: node hops first (they happened
                    // first), then the service-side hops, stamped with this
                    // node's label.
                    let flight = outcome.flight.map(|mut f| {
                        f.node = sh.label.clone();
                        let mut hops = node_hops;
                        hops.append(&mut f.hops);
                        f.hops = hops;
                        f
                    });
                    if let (Some(f), Some(log)) = (&flight, &sh.slow_log) {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let wall_ms = outcome.wall_ms.max(0.0) as u64;
                        if wall_ms >= sh.slow_threshold_ms {
                            let line = f.slow_log_json(wall_ms, sh.slow_threshold_ms);
                            let mut w = log.lock().expect("slow log lock");
                            let _ = writeln!(w, "{line}");
                        }
                    }
                    match outcome.result {
                        Ok(out) => {
                            for chunk in chunk_sequence(id, out.sequence.as_slice()) {
                                send(&sh, &wr, &Frame::Chunk(chunk));
                            }
                            send(
                                &sh,
                                &wr,
                                &Frame::Response(NetResponse {
                                    id,
                                    objective: out.objective,
                                    modeled_seconds: out.modeled_seconds,
                                    evaluations: out.evaluations,
                                    cache_hit: out.cache_hit,
                                    device: out.device.map(|d| d as u64),
                                    cpu_fallback: out.cpu_fallback,
                                    degraded: out.degraded,
                                    wall_ms: outcome.wall_ms,
                                    flight,
                                }),
                            );
                        }
                        Err(e) => {
                            let (code, retry) = map_error(&e);
                            send(
                                &sh,
                                &wr,
                                &Frame::Error(NetError {
                                    id,
                                    code,
                                    detail: e.to_string(),
                                    retry_after_ms: retry,
                                }),
                            );
                        }
                    }
                })
                .expect("spawn waiter thread");
            waiters.push(h);
        }
        Err(e) => {
            let (code, retry) = map_error(&e);
            shed(code, e.to_string(), retry);
        }
    }
}
