//! # cdd-net
//!
//! The solver service's network front door (DESIGN.md §13): a
//! length-prefixed framed protocol over plain TCP — `std::net` and
//! thread-per-connection, no async runtime — carrying versioned
//! request/response/stream-chunk/error frames with per-tenant auth
//! tokens, priority classes, and deadlines that map directly onto the
//! service's admission control.
//!
//! Three roles build on the same [`frame`] vocabulary:
//!
//! * [`node`] — `cdd-node`, a [`cdd_service::SolverService`] behind a
//!   listener with streaming result delivery and per-tenant token-bucket
//!   rate limits ([`limiter`]);
//! * [`router`] — `cdd-router`, fronting N nodes and sharding every
//!   request by its `content_key` via rendezvous hashing, so node-local
//!   LRU caches and in-flight coalescing deduplicate across the fleet;
//!   dead upstreams are health-checked, their in-flight work re-routed to
//!   the surviving shards with deterministic backoff;
//! * [`client`] — a synchronous windowed client that absorbs the
//!   protocol's flow control (rate limits, rejections, reconnects) so
//!   workloads always resolve to a complete outcome set.
//!
//! The determinism contract extends across the network path: for a fixed
//! workload, the sorted `(request, fitness, degraded)` outcome set —
//! [`client::sorted_outcome_csv`] — is byte-identical regardless of shard
//! count, routing, connection multiplexing, or mid-campaign node
//! kill/restart. Only wall-clock-shaped numbers (latency, frame-size
//! histograms) may differ between runs.

pub mod auth;
pub mod client;
pub mod frame;
pub mod limiter;
pub mod node;
pub mod router;
pub mod snapshot;
pub mod wire;

pub use client::{run_workload, run_workload_sharded, sorted_outcome_csv, ClientOutcome};
pub use frame::{
    read_frame, write_frame, ErrorCode, Frame, NetError, NetRequest, NetResponse, NodeStats,
    StatsEnvelope, StreamChunk, UpstreamHealth, WorkSpec, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use snapshot::{decode_flight, decode_registry, encode_flight, encode_registry};
pub use limiter::TenantLimiter;
pub use node::{serve as serve_node, NodeConfig, NodeHandle, NodeReport};
pub use router::{serve as serve_router, RouterConfig, RouterHandle, RouterReport};
