//! Synchronous framed-protocol client.
//!
//! [`run_workload`] drives one TCP connection with a bounded in-flight
//! window, reassembles streamed sequence chunks, and absorbs the
//! protocol's flow-control verbs so callers see only terminal outcomes:
//! `RateLimited`/`Rejected` replies are resubmitted after the server's
//! retry hint, `Unavailable` retries with exponential backoff, and a
//! dropped connection reconnects and resubmits everything still in
//! flight. Because every retry carries the identical work, the set of
//! `(request, fitness, degraded)` outcomes a workload produces is
//! independent of how often the transport stuttered — the client is part
//! of the determinism contract, not an exception to it (DESIGN.md §13).
//!
//! [`run_workload_sharded`] fans the same discipline out over several
//! connections (round-robin split), which is how the tests demonstrate
//! cross-connection and cross-node cache deduplication.

use crate::auth;
use crate::frame::{
    assemble_sequence, read_frame, write_frame, ErrorCode, Frame, NetError, NetRequest,
    NetResponse, NodeStats, StatsEnvelope, WorkSpec,
};
use cdd_bench::workload::WorkloadEntry;
use cdd_core::{SuiteError, TraceContext};
use cdd_metrics::FlightRecord;
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

/// Give-up threshold for one entry: reconnects, rate-limit waits and
/// re-routes all count.
pub const MAX_ATTEMPTS: u32 = 64;

/// Client-side behavior switches beyond the transport basics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientOptions {
    /// Attach a sampled [`TraceContext`] to every request and collect the
    /// per-request [`FlightRecord`]s the fleet returns. Trace ids derive
    /// from workload entry positions, so they are stable across runs,
    /// resubmissions and reconnects — which is what keeps traced
    /// artifacts byte-comparable.
    pub trace: bool,
}

/// Terminal result of one workload entry driven through the socket.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// The submitted work.
    pub entry: WorkloadEntry,
    /// Terminal response, if the request succeeded.
    pub response: Option<NetResponse>,
    /// Reassembled job sequence (empty when `response` is `None`).
    pub sequence: Vec<u32>,
    /// Terminal error, if the request failed permanently.
    pub error: Option<NetError>,
    /// Submissions performed (1 = first try succeeded).
    pub attempts: u32,
}

impl ClientOutcome {
    /// One line of the sorted outcome CSV (see [`sorted_outcome_csv`]).
    #[must_use]
    pub fn csv_row(&self) -> String {
        let (kind, h) = match self.entry.id.h {
            Some(h) => ("cdd", format!("{h}")),
            None => ("ucddcp", "-".to_string()),
        };
        let (objective, degraded) = match &self.response {
            Some(r) => (r.objective.to_string(), r.degraded.to_string()),
            None => ("error".to_string(), "-".to_string()),
        };
        format!(
            "{kind},{},{},{h},{},{},{},{},{},{objective},{degraded}",
            self.entry.id.n,
            self.entry.id.k,
            self.entry.algorithm,
            self.entry.iterations,
            self.entry.seed,
            self.entry.tenant,
            self.entry.priority,
        )
    }
}

/// The determinism artifact: every outcome as a CSV row, sorted, with a
/// header. Byte-identical across shard counts, routings and node
/// restarts for a fixed workload (wall-clock columns are deliberately
/// excluded).
#[must_use]
pub fn sorted_outcome_csv(outcomes: &[ClientOutcome]) -> String {
    let mut rows: Vec<String> = outcomes.iter().map(ClientOutcome::csv_row).collect();
    rows.sort();
    let mut out =
        String::from("kind,n,k,h,algorithm,iterations,seed,tenant,priority,objective,degraded\n");
    for r in &rows {
        out.push_str(r);
        out.push('\n');
    }
    out
}

fn connect(addr: &str) -> Result<TcpStream, SuiteError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| SuiteError::protocol(format!("connect {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

fn entry_request(
    id: u64,
    entry: &WorkloadEntry,
    secret: &str,
    trace: Option<TraceContext>,
) -> NetRequest {
    NetRequest {
        id,
        tenant: entry.tenant.clone(),
        token: auth::token_for(&entry.tenant, secret),
        priority: entry.priority,
        deadline_ms: None,
        algorithm: entry.algorithm,
        iterations: entry.iterations,
        seed: entry.seed,
        work: WorkSpec::ById {
            n: entry.id.n as u64,
            k: entry.id.k,
            h: entry.id.h,
        },
        trace,
    }
}

struct Pending {
    entry_idx: usize,
    chunks: Vec<u8>,
    attempts: u32,
}

/// Drive `entries` through one connection to `addr` with at most
/// `window` requests in flight. Returns one outcome per entry, in entry
/// order.
pub fn run_workload(
    addr: &str,
    entries: &[WorkloadEntry],
    window: usize,
    secret: &str,
) -> Result<Vec<ClientOutcome>, SuiteError> {
    run_workload_opts(addr, entries, window, secret, ClientOptions::default())
}

/// [`run_workload`] with behavior switches (request tracing).
pub fn run_workload_opts(
    addr: &str,
    entries: &[WorkloadEntry],
    window: usize,
    secret: &str,
    opts: ClientOptions,
) -> Result<Vec<ClientOutcome>, SuiteError> {
    let indexed: Vec<(u64, WorkloadEntry)> =
        entries.iter().cloned().enumerate().map(|(i, e)| (i as u64, e)).collect();
    run_indexed(addr, &indexed, window, secret, opts)
}

/// The workhorse: entries tagged with their *global* workload position,
/// which seeds the trace id (`position + 1`) — globally unique across
/// sharded connections and stable across runs, resubmissions and
/// reconnects.
fn run_indexed(
    addr: &str,
    entries: &[(u64, WorkloadEntry)],
    window: usize,
    secret: &str,
    opts: ClientOptions,
) -> Result<Vec<ClientOutcome>, SuiteError> {
    let window = window.max(1);
    let mut outcomes: Vec<Option<ClientOutcome>> = entries.iter().map(|_| None).collect();
    if entries.is_empty() {
        return Ok(Vec::new());
    }
    let mut stream = connect(addr)?;
    let mut next_id: u64 = 1;
    let mut next_entry: usize = 0;
    // BTreeMap: resubmission after a reconnect happens in a deterministic
    // (id) order.
    let mut pending: BTreeMap<u64, Pending> = BTreeMap::new();
    let mut reconnects: u32 = 0;

    let submit = |stream: &mut TcpStream,
                  pending: &mut BTreeMap<u64, Pending>,
                  next_id: &mut u64,
                  entry_idx: usize,
                  attempts: u32|
     -> Result<(), SuiteError> {
        let id = *next_id;
        *next_id += 1;
        let (global_idx, entry) = &entries[entry_idx];
        let trace = opts.trace.then(|| TraceContext::root(global_idx + 1));
        let req = entry_request(id, entry, secret, trace);
        write_frame(stream, &Frame::Request(req))?;
        pending.insert(id, Pending { entry_idx, chunks: Vec::new(), attempts: attempts + 1 });
        Ok(())
    };

    while next_entry < window.min(entries.len()) {
        submit(&mut stream, &mut pending, &mut next_id, next_entry, 0)?;
        next_entry += 1;
    }

    while !pending.is_empty() || next_entry < entries.len() {
        // Top the window back up (entries freed by completed requests).
        while pending.len() < window && next_entry < entries.len() {
            submit(&mut stream, &mut pending, &mut next_id, next_entry, 0)?;
            next_entry += 1;
        }
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => {
                // Connection lost: reconnect and resubmit everything that
                // was in flight. Identical work ⇒ identical outcomes, so
                // the retry is invisible in the outcome set.
                reconnects += 1;
                if reconnects > MAX_ATTEMPTS {
                    return Err(SuiteError::protocol(format!(
                        "gave up after {reconnects} reconnects to {addr}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(u64::from(reconnects.min(20)) * 25));
                let Ok(s) = connect(addr) else { continue };
                stream = s;
                let inflight: Vec<(usize, u32)> =
                    pending.values().map(|p| (p.entry_idx, p.attempts)).collect();
                pending.clear();
                for (idx, attempts) in inflight {
                    submit(&mut stream, &mut pending, &mut next_id, idx, attempts)?;
                }
                continue;
            }
        };
        match frame {
            Frame::Chunk(c) => {
                if let Some(p) = pending.get_mut(&c.id) {
                    if c.index == 0 {
                        // A re-routed stream restarts from the top.
                        p.chunks.clear();
                    }
                    p.chunks.extend_from_slice(&c.data);
                }
            }
            Frame::Response(r) => {
                if let Some(p) = pending.remove(&r.id) {
                    let sequence = assemble_sequence(&p.chunks)?;
                    outcomes[p.entry_idx] = Some(ClientOutcome {
                        entry: entries[p.entry_idx].1.clone(),
                        response: Some(r),
                        sequence,
                        error: None,
                        attempts: p.attempts,
                    });
                }
            }
            Frame::Error(e) => {
                let Some(p) = pending.remove(&e.id) else { continue };
                let retryable = matches!(
                    e.code,
                    ErrorCode::RateLimited | ErrorCode::Rejected | ErrorCode::Unavailable
                );
                if retryable && p.attempts < MAX_ATTEMPTS {
                    let backoff = e
                        .retry_after_ms
                        .max(u64::from(p.attempts).saturating_mul(10))
                        .min(2000);
                    std::thread::sleep(Duration::from_millis(backoff.max(1)));
                    submit(&mut stream, &mut pending, &mut next_id, p.entry_idx, p.attempts)?;
                } else {
                    outcomes[p.entry_idx] = Some(ClientOutcome {
                        entry: entries[p.entry_idx].1.clone(),
                        response: None,
                        sequence: Vec::new(),
                        error: Some(e),
                        attempts: p.attempts,
                    });
                }
            }
            // Pongs / stats replies on this connection are not ours to
            // consume mid-workload; ignore.
            _ => {}
        }
    }
    Ok(outcomes.into_iter().map(|o| o.expect("every entry resolved")).collect())
}

/// Split `entries` round-robin over `connections` independent sockets
/// (each on its own thread) and merge the outcomes back into entry
/// order. Demonstrates cross-connection coalescing/caching: duplicate
/// content keys arriving on different sockets must still hit the same
/// node's cache (through the router's content-key sharding).
pub fn run_workload_sharded(
    addr: &str,
    entries: &[WorkloadEntry],
    connections: usize,
    window: usize,
    secret: &str,
) -> Result<Vec<ClientOutcome>, SuiteError> {
    run_workload_sharded_opts(addr, entries, connections, window, secret, ClientOptions::default())
}

/// [`run_workload_sharded`] with behavior switches. Trace ids keep their
/// *global* workload positions through the round-robin split, so a traced
/// sharded run produces the same flight-record set as a single-connection
/// run of the same workload.
pub fn run_workload_sharded_opts(
    addr: &str,
    entries: &[WorkloadEntry],
    connections: usize,
    window: usize,
    secret: &str,
    opts: ClientOptions,
) -> Result<Vec<ClientOutcome>, SuiteError> {
    let connections = connections.max(1);
    if connections == 1 {
        return run_workload_opts(addr, entries, window, secret, opts);
    }
    let mut slots: Vec<Vec<(usize, WorkloadEntry)>> = vec![Vec::new(); connections];
    for (i, e) in entries.iter().enumerate() {
        slots[i % connections].push((i, e.clone()));
    }
    let results: Vec<Result<Vec<(usize, ClientOutcome)>, SuiteError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = slots
                .iter()
                .map(|slot| {
                    scope.spawn(move || {
                        let local: Vec<(u64, WorkloadEntry)> =
                            slot.iter().map(|(i, e)| (*i as u64, e.clone())).collect();
                        let outs = run_indexed(addr, &local, window, secret, opts)?;
                        Ok(slot.iter().map(|(i, _)| *i).zip(outs).collect())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
        });
    let mut merged: Vec<Option<ClientOutcome>> = entries.iter().map(|_| None).collect();
    for r in results {
        for (i, o) in r? {
            merged[i] = Some(o);
        }
    }
    Ok(merged.into_iter().map(|o| o.expect("every entry resolved")).collect())
}

/// Round-trip a `Ping` and return whether the matching `Pong` came back.
pub fn ping(addr: &str, nonce: u64) -> Result<bool, SuiteError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &Frame::Ping { nonce })?;
    match read_frame(&mut stream)? {
        Some(Frame::Pong { nonce: n }) => Ok(n == nonce),
        other => Err(SuiteError::protocol(format!("expected pong, got {other:?}"))),
    }
}

/// Fetch a live counter snapshot from a node.
pub fn stats(addr: &str) -> Result<NodeStats, SuiteError> {
    Ok(stats_envelope(addr, false)?.stats)
}

/// Fetch a stats envelope, optionally asking for the full metrics
/// registry (`full: true`). Against a router, the envelope also carries
/// [`crate::frame::UpstreamHealth`] and the registry is the
/// deterministically merged fleet-wide aggregate.
pub fn stats_envelope(addr: &str, full: bool) -> Result<StatsEnvelope, SuiteError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &Frame::Stats { full })?;
    match read_frame(&mut stream)? {
        Some(Frame::StatsReply(env)) => Ok(env),
        other => Err(SuiteError::protocol(format!("expected stats reply, got {other:?}"))),
    }
}

/// Extract the flight records a traced workload brought home, one per
/// successfully answered entry (order follows the outcome slice; the
/// fleet-trace builder orders internally, so callers need not sort).
#[must_use]
pub fn flight_records(outcomes: &[ClientOutcome]) -> Vec<FlightRecord> {
    outcomes
        .iter()
        .filter_map(|o| o.response.as_ref().and_then(|r| r.flight.clone()))
        .collect()
}

/// Ask a node (or router) to drain and exit; returns once the peer
/// acknowledges or closes the connection.
pub fn shutdown(addr: &str) -> Result<(), SuiteError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &Frame::Shutdown)?;
    loop {
        match read_frame(&mut stream)? {
            Some(Frame::Shutdown) | None => return Ok(()),
            Some(_) => {}
        }
    }
}
