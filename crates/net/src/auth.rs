//! Per-tenant token auth for the framed protocol.
//!
//! Deliberately minimal: a token is the FNV-1a-64 keyed digest of the
//! tenant name under a shared secret, rendered as fixed-width hex. This is
//! **not** a cryptographic MAC — the threat model for the reproduction is
//! misrouted traffic and fat-fingered tenant names, not an adversary on
//! the wire — but the interface (opaque token per tenant, verified on
//! every request) is the one a real deployment would keep while swapping
//! the digest for an HMAC.

/// Shared secret used when none is configured; every binary accepts
/// `--secret` to override it.
pub const DEFAULT_SECRET: &str = "cdd-net-dev-secret";

/// Derive the auth token for `tenant` under `secret`.
#[must_use]
pub fn token_for(tenant: &str, secret: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(secret.as_bytes());
    eat(&[0x1f]); // domain separator: secret | 0x1f | tenant
    eat(tenant.as_bytes());
    format!("{h:016x}")
}

/// Check `token` against the expected token for `tenant`.
#[must_use]
pub fn verify(tenant: &str, token: &str, secret: &str) -> bool {
    // Constant-shape comparison (always walks the full expected token).
    let expected = token_for(tenant, secret);
    let mut diff = usize::from(expected.len() != token.len());
    for (a, b) in expected.bytes().zip(token.bytes().chain(std::iter::repeat(0))) {
        diff |= usize::from(a != b);
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_stable_and_tenant_specific() {
        let a = token_for("t0", DEFAULT_SECRET);
        assert_eq!(a, token_for("t0", DEFAULT_SECRET), "derivation is pure");
        assert_ne!(a, token_for("t1", DEFAULT_SECRET));
        assert_ne!(a, token_for("t0", "other-secret"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn verify_accepts_only_the_matching_token() {
        let tok = token_for("acme", DEFAULT_SECRET);
        assert!(verify("acme", &tok, DEFAULT_SECRET));
        assert!(!verify("acme", &tok, "wrong-secret"));
        assert!(!verify("evil", &tok, DEFAULT_SECRET));
        assert!(!verify("acme", "", DEFAULT_SECRET));
        assert!(!verify("acme", &tok[..15], DEFAULT_SECRET));
    }
}
