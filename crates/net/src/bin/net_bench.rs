//! `net-bench` — the PR-7 multi-node benchmark: one mixed-tenant
//! workload driven through the framed socket path at increasing shard
//! counts.
//!
//! ```text
//! cargo run --release -p cdd-net --bin net-bench -- \
//!     [--requests 64] [--seed 2016] [--iterations 120] [--sizes 10,20] \
//!     [--tenants 4] [--connections 4] [--window 8] [--shards 1,2,3] \
//!     [--out BENCH_pr7.json]
//! ```
//!
//! For each shard count the bench boots that many in-process `cdd-node`
//! listeners plus a `cdd-router`, replays the identical workload over
//! several client connections, and records throughput, per-tenant mix,
//! and fleet-wide cache behaviour. It asserts the determinism contract
//! as it goes: every configuration's sorted outcome CSV must be
//! byte-identical to the single-node baseline's, and duplicate content
//! keys split across different client connections must produce at least
//! one cache/coalesced hit through the router (cross-node dedup).

use cdd_bench::workload::generate_mixed_tenants;
use cdd_bench::Args;
use cdd_net::client::{run_workload_sharded, sorted_outcome_csv};
use cdd_net::node::{serve as serve_node, NodeConfig};
use cdd_net::router::{serve as serve_router, RouterConfig};
use cdd_net::{auth, client as netclient};
use cdd_service::ServiceConfig;
use std::collections::BTreeMap;
use std::fmt::Write as _;

struct RunRow {
    shards: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    cache_hits: u64,
    coalesced: u64,
    reroutes: u64,
    outcome_sha: String,
}

/// FNV-1a over the CSV bytes — enough to print "identical or not" in the
/// JSON without embedding whole CSVs.
fn content_sha(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn main() {
    let args = Args::parse();
    let requests = args.get_or("requests", 64usize);
    let seed = args.get_or("seed", 2016u64);
    let iterations = args.get_or("iterations", 120u64);
    let sizes = args.get_list_or("sizes", &[10usize, 20]);
    let tenants = args.get_or("tenants", 4usize);
    let connections = args.get_or("connections", 4usize);
    let window = args.get_or("window", 8usize);
    let shard_counts = args.get_list_or("shards", &[1usize, 2, 3]);
    let out = args.get("out").unwrap_or("BENCH_pr7.json").to_string();

    let entries = generate_mixed_tenants(requests, seed, iterations, &sizes, tenants);
    let mut per_tenant: BTreeMap<String, usize> = BTreeMap::new();
    for e in &entries {
        *per_tenant.entry(e.tenant.clone()).or_insert(0) += 1;
    }

    let node_config = || NodeConfig {
        service: ServiceConfig {
            devices: 2,
            blocks: 2,
            block_size: 64,
            queue_capacity: 128,
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
        ..NodeConfig::default()
    };

    let mut rows: Vec<RunRow> = Vec::new();
    let mut baseline_csv: Option<String> = None;
    for &shards in &shard_counts {
        let nodes: Vec<_> = (0..shards.max(1))
            .map(|_| serve_node(node_config()).expect("bind node"))
            .collect();
        let router = serve_router(RouterConfig {
            upstreams: nodes.iter().map(|n| n.addr.to_string()).collect(),
            ..RouterConfig::default()
        })
        .expect("bind router");
        let addr = router.addr.to_string();

        let started = std::time::Instant::now();
        let outcomes =
            run_workload_sharded(&addr, &entries, connections, window, auth::DEFAULT_SECRET)
                .expect("workload completed");
        let wall = started.elapsed().as_secs_f64();
        let stats = netclient::stats(&addr).expect("router stats");
        netclient::shutdown(&addr).expect("fleet shutdown");
        let router_report = router.join();
        for n in nodes {
            n.join();
        }

        let csv = sorted_outcome_csv(&outcomes);
        let base = baseline_csv.get_or_insert_with(|| csv.clone());
        assert_eq!(
            *base, csv,
            "sorted outcome set diverged at {shards} shards — determinism contract broken"
        );
        let dup_hits = stats.cache_hits + stats.coalesced;
        assert!(
            dup_hits >= 1,
            "expected at least one cache/coalesced hit from duplicate content keys \
             across {connections} connections, saw none"
        );
        println!(
            "{shards} shard(s): {:.2}s, {:.1} req/s, {} cache hits + {} coalesced, {} re-routes",
            wall,
            requests as f64 / wall.max(1e-9),
            stats.cache_hits,
            stats.coalesced,
            router_report.reroutes,
        );
        rows.push(RunRow {
            shards,
            wall_seconds: wall,
            throughput_rps: requests as f64 / wall.max(1e-9),
            cache_hits: stats.cache_hits,
            coalesced: stats.coalesced,
            reroutes: router_report.reroutes,
            outcome_sha: content_sha(&csv),
        });
    }

    let tenant_json: Vec<String> =
        per_tenant.iter().map(|(t, c)| format!("\"{t}\": {c}")).collect();
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            runs,
            "    {{\"shards\":{},\"wall_seconds\":{:.9},\"throughput_rps\":{:.3},\
\"cache_hits\":{},\"coalesced\":{},\"reroutes\":{},\"outcome_sha\":\"{}\"}}{}",
            r.shards,
            r.wall_seconds,
            r.throughput_rps,
            r.cache_hits,
            r.coalesced,
            r.reroutes,
            r.outcome_sha,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"pr7_net_sharding\",\n  \"pipeline\": \"cdd_net\",\n  \
\"config\": {{\"requests\": {requests}, \"seed\": {seed}, \"iterations\": {iterations}, \
\"tenants\": {tenants}, \"connections\": {connections}, \"window\": {window}}},\n  \
\"tenant_mix\": {{{}}},\n  \
\"note\": \"One fixed mixed-tenant workload replayed through cdd-router at increasing \
shard counts (in-process nodes). outcome_sha is the FNV-1a of the sorted \
(request, fitness, degraded) CSV and must match across every row — the network path \
inherits the service determinism contract. Throughput columns are wall-clock and vary \
between hosts; cache columns depend only on routing, which is deterministic.\",\n  \
\"runs\": [\n{}  ]\n}}\n",
        tenant_json.join(", "),
        runs
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}; all {} shard configurations byte-identical", rows.len());
}
