//! `cdd-router` — content-key-sharded front for N `cdd-node` upstreams.
//!
//! ```text
//! cargo run --release -p cdd-net --bin cdd-router -- \
//!     --upstreams 127.0.0.1:4101,127.0.0.1:4102 \
//!     [--addr 127.0.0.1:0] [--secret cdd-net-dev-secret] \
//!     [--health-interval 100] [--max-attempts 8] [--backoff 10] \
//!     [--no-forward-shutdown] [--metrics-out results/router_metrics.prom]
//! ```
//!
//! Prints `cdd-router listening on <addr>` once bound. A client
//! `Shutdown` frame drains the upstreams too unless
//! `--no-forward-shutdown` is given.

use cdd_bench::Args;
use cdd_net::router::{serve, RouterConfig};
use std::io::Write as _;

fn main() {
    let args = Args::parse();
    let upstreams: Vec<String> = args
        .get("upstreams")
        .expect("--upstreams host:port[,host:port...] is required")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let config = RouterConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        upstreams,
        secret: args.get("secret").unwrap_or(cdd_net::auth::DEFAULT_SECRET).to_string(),
        health_interval_ms: args.get_or("health-interval", 100u64),
        max_attempts: args.get_or("max-attempts", 8u32),
        backoff_base_ms: args.get_or("backoff", 10u64),
        forward_shutdown: !args.flag("no-forward-shutdown"),
    };
    let handle = serve(config).expect("bind router listener");
    println!("cdd-router listening on {}", handle.addr);
    std::io::stdout().flush().expect("flush stdout");

    let report = handle.join();
    if let Some(out) = args.get("metrics-out").map(std::path::PathBuf::from) {
        if let Some(dir) = out.parent() {
            std::fs::create_dir_all(dir).expect("metrics dir");
        }
        std::fs::write(&out, report.net_metrics.render_prometheus()).expect("write metrics");
        println!("cdd-router metrics at {}", out.display());
    }
    println!(
        "cdd-router done: {} routed, {} re-routed after upstream deaths",
        report.routed, report.reroutes
    );
}
