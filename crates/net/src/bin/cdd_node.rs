//! `cdd-node` — one solver service behind a framed TCP listener.
//!
//! ```text
//! cargo run --release -p cdd-net --bin cdd-node -- \
//!     [--addr 127.0.0.1:0] [--backend sim|native] \
//!     [--devices 2] [--blocks 2] [--block-size 64] \
//!     [--queue 64] [--cache 128] [--rate 0] [--burst 8] \
//!     [--secret cdd-net-dev-secret] [--metrics-out results/node_metrics.prom] \
//!     [--label node-a] [--slow-log results/slow.jsonl] [--slow-threshold-ms 250]
//! ```
//!
//! Prints `cdd-node listening on <addr>` once bound (scripts parse this
//! line to discover a port-0 assignment), serves until a `Shutdown`
//! frame, drains, then writes metrics and a one-line summary.

use cdd_bench::{results_dir, Args};
use cdd_net::node::{serve, NodeConfig};
use cdd_service::{Backend, ServiceConfig};
use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let config = NodeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        service: ServiceConfig {
            // Native execution skips the modeled clock and fault machinery;
            // requests that need sim-only features (fault plans, telemetry,
            // traces) are rejected per-request by the service.
            backend: args
                .get("backend")
                .map(|s| s.parse::<Backend>().expect("--backend: `sim` or `native`"))
                .unwrap_or_default(),
            devices: args.get_or("devices", 2usize),
            blocks: args.get_or("blocks", 2usize),
            block_size: args.get_or("block-size", 64usize),
            queue_capacity: args.get_or("queue", 64usize),
            cache_capacity: args.get_or("cache", 128usize),
            ..ServiceConfig::default()
        },
        secret: args.get("secret").unwrap_or(cdd_net::auth::DEFAULT_SECRET).to_string(),
        rate_per_sec: args.get_or("rate", 0u64),
        burst: args.get_or("burst", 8u64),
        label: args.get("label").unwrap_or("node").to_string(),
        slow_log: args.get("slow-log").map(PathBuf::from),
        slow_threshold_ms: args.get_or("slow-threshold-ms", 0u64),
    };
    let metrics_out = args
        .get("metrics-out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("node_metrics.prom"));

    let handle = serve(config).expect("bind node listener");
    println!("cdd-node listening on {}", handle.addr);
    std::io::stdout().flush().expect("flush stdout");

    let report = handle.join();
    let mut rendered = report.service.metrics.render_prometheus();
    rendered.push_str(&report.net_metrics.render_prometheus());
    if let Some(dir) = metrics_out.parent() {
        std::fs::create_dir_all(dir).expect("metrics dir");
    }
    std::fs::write(&metrics_out, rendered).expect("write metrics");
    println!(
        "cdd-node done: {} connections, {} completed, {} degraded, cache {}/{} hits/coalesced; metrics at {}",
        report.connections,
        report.service.completed,
        report.service.degraded,
        report.service.cache.hits,
        report.service.cache.coalesced,
        metrics_out.display()
    );
}
