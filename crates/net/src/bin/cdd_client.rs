//! `cdd-client` — drive a workload file through a `cdd-node` or
//! `cdd-router` socket and write the sorted outcome CSV.
//!
//! ```text
//! cargo run --release -p cdd-net --bin cdd-client -- \
//!     --addr 127.0.0.1:4100 [--workload results/workload.txt] \
//!     [--connections 2] [--window 8] [--secret cdd-net-dev-secret] \
//!     [--out results/net_outcomes.csv] [--trace] \
//!     [--trace-out results/fleet_trace.json] \
//!     [--fleet-metrics-out results/fleet_metrics.prom] [--shutdown]
//! ```
//!
//! The outcome CSV is the network path's determinism artifact: sorted
//! `(request, fitness, degraded)` rows, byte-identical for a fixed
//! workload across shard counts, routings and node restarts. `--shutdown`
//! sends a `Shutdown` frame after the workload (a router forwards it to
//! its nodes), which is how the CI smoke scripts tear the fleet down.
//!
//! Observability flags: `--trace` attaches a sampled trace context to
//! every request; `--trace-out` (implies `--trace`) writes the fleet-merged
//! Chrome trace assembled from the returned flight records;
//! `--fleet-metrics-out` asks the peer for a full registry snapshot
//! (fleet-merged when the peer is a router) and renders it as Prometheus
//! text — both before any `--shutdown` frame is sent.

use cdd_bench::workload;
use cdd_bench::{results_dir, Args};
use cdd_net::client::{
    flight_records, run_workload_sharded_opts, shutdown, sorted_outcome_csv, stats_envelope,
    ClientOptions,
};
use cdd_metrics::fleet_trace;
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let addr = args.get("addr").expect("--addr host:port is required").to_string();
    let workload_path = args
        .get("workload")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("workload.txt"));
    let connections = args.get_or("connections", 1usize);
    let window = args.get_or("window", 8usize);
    let secret = args.get("secret").unwrap_or(cdd_net::auth::DEFAULT_SECRET).to_string();
    let out = args
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("net_outcomes.csv"));
    let trace_out = args.get("trace-out").map(PathBuf::from);
    let fleet_metrics_out = args.get("fleet-metrics-out").map(PathBuf::from);
    let opts = ClientOptions { trace: args.flag("trace") || trace_out.is_some() };

    let entries = workload::load(&workload_path).expect("workload file readable");
    let started = std::time::Instant::now();
    let outcomes =
        run_workload_sharded_opts(&addr, &entries, connections, window, &secret, opts)
            .expect("workload completed");
    let wall = started.elapsed().as_secs_f64();

    let csv = sorted_outcome_csv(&outcomes);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("out dir");
    }
    std::fs::write(&out, &csv).expect("write outcome csv");

    if let Some(trace_path) = &trace_out {
        let records = flight_records(&outcomes);
        let json = fleet_trace(&records).render_chrome_json();
        if let Some(dir) = trace_path.parent() {
            std::fs::create_dir_all(dir).expect("trace dir");
        }
        std::fs::write(trace_path, json).expect("write fleet trace");
        println!(
            "cdd-client: fleet trace ({} flight records) at {}",
            records.len(),
            trace_path.display()
        );
    }
    if let Some(metrics_path) = &fleet_metrics_out {
        let env = stats_envelope(&addr, true).expect("fleet stats");
        let rendered =
            env.registry.as_ref().map(|r| r.render_prometheus()).unwrap_or_default();
        if let Some(dir) = metrics_path.parent() {
            std::fs::create_dir_all(dir).expect("metrics dir");
        }
        std::fs::write(metrics_path, rendered).expect("write fleet metrics");
        match env.health {
            Some(h) => println!(
                "cdd-client: fleet metrics ({} upstreams alive, {} unreachable) at {}",
                h.upstreams_alive,
                h.upstreams_unreachable,
                metrics_path.display()
            ),
            None => println!("cdd-client: fleet metrics at {}", metrics_path.display()),
        }
    }

    let ok = outcomes.iter().filter(|o| o.response.is_some()).count();
    let errs = outcomes.len() - ok;
    let cache_hits =
        outcomes.iter().filter(|o| o.response.as_ref().is_some_and(|r| r.cache_hit)).count();
    let degraded =
        outcomes.iter().filter(|o| o.response.as_ref().is_some_and(|r| r.degraded)).count();
    let retried = outcomes.iter().filter(|o| o.attempts > 1).count();
    println!(
        "cdd-client: {}/{} ok ({errs} errors), {cache_hits} cache/coalesced hits, \
         {degraded} degraded, {retried} retried, {:.2}s wall, {:.1} req/s; outcomes at {}",
        ok,
        outcomes.len(),
        wall,
        outcomes.len() as f64 / wall.max(1e-9),
        out.display()
    );

    if args.flag("shutdown") {
        shutdown(&addr).expect("shutdown acknowledged");
        println!("cdd-client: shutdown delivered to {addr}");
    }
    assert!(errs == 0, "{errs} requests ended in terminal errors");
}
