//! `cdd-client` — drive a workload file through a `cdd-node` or
//! `cdd-router` socket and write the sorted outcome CSV.
//!
//! ```text
//! cargo run --release -p cdd-net --bin cdd-client -- \
//!     --addr 127.0.0.1:4100 [--workload results/workload.txt] \
//!     [--connections 2] [--window 8] [--secret cdd-net-dev-secret] \
//!     [--out results/net_outcomes.csv] [--shutdown]
//! ```
//!
//! The outcome CSV is the network path's determinism artifact: sorted
//! `(request, fitness, degraded)` rows, byte-identical for a fixed
//! workload across shard counts, routings and node restarts. `--shutdown`
//! sends a `Shutdown` frame after the workload (a router forwards it to
//! its nodes), which is how the CI smoke scripts tear the fleet down.

use cdd_bench::workload;
use cdd_bench::{results_dir, Args};
use cdd_net::client::{run_workload_sharded, shutdown, sorted_outcome_csv};
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let addr = args.get("addr").expect("--addr host:port is required").to_string();
    let workload_path = args
        .get("workload")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("workload.txt"));
    let connections = args.get_or("connections", 1usize);
    let window = args.get_or("window", 8usize);
    let secret = args.get("secret").unwrap_or(cdd_net::auth::DEFAULT_SECRET).to_string();
    let out = args
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("net_outcomes.csv"));

    let entries = workload::load(&workload_path).expect("workload file readable");
    let started = std::time::Instant::now();
    let outcomes = run_workload_sharded(&addr, &entries, connections, window, &secret)
        .expect("workload completed");
    let wall = started.elapsed().as_secs_f64();

    let csv = sorted_outcome_csv(&outcomes);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("out dir");
    }
    std::fs::write(&out, &csv).expect("write outcome csv");

    let ok = outcomes.iter().filter(|o| o.response.is_some()).count();
    let errs = outcomes.len() - ok;
    let cache_hits =
        outcomes.iter().filter(|o| o.response.as_ref().is_some_and(|r| r.cache_hit)).count();
    let degraded =
        outcomes.iter().filter(|o| o.response.as_ref().is_some_and(|r| r.degraded)).count();
    let retried = outcomes.iter().filter(|o| o.attempts > 1).count();
    println!(
        "cdd-client: {}/{} ok ({errs} errors), {cache_hits} cache/coalesced hits, \
         {degraded} degraded, {retried} retried, {:.2}s wall, {:.1} req/s; outcomes at {}",
        ok,
        outcomes.len(),
        wall,
        outcomes.len() as f64 / wall.max(1e-9),
        out.display()
    );

    if args.flag("shutdown") {
        shutdown(&addr).expect("shutdown acknowledged");
        println!("cdd-client: shutdown delivered to {addr}");
    }
    assert!(errs == 0, "{errs} requests ended in terminal errors");
}
