//! Wire codecs for the observability payloads carried in frame
//! extensions: full [`MetricsRegistry`] snapshots (the `StatsReply`
//! registry extension) and per-request [`FlightRecord`]s (the `Response`
//! flight extension).
//!
//! Both codecs are **payload** codecs: they produce/consume the byte body
//! of one extension entry, not a whole frame. Decoders follow the
//! extension tolerance rule — bytes after the fields a decoder knows are
//! ignored, so a newer peer may append fields without breaking an older
//! one — and never panic on hostile input: every length is bounds-checked
//! against the remaining payload and every float is re-validated before it
//! reaches a [`Histogram`].
//!
//! A registry snapshot ships each histogram as `(bounds, samples)` only;
//! bucket counts and the sum re-derive on receipt
//! ([`Histogram::from_parts`]), which keeps the round-trip bit-exact and
//! the payload free of redundant state that could disagree with itself.

use crate::wire::{ByteReader, ByteWriter, WireError};
use cdd_metrics::{FlightHop, FlightRecord, Histogram, MetricsRegistry};

/// Upper bound on hop spans in one flight record; a legitimate flight
/// crosses a handful of layers, so this is generous while keeping hostile
/// counts from driving allocation.
pub const MAX_FLIGHT_HOPS: usize = 4096;

/// Upper bound on detail pairs per hop.
pub const MAX_HOP_DETAIL: usize = 64;

fn put_label_pairs(w: &mut ByteWriter, labels: &[(String, String)]) {
    w.put_u32(u32::try_from(labels.len()).expect("label count fits u32"));
    for (k, v) in labels {
        w.put_str(k);
        w.put_str(v);
    }
}

fn take_label_pairs(r: &mut ByteReader, what: &str) -> Result<Vec<(String, String)>, WireError> {
    // Each pair costs at least 8 bytes (two empty length-prefixed strings).
    let count = r.take_count(8, what)?;
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        labels.push((r.take_str(what)?, r.take_str(what)?));
    }
    Ok(labels)
}

fn take_f64_vec(r: &mut ByteReader, what: &str) -> Result<Vec<f64>, WireError> {
    let count = r.take_count(8, what)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(r.take_f64(what)?);
    }
    Ok(out)
}

/// Encode a full registry snapshot as one extension payload.
#[must_use]
pub fn encode_registry(reg: &MetricsRegistry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let descriptions: Vec<_> = reg.descriptions().collect();
    w.put_u32(u32::try_from(descriptions.len()).expect("description count fits u32"));
    for (name, help) in descriptions {
        w.put_str(name);
        w.put_str(help);
    }
    let counters: Vec<_> = reg.counter_series().collect();
    w.put_u32(u32::try_from(counters.len()).expect("counter count fits u32"));
    for (name, labels, value) in counters {
        w.put_str(name);
        put_label_pairs(&mut w, labels);
        w.put_u64(value);
    }
    let gauges: Vec<_> = reg.gauge_series().collect();
    w.put_u32(u32::try_from(gauges.len()).expect("gauge count fits u32"));
    for (name, labels, value) in gauges {
        w.put_str(name);
        put_label_pairs(&mut w, labels);
        w.put_f64(value);
    }
    let histograms: Vec<_> = reg.histogram_series().collect();
    w.put_u32(u32::try_from(histograms.len()).expect("histogram count fits u32"));
    for (name, labels, hist) in histograms {
        w.put_str(name);
        put_label_pairs(&mut w, labels);
        w.put_u32(u32::try_from(hist.bounds().len()).expect("bound count fits u32"));
        for b in hist.bounds() {
            w.put_f64(*b);
        }
        w.put_u32(u32::try_from(hist.samples().len()).expect("sample count fits u32"));
        for s in hist.samples() {
            w.put_f64(*s);
        }
    }
    w.into_bytes()
}

/// Decode a registry snapshot payload. Trailing bytes are tolerated
/// (extension forward-compatibility); malformed content is an error,
/// never a panic.
pub fn decode_registry(payload: &[u8]) -> Result<MetricsRegistry, WireError> {
    let mut r = ByteReader::new(payload);
    let mut reg = MetricsRegistry::new();
    let descriptions = r.take_count(8, "description count")?;
    for _ in 0..descriptions {
        let name = r.take_str("description name")?;
        let help = r.take_str("description help")?;
        reg.describe(&name, &help);
    }
    let counters = r.take_count(12, "counter count")?;
    for _ in 0..counters {
        let name = r.take_str("counter name")?;
        let labels = take_label_pairs(&mut r, "counter labels")?;
        let value = r.take_u64("counter value")?;
        reg.put_counter(name, labels, value);
    }
    let gauges = r.take_count(12, "gauge count")?;
    for _ in 0..gauges {
        let name = r.take_str("gauge name")?;
        let labels = take_label_pairs(&mut r, "gauge labels")?;
        let value = r.take_f64("gauge value")?;
        reg.put_gauge(name, labels, value);
    }
    let histograms = r.take_count(12, "histogram count")?;
    for _ in 0..histograms {
        let name = r.take_str("histogram name")?;
        let labels = take_label_pairs(&mut r, "histogram labels")?;
        let bounds = take_f64_vec(&mut r, "histogram bounds")?;
        let samples = take_f64_vec(&mut r, "histogram samples")?;
        let hist = Histogram::from_parts(bounds, samples)
            .map_err(|detail| WireError { detail, at: payload.len() - r.remaining() })?;
        reg.put_histogram(name, labels, hist);
    }
    Ok(reg)
}

/// Encode a flight record as one extension payload.
#[must_use]
pub fn encode_flight(flight: &FlightRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(flight.trace_id);
    w.put_str(&flight.node);
    w.put_u32(u32::try_from(flight.hops.len()).expect("hop count fits u32"));
    for hop in &flight.hops {
        w.put_str(&hop.layer);
        w.put_str(&hop.name);
        w.put_u32(u32::try_from(hop.detail.len()).expect("detail count fits u32"));
        for (k, v) in &hop.detail {
            w.put_str(k);
            w.put_str(v);
        }
        w.put_f64(hop.modeled_us);
        w.put_f64(hop.wall_us);
        match hop.device {
            Some(d) => {
                w.put_u8(1);
                w.put_u32(d);
            }
            None => w.put_u8(0),
        }
    }
    w.into_bytes()
}

/// Decode a flight-record payload (trailing bytes tolerated, hostile
/// counts bounded).
pub fn decode_flight(payload: &[u8]) -> Result<FlightRecord, WireError> {
    let mut r = ByteReader::new(payload);
    let trace_id = r.take_u64("flight trace id")?;
    let node = r.take_str("flight node")?;
    let hop_count = r.take_count(25, "flight hops")?;
    if hop_count > MAX_FLIGHT_HOPS {
        return Err(WireError {
            detail: format!("flight hop count {hop_count} exceeds limit {MAX_FLIGHT_HOPS}"),
            at: 0,
        });
    }
    let mut hops = Vec::with_capacity(hop_count);
    for _ in 0..hop_count {
        let layer = r.take_str("hop layer")?;
        let name = r.take_str("hop name")?;
        let detail_count = r.take_count(8, "hop detail")?;
        if detail_count > MAX_HOP_DETAIL {
            return Err(WireError {
                detail: format!("hop detail count {detail_count} exceeds limit {MAX_HOP_DETAIL}"),
                at: 0,
            });
        }
        let mut detail = Vec::with_capacity(detail_count);
        for _ in 0..detail_count {
            detail.push((r.take_str("detail key")?, r.take_str("detail value")?));
        }
        let modeled_us = r.take_f64("hop modeled us")?;
        let wall_us = r.take_f64("hop wall us")?;
        let device = match r.take_u8("hop device flag")? {
            0 => None,
            1 => Some(r.take_u32("hop device")?),
            v => {
                return Err(WireError { detail: format!("invalid device flag {v}"), at: 0 });
            }
        };
        hops.push(FlightHop { layer, name, detail, modeled_us, wall_us, device });
    }
    Ok(FlightRecord { trace_id, node, hops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_metrics::latency_ms_buckets;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.describe("service_requests_total", "Requests accepted into the service.");
        reg.inc("service_requests_total", &[("tenant", "t0")], 4);
        reg.set_gauge("service_queue_depth", &[], 2.0);
        reg.observe("timing_request_wall_ms", &[], 12.5, latency_ms_buckets());
        reg.observe("timing_request_wall_ms", &[], 1.25, latency_ms_buckets());
        reg
    }

    #[test]
    fn registry_round_trips_bit_exactly() {
        let reg = sample_registry();
        let decoded = decode_registry(&encode_registry(&reg)).expect("valid payload");
        assert_eq!(reg, decoded);
        assert_eq!(reg.render_prometheus(), decoded.render_prometheus());
        assert_eq!(reg.render_json(), decoded.render_json());
    }

    #[test]
    fn empty_registry_round_trips() {
        let decoded = decode_registry(&encode_registry(&MetricsRegistry::new())).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn registry_decoder_tolerates_appended_fields() {
        let mut payload = encode_registry(&sample_registry());
        payload.extend_from_slice(&[9, 9, 9]); // a future field
        let decoded = decode_registry(&payload).expect("trailing bytes tolerated");
        assert_eq!(decoded, sample_registry());
    }

    #[test]
    fn registry_decoder_rejects_hostile_input() {
        // Truncations at every prefix must error, never panic.
        let full = encode_registry(&sample_registry());
        for cut in 0..full.len() {
            let _ = decode_registry(&full[..cut]);
        }
        // Hostile count prefix claiming more series than bytes.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&0u32.to_le_bytes());
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_registry(&hostile).is_err());
        // A NaN histogram bound is rejected by Histogram::from_parts.
        let mut w = ByteWriter::new();
        w.put_u32(0); // descriptions
        w.put_u32(0); // counters
        w.put_u32(0); // gauges
        w.put_u32(1); // one histogram
        w.put_str("h");
        w.put_u32(0); // labels
        w.put_u32(1); // one bound
        w.put_f64(f64::NAN);
        w.put_u32(0); // samples
        assert!(decode_registry(&w.into_bytes()).is_err());
    }

    #[test]
    fn flight_round_trips_and_tolerates_trailing_bytes() {
        let mut flight = FlightRecord::new(0xFEED, "node-a");
        flight.hops.push(
            FlightHop::new("queue", "queue_wait", 0.0, 412.5).with_detail("breaker", "closed"),
        );
        flight.hops.push(FlightHop::new("worker", "attempt", 1500.0, 1612.0).with_device(1));
        let mut payload = encode_flight(&flight);
        let decoded = decode_flight(&payload).expect("valid payload");
        assert_eq!(flight, decoded);
        payload.push(0xAB);
        assert_eq!(decode_flight(&payload).expect("trailing tolerated"), flight);
    }

    #[test]
    fn flight_decoder_rejects_hostile_counts() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_str("n");
        w.put_u32(u32::MAX); // hop count with no bytes behind it
        assert!(decode_flight(&w.into_bytes()).is_err());

        let flight = FlightRecord::new(3, "n");
        let full = encode_flight(&flight);
        for cut in 0..full.len() {
            let _ = decode_flight(&full[..cut]); // must not panic
        }
    }
}
