//! Process-level chaos test (satellite 3): boot two real `cdd-node`
//! processes and a real `cdd-router` process, drive a workload through
//! the socket, `kill(9)` one node mid-campaign, restart it, and assert
//! that (a) the router re-routes, (b) no request is stranded, and (c)
//! the sorted outcome set byte-matches the no-chaos baseline.

use cdd_bench::workload::{generate_mixed_tenants, save, WorkloadEntry};
use cdd_net::auth::DEFAULT_SECRET;
use cdd_net::client::{self, run_workload, sorted_outcome_csv};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kill the child on drop so a failing assert never leaks processes.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn a binary and parse the `… listening on <addr>` line it prints
/// once bound.
fn spawn_listening(bin: &str, args: &[String]) -> (Reaped, String) {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .unwrap_or_else(|| panic!("no address in {line:?}"))
        .to_string();
    assert!(addr.contains(':'), "unexpected listening line {line:?}");
    (Reaped(child), addr)
}

fn node_args(addr: &str) -> Vec<String> {
    [
        "--addr", addr, "--devices", "2", "--blocks", "2", "--block-size", "64",
        "--queue", "128", "--cache", "256",
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

fn spawn_fleet(scratch: &std::path::Path) -> (Vec<(Reaped, String)>, Reaped, String) {
    let _ = scratch; // fleet needs no disk state; kept for symmetry
    let node_bin = env!("CARGO_BIN_EXE_cdd-node");
    let router_bin = env!("CARGO_BIN_EXE_cdd-router");
    let nodes: Vec<(Reaped, String)> =
        (0..2).map(|_| spawn_listening(node_bin, &node_args("127.0.0.1:0"))).collect();
    let upstreams = nodes.iter().map(|(_, a)| a.clone()).collect::<Vec<_>>().join(",");
    let (router, router_addr) = spawn_listening(
        router_bin,
        &["--upstreams", &upstreams, "--health-interval", "50"]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
    );
    (nodes, router, router_addr)
}

#[test]
fn killing_a_node_mid_campaign_loses_nothing_and_changes_nothing() {
    let scratch = std::env::temp_dir().join(format!("cdd-net-kill-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let entries: Vec<WorkloadEntry> = generate_mixed_tenants(28, 2016, 150, &[10, 20], 4);
    save(&scratch.join("workload.txt"), &entries).expect("save workload");

    // No-chaos baseline through an identical (fresh) fleet.
    let baseline = {
        let (nodes, router, addr) = spawn_fleet(&scratch);
        let outcomes = run_workload(&addr, &entries, 8, DEFAULT_SECRET).expect("baseline run");
        client::shutdown(&addr).expect("fleet shutdown");
        drop(router);
        drop(nodes);
        sorted_outcome_csv(&outcomes)
    };

    // Chaos run: same workload, but node 0 is SIGKILLed mid-campaign and
    // then restarted on the same port (the router's health loop re-admits
    // it into the rendezvous hash).
    let (mut nodes, router, addr) = spawn_fleet(&scratch);
    let addr_for_client = addr.clone();
    let client_thread = std::thread::spawn(move || {
        run_workload(&addr_for_client, &entries, 8, DEFAULT_SECRET).expect("chaos run")
    });
    std::thread::sleep(Duration::from_millis(250));
    let victim_addr = nodes[0].1.clone();
    nodes[0].0 .0.kill().expect("kill node 0");
    let _ = nodes[0].0 .0.wait();
    std::thread::sleep(Duration::from_millis(150));
    // Restart on the same port; the bind can race the OS releasing it.
    let node_bin = env!("CARGO_BIN_EXE_cdd-node");
    for attempt in 0..50 {
        match std::panic::catch_unwind(|| spawn_listening(node_bin, &node_args(&victim_addr))) {
            Ok(replacement) => {
                nodes[0] = replacement;
                break;
            }
            Err(_) if attempt < 49 => std::thread::sleep(Duration::from_millis(100)),
            Err(e) => std::panic::resume_unwind(e),
        }
    }

    let outcomes = client_thread.join().expect("client thread");
    assert!(
        outcomes.iter().all(|o| o.response.is_some()),
        "a request was stranded by the node kill: {:?}",
        outcomes.iter().find(|o| o.response.is_none()).map(|o| &o.entry)
    );
    assert_eq!(
        sorted_outcome_csv(&outcomes),
        baseline,
        "killing and restarting a node changed the outcome set"
    );

    // The restarted node answers pings: it rejoined the fleet.
    assert!(client::ping(&victim_addr, 1).expect("restarted node ping"));

    client::shutdown(&addr).expect("fleet shutdown");
    drop(router);
    drop(nodes);
    let _ = std::fs::remove_dir_all(&scratch);
}
