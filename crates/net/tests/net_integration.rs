//! In-process integration tests for the framed TCP path: a real
//! `SolverService` behind real sockets, driven by the real client.
//!
//! The central assertion is the network determinism contract: the sorted
//! `(request, fitness, degraded)` outcome CSV produced through any fleet
//! shape — direct node, 1/2/3-shard router, router with a dying upstream
//! — is byte-identical to the one a plain in-process service produces
//! for the same workload.

use cdd_bench::workload::{generate_mixed_tenants, WorkloadEntry};
use cdd_core::JobSequence;
use cdd_net::auth::{token_for, DEFAULT_SECRET};
use cdd_net::client::{self, run_workload, run_workload_sharded, sorted_outcome_csv, ClientOutcome};
use cdd_net::frame::{read_frame, write_frame, ErrorCode, Frame, NetRequest, WorkSpec};
use cdd_net::node::{serve as serve_node, NodeConfig, NodeHandle};
use cdd_net::router::{serve as serve_router, RouterConfig};
use cdd_service::{ServiceConfig, SolverService};
use std::io::Read as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared solver geometry: objectives depend on (blocks, block_size), so
/// every fleet shape in these tests must agree on it.
fn service_config() -> ServiceConfig {
    ServiceConfig {
        devices: 2,
        blocks: 2,
        block_size: 64,
        queue_capacity: 128,
        cache_capacity: 256,
        ..ServiceConfig::default()
    }
}

fn node_config() -> NodeConfig {
    NodeConfig { service: service_config(), ..NodeConfig::default() }
}

fn small_workload(requests: usize) -> Vec<WorkloadEntry> {
    generate_mixed_tenants(requests, 2016, 60, &[10], 3)
}

/// The ground truth: solve every entry on a plain in-process service and
/// render the same sorted CSV the network client renders.
fn baseline_csv(entries: &[WorkloadEntry]) -> String {
    let service = SolverService::start(service_config());
    let outcomes: Vec<ClientOutcome> = entries
        .iter()
        .map(|e| {
            let out = service.solve(e.to_request()).expect("baseline solve");
            ClientOutcome {
                entry: e.clone(),
                response: Some(cdd_net::frame::NetResponse {
                    id: 0,
                    objective: out.objective,
                    modeled_seconds: out.modeled_seconds,
                    evaluations: out.evaluations,
                    cache_hit: out.cache_hit,
                    device: out.device.map(|d| d as u64),
                    cpu_fallback: out.cpu_fallback,
                    degraded: out.degraded,
                    wall_ms: 0.0,
                    flight: None,
                }),
                sequence: out.sequence.as_slice().to_vec(),
                error: None,
                attempts: 1,
            }
        })
        .collect();
    service.shutdown();
    sorted_outcome_csv(&outcomes)
}

#[test]
fn single_node_socket_path_matches_in_process_service() {
    let entries = small_workload(12);
    let expected = baseline_csv(&entries);

    let node = serve_node(node_config()).expect("bind node");
    let addr = node.addr.to_string();
    let outcomes = run_workload(&addr, &entries, 4, DEFAULT_SECRET).expect("workload");
    assert_eq!(sorted_outcome_csv(&outcomes), expected, "socket path changed the outcome set");

    // Streamed sequences reassemble into valid permutations of the right
    // size.
    for o in &outcomes {
        assert_eq!(o.sequence.len(), o.entry.id.n);
        JobSequence::from_vec(o.sequence.clone()).expect("valid permutation");
    }

    client::shutdown(&addr).expect("shutdown ack");
    let report = node.join();
    assert_eq!(report.service.completed, 12, "node drained every request");
    assert!(report.connections >= 2, "workload + shutdown connections");
    // net_* namespace is populated.
    let rendered = report.net_metrics.render_prometheus();
    assert!(rendered.contains("net_admitted_total"), "{rendered}");
    assert!(rendered.contains("net_frames_total"), "{rendered}");
    assert!(rendered.contains("net_frame_bytes"), "{rendered}");
    assert!(rendered.contains("net_connection_requests"), "{rendered}");
}

#[test]
fn bad_tokens_are_rejected_with_auth_errors() {
    let node = serve_node(node_config()).expect("bind node");
    let mut stream = TcpStream::connect(node.addr).expect("connect");
    let entry = &small_workload(1)[0];
    write_frame(
        &mut stream,
        &Frame::Request(NetRequest {
            id: 5,
            tenant: entry.tenant.clone(),
            token: "not-the-token".to_string(),
            priority: entry.priority,
            deadline_ms: None,
            algorithm: entry.algorithm,
            iterations: entry.iterations,
            seed: entry.seed,
            work: WorkSpec::ById { n: entry.id.n as u64, k: entry.id.k, h: entry.id.h },
            trace: None,
        }),
    )
    .expect("write");
    match read_frame(&mut stream).expect("reply") {
        Some(Frame::Error(e)) => {
            assert_eq!(e.code, ErrorCode::Auth);
            assert_eq!(e.id, 5);
        }
        other => panic!("expected auth error, got {other:?}"),
    }
    drop(stream);
    node.begin_shutdown();
    let report = node.join();
    assert_eq!(report.service.submitted, 0, "unauthenticated work never reaches the service");
    assert!(
        report.net_metrics.render_prometheus().contains("reason=\"auth\""),
        "shed counter labels the auth rejection"
    );
}

#[test]
fn rate_limits_shed_with_retry_hints() {
    let node = serve_node(NodeConfig {
        rate_per_sec: 1,
        burst: 1,
        ..node_config()
    })
    .expect("bind node");
    let mut stream = TcpStream::connect(node.addr).expect("connect");
    let entry = &small_workload(1)[0];
    let request = |id: u64| {
        Frame::Request(NetRequest {
            id,
            tenant: "burst-tenant".to_string(),
            token: token_for("burst-tenant", DEFAULT_SECRET),
            priority: entry.priority,
            deadline_ms: None,
            algorithm: entry.algorithm,
            iterations: entry.iterations,
            seed: entry.seed,
            work: WorkSpec::ById { n: entry.id.n as u64, k: entry.id.k, h: entry.id.h },
            trace: None,
        })
    };
    // Burst of 3 back-to-back: bucket holds 1, so at least one is shed
    // with a retry hint (the refill rate is 1/s and the writes land
    // within milliseconds).
    for id in 1..=3 {
        write_frame(&mut stream, &request(id)).expect("write");
    }
    let mut limited = 0;
    let mut answered = 0;
    while answered + limited < 3 {
        match read_frame(&mut stream).expect("reply") {
            Some(Frame::Error(e)) => {
                assert_eq!(e.code, ErrorCode::RateLimited, "{e:?}");
                assert!(e.retry_after_ms >= 1, "hint must be actionable");
                limited += 1;
            }
            Some(Frame::Response(_)) => answered += 1,
            Some(Frame::Chunk(_)) => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(limited >= 1, "burst of 3 against bucket of 1 must shed");
    assert!(answered >= 1, "the first request is admitted");
    drop(stream);
    node.begin_shutdown();
    let report = node.join();
    assert!(
        report.net_metrics.render_prometheus().contains("reason=\"rate_limited\""),
        "shed counter labels the rate limit"
    );
}

#[test]
fn router_sharding_is_outcome_invariant_and_dedups_across_connections() {
    let entries = small_workload(18);
    let expected = baseline_csv(&entries);

    for shards in [1usize, 2, 3] {
        let nodes: Vec<NodeHandle> =
            (0..shards).map(|_| serve_node(node_config()).expect("bind node")).collect();
        let router = serve_router(RouterConfig {
            upstreams: nodes.iter().map(|n| n.addr.to_string()).collect(),
            ..RouterConfig::default()
        })
        .expect("bind router");
        let addr = router.addr.to_string();

        // Duplicates are spread across 3 client connections, so dedup can
        // only come from content-key sharding, not connection affinity.
        let outcomes =
            run_workload_sharded(&addr, &entries, 3, 4, DEFAULT_SECRET).expect("workload");
        assert_eq!(
            sorted_outcome_csv(&outcomes),
            expected,
            "{shards}-shard outcome set diverged from the in-process baseline"
        );

        let stats = client::stats(&addr).expect("router stats");
        assert_eq!(stats.completed, entries.len() as u64);
        assert!(
            stats.cache_hits + stats.coalesced >= 1,
            "duplicate content keys through {shards} shard(s) must hit the fleet cache \
             (hits={}, coalesced={})",
            stats.cache_hits,
            stats.coalesced
        );

        client::shutdown(&addr).expect("fleet shutdown");
        router.join();
        let mut completed = 0;
        for n in nodes {
            completed += n.join().service.completed;
        }
        assert_eq!(completed, entries.len() as u64, "shards partition the workload exactly");
    }
}

/// A "node" that accepts the router's connection, then drops dead the
/// moment real work arrives — and refuses all reconnects. Everything
/// routed to it must be re-routed to the survivor.
fn doomed_upstream() -> (String, std::thread::JoinHandle<bool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind doomed upstream");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("router connects");
        drop(listener); // no reconnects: stay dead after the first kill
        let mut saw_request = false;
        let mut buf = [0u8; 4096];
        // Swallow pings; die on the first byte of a request frame.
        loop {
            match read_frame(&mut stream) {
                Ok(Some(Frame::Request(_))) => {
                    saw_request = true;
                    break; // connection dropped with the request unanswered
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    // Drain whatever confused the codec and keep waiting.
                    if stream.read(&mut buf).unwrap_or(0) == 0 {
                        break;
                    }
                }
            }
        }
        saw_request
    });
    (addr, handle)
}

#[test]
fn upstream_death_reroutes_without_losing_or_changing_outcomes() {
    let entries = small_workload(16);
    let expected = baseline_csv(&entries);

    let survivor = serve_node(node_config()).expect("bind node");
    let (doomed_addr, doomed) = doomed_upstream();
    let router = serve_router(RouterConfig {
        upstreams: vec![doomed_addr, survivor.addr.to_string()],
        health_interval_ms: 50,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.addr.to_string();

    let outcomes = run_workload(&addr, &entries, 8, DEFAULT_SECRET).expect("workload");
    assert!(outcomes.iter().all(|o| o.response.is_some()), "no request may be stranded");
    assert_eq!(
        sorted_outcome_csv(&outcomes),
        expected,
        "node death changed the outcome set"
    );
    assert!(
        doomed.join().expect("doomed upstream thread"),
        "rendezvous sharding routed at least one request to the doomed upstream"
    );

    client::shutdown(&addr).expect("fleet shutdown");
    let report = router.join();
    assert!(report.reroutes >= 1, "the doomed upstream's work was re-routed");
    assert_eq!(survivor.join().service.completed, entries.len() as u64);
}

#[test]
fn ping_stats_and_aggregation_work_end_to_end() {
    let nodes: Vec<NodeHandle> =
        (0..2).map(|_| serve_node(node_config()).expect("bind node")).collect();
    let router = serve_router(RouterConfig {
        upstreams: nodes.iter().map(|n| n.addr.to_string()).collect(),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.addr.to_string();

    assert!(client::ping(&nodes[0].addr.to_string(), 7).expect("node ping"));
    assert!(client::ping(&addr, 9).expect("router ping"));

    let entries = small_workload(6);
    run_workload(&addr, &entries, 4, DEFAULT_SECRET).expect("workload");
    let agg = client::stats(&addr).expect("router stats");
    let per_node: u64 = nodes
        .iter()
        .map(|n| client::stats(&n.addr.to_string()).expect("node stats").completed)
        .sum();
    assert_eq!(agg.completed, per_node, "router stats are the sum of its nodes");
    assert_eq!(agg.completed, entries.len() as u64);

    client::shutdown(&addr).expect("fleet shutdown");
    router.join();
    for n in nodes {
        n.join();
    }
}

#[test]
fn concurrent_clients_see_a_drained_shutdown() {
    // Satellite 6 seen from the wire: shutdown drains the queue — work
    // submitted before the drain completes is answered, the service's
    // final report is consistent, and the node joins deterministically.
    let node = serve_node(node_config()).expect("bind node");
    let addr = node.addr.to_string();
    let entries = small_workload(10);
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let addr2 = addr.clone();
    let worker = std::thread::spawn(move || {
        let outs = run_workload(&addr2, &entries, 4, DEFAULT_SECRET).expect("workload");
        flag.store(true, Ordering::SeqCst);
        outs
    });
    let outcomes = worker.join().expect("client thread");
    assert!(done.load(Ordering::SeqCst));
    client::shutdown(&addr).expect("shutdown ack");
    let report = node.join();
    assert_eq!(report.service.completed, outcomes.len() as u64);
    assert_eq!(report.service.failed, 0);
    assert_eq!(
        u64::try_from(outcomes.iter().filter(|o| o.response.is_some()).count()).unwrap(),
        report.service.completed
    );
}
