//! End-to-end tests for the observability PR: distributed request
//! tracing (trace context → stitched flight records → fleet-merged
//! Chrome trace), fleet-wide metrics aggregation (full registry
//! snapshots over `Stats`/`StatsReply`), dead-upstream health reporting,
//! and the node's threshold-gated slow-request log.
//!
//! The determinism contract under test: with tracing enabled, the fleet
//! trace and the `service_*` slice of the fleet Prometheus snapshot are
//! byte-identical across two runs of the same workload on a fresh fleet;
//! with tracing disabled, outcomes are byte-identical to a traced run's.

use cdd_bench::workload::{generate_mixed_tenants, WorkloadEntry};
use cdd_core::{Algorithm, Priority};
use cdd_instances::InstanceId;
use cdd_metrics::fleet_trace;
use cdd_net::auth::DEFAULT_SECRET;
use cdd_net::client::{
    self, flight_records, run_workload_sharded_opts, sorted_outcome_csv, stats_envelope,
    ClientOptions,
};
use cdd_net::node::{serve as serve_node, NodeConfig, NodeHandle};
use cdd_net::router::{serve as serve_router, RouterConfig};
use cdd_service::ServiceConfig;

/// One-device nodes so worker attempts always land on device 0: a
/// requirement for byte-stable traces (device assignment in a pool is
/// timing-dependent).
fn node_config(label: &str) -> NodeConfig {
    NodeConfig {
        service: ServiceConfig {
            devices: 1,
            blocks: 2,
            block_size: 64,
            queue_capacity: 128,
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
        label: label.to_string(),
        ..NodeConfig::default()
    }
}

/// A workload with pairwise-distinct content keys (distinct seeds), so
/// no run-dependent cache/coalesce variation can leak into flight hops.
fn unique_workload(requests: usize) -> Vec<WorkloadEntry> {
    (0..requests)
        .map(|i| WorkloadEntry {
            id: InstanceId::cdd(10, 1 + (i as u32 % 10), 0.6),
            algorithm: Algorithm::Sa,
            iterations: 60,
            seed: 1000 + i as u64,
            tenant: format!("tenant-{}", i % 3),
            priority: Priority::Normal,
        })
        .collect()
}

#[test]
fn traced_flights_are_stitched_across_router_node_and_service() {
    let entries = generate_mixed_tenants(12, 2016, 60, &[10], 3);
    let nodes: Vec<NodeHandle> = ["node-a", "node-b"]
        .iter()
        .map(|l| serve_node(node_config(l)).expect("bind node"))
        .collect();
    let router = serve_router(RouterConfig {
        upstreams: nodes.iter().map(|n| n.addr.to_string()).collect(),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.addr.to_string();

    let traced =
        run_workload_sharded_opts(&addr, &entries, 2, 4, DEFAULT_SECRET, ClientOptions {
            trace: true,
        })
        .expect("traced workload");

    let mut seen_ids = Vec::new();
    for outcome in &traced {
        let response = outcome.response.as_ref().expect("answered");
        let flight = response.flight.as_ref().expect("traced request returns a flight");
        seen_ids.push(flight.trace_id);
        assert!(
            flight.node == "node-a" || flight.node == "node-b",
            "serving node stamps its label, got {:?}",
            flight.node
        );
        // Path order: router hops first, then node admission, then the
        // service-side story.
        assert_eq!(flight.hops.first().expect("non-empty").name, "route");
        assert_eq!(flight.hops[0].layer, "router");
        for name in ["auth", "limit", "validate"] {
            let hop = flight.hop(name).unwrap_or_else(|| panic!("missing node hop {name}"));
            assert_eq!(hop.layer, "node");
        }
        let served = flight.hop("attempt").is_some()
            || flight.hop("cache_hit").is_some()
            || flight.hop("coalesced").is_some();
        assert!(served, "flight must show how the request was served: {flight:?}");
        if let Some(wait) = flight.hop("queue_wait") {
            assert!(wait.detail.iter().any(|(k, v)| k == "breaker" && !v.is_empty()));
        }
        if let Some(attempt) = flight.hop("attempt") {
            assert_eq!(attempt.device, Some(0), "one-device nodes serve on device 0");
            assert!(attempt.modeled_us > 0.0, "attempts consume modeled time");
        }
        // Acceptance check: hop wall spans are sub-intervals of the
        // request's service wall time, up to the node-side admission
        // micro-spans measured outside the service clock (generous 50 ms
        // slack keeps this robust on loaded CI machines).
        assert!(
            flight.total_wall_us() <= response.wall_ms * 1000.0 + 50_000.0,
            "hop wall spans ({} us) must sum consistently with wall_ms ({} ms)",
            flight.total_wall_us(),
            response.wall_ms
        );
    }
    // Trace ids are the 1-based global workload indices: unique and
    // complete even across sharded connections and coalesced duplicates.
    seen_ids.sort_unstable();
    assert_eq!(seen_ids, (1..=entries.len() as u64).collect::<Vec<_>>());

    // Tracing off on the same fleet: no flights, identical outcomes.
    let untraced = run_workload_sharded_opts(&addr, &entries, 2, 4, DEFAULT_SECRET, ClientOptions {
        trace: false,
    })
    .expect("untraced workload");
    assert!(
        untraced.iter().all(|o| o.response.as_ref().is_some_and(|r| r.flight.is_none())),
        "untraced requests must not carry flight records"
    );
    assert_eq!(
        sorted_outcome_csv(&untraced),
        sorted_outcome_csv(&traced),
        "tracing must not change outcomes"
    );

    client::shutdown(&addr).expect("fleet shutdown");
    router.join();
    for n in nodes {
        n.join();
    }
}

/// One full traced run on a fresh fixed-port fleet; returns the
/// byte-compared artifacts (fleet trace JSON, `service_*` slice of the
/// fleet Prometheus snapshot, outcome CSV).
fn traced_run(entries: &[WorkloadEntry]) -> (String, String, String) {
    // Fixed ports: rendezvous hashing weighs upstreams by address, so
    // identical addresses across runs are required for identical shard
    // choices (std's TcpListener sets SO_REUSEADDR, making sequential
    // rebinds safe).
    let node_addrs = ["127.0.0.1:46221", "127.0.0.1:46222"];
    let nodes: Vec<NodeHandle> = node_addrs
        .iter()
        .zip(["node-a", "node-b"])
        .map(|(addr, label)| {
            let mut cfg = node_config(label);
            cfg.addr = (*addr).to_string();
            serve_node(cfg).expect("bind node on fixed port")
        })
        .collect();
    let router = serve_router(RouterConfig {
        addr: "127.0.0.1:46220".to_string(),
        upstreams: node_addrs.iter().map(|a| (*a).to_string()).collect(),
        ..RouterConfig::default()
    })
    .expect("bind router on fixed port");
    let addr = router.addr.to_string();

    let outcomes =
        run_workload_sharded_opts(&addr, entries, 2, 4, DEFAULT_SECRET, ClientOptions {
            trace: true,
        })
        .expect("traced workload");
    let trace_json = fleet_trace(&flight_records(&outcomes)).render_chrome_json();

    let env = stats_envelope(&addr, true).expect("fleet stats");
    let health = env.health.expect("router attaches health");
    assert_eq!(health.upstreams_alive, 2);
    assert_eq!(health.upstreams_unreachable, 0);
    let prom = env.registry.expect("full snapshot requested").render_prometheus();
    // The deterministic slice of the fleet snapshot: service_* counters.
    // (The full registry also aggregates timing-shaped series such as
    // net_frames_total, which count run-dependent health pings.)
    let service_slice: String =
        prom.lines().filter(|l| l.starts_with("service_")).fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
    assert!(!service_slice.is_empty(), "fleet snapshot carries service_ series:\n{prom}");

    client::shutdown(&addr).expect("fleet shutdown");
    router.join();
    for n in nodes {
        n.join();
    }
    (trace_json, service_slice, sorted_outcome_csv(&outcomes))
}

#[test]
fn fleet_trace_and_metrics_snapshots_are_byte_stable_across_runs() {
    let entries = unique_workload(10);
    let (trace_a, prom_a, csv_a) = traced_run(&entries);
    let (trace_b, prom_b, csv_b) = traced_run(&entries);
    assert!(trace_a.contains("node-a") && trace_a.contains("node-b"), "{trace_a}");
    assert_eq!(trace_a, trace_b, "fleet trace must be byte-stable across runs");
    assert_eq!(prom_a, prom_b, "service_ fleet snapshot must be byte-stable across runs");
    assert_eq!(csv_a, csv_b, "outcomes must be byte-stable across runs");
}

#[test]
fn router_stats_distinguish_dead_upstreams() {
    // Reserve a port that nothing listens on: bind, read the address,
    // drop the listener.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        l.local_addr().expect("addr").to_string()
    };
    let node = serve_node(node_config("survivor")).expect("bind node");
    let router = serve_router(RouterConfig {
        upstreams: vec![node.addr.to_string(), dead_addr],
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.addr.to_string();

    let entries = generate_mixed_tenants(6, 7, 60, &[10], 2);
    let outcomes = run_workload_sharded_opts(
        &addr,
        &entries,
        1,
        4,
        DEFAULT_SECRET,
        ClientOptions::default(),
    )
    .expect("workload routes around the dead upstream");
    assert!(outcomes.iter().all(|o| o.response.is_some()));

    let env = stats_envelope(&addr, true).expect("router stats");
    let health = env.health.expect("router always attaches health");
    assert_eq!(health.upstreams_alive, 1, "the live node answered the poll");
    assert_eq!(health.upstreams_unreachable, 1, "the dead upstream is counted, not hidden");
    assert_eq!(env.stats.completed, entries.len() as u64, "flat counters still aggregate");
    let fleet = env.registry.expect("full snapshot");
    let prom = fleet.render_prometheus();
    assert!(prom.contains("service_requests_submitted_total"), "{prom}");
    assert!(
        prom.contains("# HELP service_requests_submitted_total"),
        "HELP lines survive the merge:\n{prom}"
    );
    assert!(prom.contains("net_router_routed_total") || prom.contains("net_router_"), "{prom}");

    // A node-level poll: flat reply has no extensions, full reply carries
    // both the service and net namespaces but never health.
    let node_addr = node.addr.to_string();
    let flat = stats_envelope(&node_addr, false).expect("flat node stats");
    assert!(flat.health.is_none() && flat.registry.is_none());
    let full = stats_envelope(&node_addr, true).expect("full node stats");
    assert!(full.health.is_none(), "nodes never attach router health");
    let node_prom = full.registry.expect("node snapshot").render_prometheus();
    assert!(node_prom.contains("service_requests_submitted_total"), "{node_prom}");
    assert!(node_prom.contains("net_frames_total"), "{node_prom}");

    client::shutdown(&addr).expect("fleet shutdown");
    router.join();
    node.join();
}

#[test]
fn slow_request_log_is_threshold_gated_jsonl() {
    let dir = std::env::temp_dir().join(format!("cdd-slowlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let slow_path = dir.join("slow.jsonl");
    let mut cfg = node_config("slow-node");
    cfg.slow_log = Some(slow_path.clone());
    cfg.slow_threshold_ms = 0; // everything traced is "slow"
    let node = serve_node(cfg).expect("bind node");
    let addr = node.addr.to_string();

    let entries = unique_workload(4);
    let outcomes =
        run_workload_sharded_opts(&addr, &entries, 1, 2, DEFAULT_SECRET, ClientOptions {
            trace: true,
        })
        .expect("traced workload");
    assert_eq!(outcomes.len(), entries.len());

    let log = std::fs::read_to_string(&slow_path).expect("slow log written");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), entries.len(), "threshold 0 logs every traced request:\n{log}");
    for line in &lines {
        assert!(line.starts_with("{\"slow_request\":true,\"trace_id\":\""), "{line}");
        assert!(line.contains("\"node\":\"slow-node\""), "{line}");
        assert!(line.contains("\"hops\":["), "{line}");
    }

    // Untraced requests never reach the slow log, whatever the threshold.
    run_workload_sharded_opts(&addr, &entries, 1, 2, DEFAULT_SECRET, ClientOptions::default())
        .expect("untraced workload");
    let after = std::fs::read_to_string(&slow_path).expect("slow log re-read");
    assert_eq!(after.lines().count(), entries.len(), "untraced requests are not logged");

    client::shutdown(&addr).expect("shutdown");
    node.join();
    let _ = std::fs::remove_dir_all(&dir);
}
