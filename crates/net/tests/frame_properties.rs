//! Property tests for the frame codec (satellite 1 of the network PR):
//! round-trips are exact, and *no* input — truncated, oversized,
//! bit-flipped, or raw noise — can make the decoder panic or allocate
//! past the frame cap. The decoder's only failure mode is a structured
//! `SuiteError::Protocol`.

use cdd_core::{Algorithm, Job, Priority, SuiteError};
use cdd_net::frame::{
    chunk_sequence, read_frame, Frame, NetError, NetRequest, NetResponse, StreamChunk, WorkSpec,
    ErrorCode, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use std::io::Cursor;

/// Build a request from plain integers so the strategies stay simple.
#[allow(clippy::too_many_arguments)]
fn request_from(
    id: u64,
    tenant_tag: u32,
    priority: u8,
    deadline: u64,
    algo: bool,
    iterations: u64,
    seed: u64,
    inline_jobs: &[(i64, i64, i64)],
) -> NetRequest {
    let work = if inline_jobs.is_empty() {
        WorkSpec::ById { n: 10 + (seed % 90), k: 1 + (tenant_tag % 10), h: Some(0.6) }
    } else {
        WorkSpec::Inline {
            ucddcp: false,
            due_date: 50,
            jobs: inline_jobs
                .iter()
                .map(|&(p, a, b)| Job::cdd(1 + p.abs() % 50, a.abs() % 9, b.abs() % 9))
                .collect(),
        }
    };
    NetRequest {
        id,
        tenant: format!("tenant-{tenant_tag}"),
        token: format!("{:016x}", u64::from(tenant_tag).wrapping_mul(0x9E37)),
        priority: Priority::from_u8(priority % 3).expect("priority in range"),
        deadline_ms: if deadline.is_multiple_of(2) { None } else { Some(deadline) },
        algorithm: if algo { Algorithm::Sa } else { Algorithm::Dpso },
        iterations,
        seed,
        work,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip_exactly(
        id in any::<u64>(),
        tenant_tag in any::<u32>(),
        priority in 0..=2u8,
        deadline in any::<u64>(),
        algo in any::<bool>(),
        iterations in 1..10_000u64,
        seed in any::<u64>(),
        jobs in prop::collection::vec((1..100i64, 0..9i64, 0..9i64), 0..40),
    ) {
        let frame = Frame::Request(request_from(
            id, tenant_tag, priority, deadline, algo, iterations, seed, &jobs,
        ));
        let wire = frame.encode();
        let got = read_frame(&mut Cursor::new(&wire)).unwrap().expect("one frame");
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn responses_errors_and_chunks_round_trip(
        id in any::<u64>(),
        objective in any::<i64>(),
        bits in any::<u64>(),
        evaluations in any::<u64>(),
        flags in any::<u8>(),
        code in 1..=7u8,
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let frames = vec![
            Frame::Response(NetResponse {
                id,
                objective,
                modeled_seconds: f64::from_bits(bits & !(0x7FFu64 << 52)), // keep finite-ish
                evaluations,
                cache_hit: flags & 1 != 0,
                device: if flags & 2 != 0 { Some(u64::from(flags)) } else { None },
                cpu_fallback: flags & 4 != 0,
                degraded: flags & 8 != 0,
                wall_ms: 0.5,
            }),
            Frame::Error(NetError {
                id,
                code: ErrorCode::from_u8(code).expect("code in range"),
                detail: format!("detail-{id}"),
                retry_after_ms: u64::from(flags),
            }),
            Frame::Chunk(StreamChunk {
                id,
                index: u32::from(flags),
                total: u32::from(flags) + 1,
                data: data.clone(),
            }),
            Frame::Ping { nonce: id },
            Frame::Pong { nonce: id ^ 1 },
            Frame::Stats,
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut cursor = Cursor::new(&wire);
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap().expect("frame"), f);
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(
        noise in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        // Raw payload decode: any outcome but a panic is acceptable.
        let _ = Frame::decode_body(&noise);
        // Stream decode: same.
        let mut cursor = Cursor::new(&noise);
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    }

    #[test]
    fn truncated_frames_error_cleanly(
        seed in any::<u64>(),
        cut_num in any::<u32>(),
        jobs in prop::collection::vec((1..100i64, 0..9i64, 0..9i64), 0..20),
    ) {
        let wire = Frame::Request(request_from(7, 3, 1, seed, true, 100, seed, &jobs)).encode();
        let cut = 1 + (cut_num as usize) % (wire.len() - 1);
        // Anything but a complete decode is fine: clean EOF (cut < 4) or
        // a structured error.
        if let Ok(Some(_)) = read_frame(&mut Cursor::new(&wire[..cut])) {
            prop_assert!(false, "truncated frame decoded as complete");
        }
    }

    #[test]
    fn corrupted_frames_never_panic(
        flip_pos in any::<u32>(),
        flip_bit in 0..8u32,
        seed in any::<u64>(),
    ) {
        let mut wire = Frame::Request(request_from(9, 1, 2, seed, false, 50, seed, &[])).encode();
        let pos = 4 + (flip_pos as usize) % (wire.len() - 4); // keep the length prefix intact
        wire[pos] ^= 1 << flip_bit;
        match read_frame(&mut Cursor::new(&wire)) {
            Ok(_) | Err(SuiteError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "non-protocol error from codec: {other}"),
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_allocation(
        len in (MAX_FRAME_LEN as u32 + 1)..u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let err = read_frame(&mut Cursor::new(&wire)).unwrap_err();
        prop_assert!(
            err.to_string().contains("exceeds limit"),
            "oversized prefix must be rejected with the bounded-allocation guard, got: {}",
            err
        );
    }

    #[test]
    fn unknown_tags_and_versions_are_structured_errors(
        tag in 10..=255u8,
        version in 2..=255u8,
        pad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut body = vec![PROTOCOL_VERSION, tag];
        body.extend_from_slice(&pad);
        match Frame::decode_body(&body) {
            Err(SuiteError::Protocol { detail }) => {
                prop_assert!(detail.contains(&format!("unknown frame tag {tag}")), "{detail}");
            }
            other => prop_assert!(false, "expected protocol error, got {other:?}"),
        }
        let mut body = vec![version, 5];
        body.extend_from_slice(&[0; 8]);
        match Frame::decode_body(&body) {
            Err(SuiteError::Protocol { detail }) => {
                prop_assert!(detail.contains("version"), "{detail}");
            }
            other => prop_assert!(false, "expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn sequences_survive_chunking(
        order in prop::collection::vec(any::<u32>(), 0..2000),
        id in any::<u64>(),
    ) {
        let chunks = chunk_sequence(id, &order);
        prop_assert!(!chunks.is_empty());
        let total = chunks.len() as u32;
        let mut data = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.index, i as u32);
            prop_assert_eq!(c.total, total);
            prop_assert_eq!(c.id, id);
            data.extend_from_slice(&c.data);
        }
        prop_assert_eq!(cdd_net::frame::assemble_sequence(&data).unwrap(), order);
    }
}
