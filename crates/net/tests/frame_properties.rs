//! Property tests for the frame codec (satellite 1 of the network PR):
//! round-trips are exact, and *no* input — truncated, oversized,
//! bit-flipped, or raw noise — can make the decoder panic or allocate
//! past the frame cap. The decoder's only failure mode is a structured
//! `SuiteError::Protocol`.

use cdd_core::{Algorithm, Job, Priority, SuiteError, TraceContext};
use cdd_metrics::{FlightHop, FlightRecord, MetricsRegistry};
use cdd_net::frame::{
    chunk_sequence, read_frame, Frame, NetError, NetRequest, NetResponse, NodeStats,
    StatsEnvelope, StreamChunk, UpstreamHealth, WorkSpec, ErrorCode, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use cdd_net::snapshot::{decode_flight, decode_registry, encode_flight, encode_registry};
use proptest::prelude::*;
use std::io::Cursor;

/// Build a request from plain integers so the strategies stay simple.
#[allow(clippy::too_many_arguments)]
fn request_from(
    id: u64,
    tenant_tag: u32,
    priority: u8,
    deadline: u64,
    algo: bool,
    iterations: u64,
    seed: u64,
    inline_jobs: &[(i64, i64, i64)],
) -> NetRequest {
    let work = if inline_jobs.is_empty() {
        WorkSpec::ById { n: 10 + (seed % 90), k: 1 + (tenant_tag % 10), h: Some(0.6) }
    } else {
        WorkSpec::Inline {
            ucddcp: false,
            due_date: 50,
            jobs: inline_jobs
                .iter()
                .map(|&(p, a, b)| Job::cdd(1 + p.abs() % 50, a.abs() % 9, b.abs() % 9))
                .collect(),
        }
    };
    NetRequest {
        id,
        tenant: format!("tenant-{tenant_tag}"),
        token: format!("{:016x}", u64::from(tenant_tag).wrapping_mul(0x9E37)),
        priority: Priority::from_u8(priority % 3).expect("priority in range"),
        deadline_ms: if deadline.is_multiple_of(2) { None } else { Some(deadline) },
        algorithm: if algo { Algorithm::Sa } else { Algorithm::Dpso },
        iterations,
        seed,
        work,
        trace: None,
    }
}

/// Strategy for an arbitrary flight record: derived names, finite span
/// times, optional device and detail pairs.
fn flight_strategy() -> impl Strategy<Value = FlightRecord> {
    let hop = (any::<u32>(), 0..5usize, 0.0..1e9f64, 0.0..1e9f64, any::<u64>()).prop_map(
        |(tag, details, modeled_us, wall_us, dev_bits)| FlightHop {
            layer: format!("layer{}", tag % 5),
            name: format!("span_{}", tag % 11),
            detail: (0..details)
                .map(|i| (format!("k{i}"), format!("v{}", tag.wrapping_add(i as u32))))
                .collect(),
            modeled_us,
            wall_us,
            device: (dev_bits & 1 == 1).then_some((dev_bits >> 33) as u32),
        },
    );
    (any::<u64>(), any::<u32>(), prop::collection::vec(hop, 0..12)).prop_map(
        |(trace_id, node_tag, hops)| FlightRecord {
            trace_id,
            node: format!("node-{}", node_tag % 8),
            hops,
        },
    )
}

/// Strategy for an arbitrary registry built through the public mutation
/// API, so every generated snapshot is one the service could produce.
fn registry_strategy() -> impl Strategy<Value = MetricsRegistry> {
    let counter = (any::<u32>(), 1..1_000_000u64);
    let gauge = (any::<u32>(), -1e12..1e12f64);
    let hist = (any::<u32>(), prop::collection::vec(0.0..1e6f64, 1..20));
    (
        prop::collection::vec(counter, 0..6),
        prop::collection::vec(gauge, 0..4),
        prop::collection::vec(hist, 0..3),
        0..4usize,
    )
        .prop_map(|(counters, gauges, hists, descriptions)| {
            let mut reg = MetricsRegistry::new();
            for d in 0..descriptions {
                reg.describe(&format!("series_{d}"), &format!("Help text {d}."));
            }
            for (tag, by) in &counters {
                let tenant = format!("t{}", tag % 4);
                reg.inc(&format!("series_{}", tag % 8), &[("tenant", &tenant)], *by);
            }
            for (tag, value) in &gauges {
                reg.set_gauge(&format!("gauge_{}", tag % 6), &[], *value);
            }
            for (tag, samples) in &hists {
                for s in samples {
                    reg.observe(
                        &format!("hist_{}", tag % 4),
                        &[],
                        *s,
                        cdd_metrics::latency_ms_buckets(),
                    );
                }
            }
            reg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip_exactly(
        id in any::<u64>(),
        tenant_tag in any::<u32>(),
        priority in 0..=2u8,
        deadline in any::<u64>(),
        algo in any::<bool>(),
        iterations in 1..10_000u64,
        seed in any::<u64>(),
        jobs in prop::collection::vec((1..100i64, 0..9i64, 0..9i64), 0..40),
    ) {
        let frame = Frame::Request(request_from(
            id, tenant_tag, priority, deadline, algo, iterations, seed, &jobs,
        ));
        let wire = frame.encode();
        let got = read_frame(&mut Cursor::new(&wire)).unwrap().expect("one frame");
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn responses_errors_and_chunks_round_trip(
        id in any::<u64>(),
        objective in any::<i64>(),
        bits in any::<u64>(),
        evaluations in any::<u64>(),
        flags in any::<u8>(),
        code in 1..=7u8,
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let frames = vec![
            Frame::Response(NetResponse {
                id,
                objective,
                modeled_seconds: f64::from_bits(bits & !(0x7FFu64 << 52)), // keep finite-ish
                evaluations,
                cache_hit: flags & 1 != 0,
                device: if flags & 2 != 0 { Some(u64::from(flags)) } else { None },
                cpu_fallback: flags & 4 != 0,
                degraded: flags & 8 != 0,
                wall_ms: 0.5,
                flight: None,
            }),
            Frame::Error(NetError {
                id,
                code: ErrorCode::from_u8(code).expect("code in range"),
                detail: format!("detail-{id}"),
                retry_after_ms: u64::from(flags),
            }),
            Frame::Chunk(StreamChunk {
                id,
                index: u32::from(flags),
                total: u32::from(flags) + 1,
                data: data.clone(),
            }),
            Frame::Ping { nonce: id },
            Frame::Pong { nonce: id ^ 1 },
            Frame::Stats { full: false },
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut cursor = Cursor::new(&wire);
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap().expect("frame"), f);
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(
        noise in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        // Raw payload decode: any outcome but a panic is acceptable.
        let _ = Frame::decode_body(&noise);
        // Stream decode: same.
        let mut cursor = Cursor::new(&noise);
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    }

    #[test]
    fn truncated_frames_error_cleanly(
        seed in any::<u64>(),
        cut_num in any::<u32>(),
        jobs in prop::collection::vec((1..100i64, 0..9i64, 0..9i64), 0..20),
    ) {
        let wire = Frame::Request(request_from(7, 3, 1, seed, true, 100, seed, &jobs)).encode();
        let cut = 1 + (cut_num as usize) % (wire.len() - 1);
        // Anything but a complete decode is fine: clean EOF (cut < 4) or
        // a structured error.
        if let Ok(Some(_)) = read_frame(&mut Cursor::new(&wire[..cut])) {
            prop_assert!(false, "truncated frame decoded as complete");
        }
    }

    #[test]
    fn corrupted_frames_never_panic(
        flip_pos in any::<u32>(),
        flip_bit in 0..8u32,
        seed in any::<u64>(),
    ) {
        let mut wire = Frame::Request(request_from(9, 1, 2, seed, false, 50, seed, &[])).encode();
        let pos = 4 + (flip_pos as usize) % (wire.len() - 4); // keep the length prefix intact
        wire[pos] ^= 1 << flip_bit;
        match read_frame(&mut Cursor::new(&wire)) {
            Ok(_) | Err(SuiteError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "non-protocol error from codec: {other}"),
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_allocation(
        len in (MAX_FRAME_LEN as u32 + 1)..u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let err = read_frame(&mut Cursor::new(&wire)).unwrap_err();
        prop_assert!(
            err.to_string().contains("exceeds limit"),
            "oversized prefix must be rejected with the bounded-allocation guard, got: {}",
            err
        );
    }

    #[test]
    fn unknown_tags_and_versions_are_structured_errors(
        tag in 10..=255u8,
        version in 2..=255u8,
        pad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut body = vec![PROTOCOL_VERSION, tag];
        body.extend_from_slice(&pad);
        match Frame::decode_body(&body) {
            Err(SuiteError::Protocol { detail }) => {
                prop_assert!(detail.contains(&format!("unknown frame tag {tag}")), "{detail}");
            }
            other => prop_assert!(false, "expected protocol error, got {other:?}"),
        }
        let mut body = vec![version, 5];
        body.extend_from_slice(&[0; 8]);
        match Frame::decode_body(&body) {
            Err(SuiteError::Protocol { detail }) => {
                prop_assert!(detail.contains("version"), "{detail}");
            }
            other => prop_assert!(false, "expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn traced_requests_round_trip_and_absence_is_byte_identical(
        id in any::<u64>(),
        trace_id in 1..u64::MAX,
        parent in any::<u64>(),
        sampled in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let bare = request_from(id, 7, 1, seed, true, 200, seed, &[]);
        let traced = NetRequest {
            trace: Some(TraceContext { trace_id, parent_span_id: parent, sampled }),
            ..bare.clone()
        };
        // Round-trip preserves the trace context exactly.
        let wire = Frame::Request(traced.clone()).encode();
        let got = read_frame(&mut Cursor::new(&wire)).unwrap().expect("one frame");
        prop_assert_eq!(&got, &Frame::Request(traced));
        // Tracing off ⇒ byte-identical to the pre-extension format: the
        // untraced frame is a strict prefix of the traced one.
        let bare_wire = Frame::Request(bare).encode();
        prop_assert!(wire.len() > bare_wire.len());
        // Skip the length prefix (differs by the extension block size);
        // everything after it up to the extension block must match.
        prop_assert_eq!(&wire[4..bare_wire.len()], &bare_wire[4..]);
    }

    #[test]
    fn unknown_request_extensions_are_skipped(
        id in any::<u64>(),
        seed in any::<u64>(),
        unknown_tag in 2..=255u8,
    ) {
        let bare = request_from(id, 3, 0, seed, false, 100, seed, &[]);
        let traced = NetRequest {
            trace: Some(TraceContext { trace_id: 42, parent_span_id: 0, sampled: true }),
            ..bare.clone()
        };
        let mut wire = Frame::Request(traced).encode();
        // The trace extension payload is the last 17 bytes; its tag byte
        // sits before the 4-byte payload length. Rewrite it to an unknown
        // tag: the decoder must skip it and yield the untraced request.
        let tag_at = wire.len() - 17 - 4 - 1;
        prop_assert_eq!(wire[tag_at], 1); // EXT_REQUEST_TRACE
        wire[tag_at] = unknown_tag;
        let got = read_frame(&mut Cursor::new(&wire)).unwrap().expect("frame");
        prop_assert_eq!(got, Frame::Request(bare));
    }

    #[test]
    fn responses_with_flight_records_round_trip(
        id in any::<u64>(),
        flight in flight_strategy(),
    ) {
        let frame = Frame::Response(NetResponse {
            id,
            objective: 1234,
            modeled_seconds: 0.5,
            evaluations: 99,
            cache_hit: false,
            device: Some(0),
            cpu_fallback: false,
            degraded: false,
            wall_ms: 7.5,
            flight: Some(flight),
        });
        let wire = frame.encode();
        prop_assert!(wire.len() <= MAX_FRAME_LEN + 4);
        let got = read_frame(&mut Cursor::new(&wire)).unwrap().expect("frame");
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn flight_payloads_survive_fuzzing(
        flight in flight_strategy(),
        cut_num in any::<u32>(),
        noise in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let payload = encode_flight(&flight);
        // Exact round-trip.
        prop_assert_eq!(&decode_flight(&payload).expect("valid"), &flight);
        // Trailing bytes tolerated (forward compatibility).
        let mut extended = payload.clone();
        extended.extend_from_slice(&noise);
        prop_assert_eq!(&decode_flight(&extended).expect("trailing tolerated"), &flight);
        // Truncation never panics.
        if !payload.is_empty() {
            let cut = (cut_num as usize) % payload.len();
            let _ = decode_flight(&payload[..cut]);
        }
        // Raw noise never panics.
        let _ = decode_flight(&noise);
    }

    #[test]
    fn registry_snapshots_survive_fuzzing(
        reg in registry_strategy(),
        cut_num in any::<u32>(),
        noise in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let payload = encode_registry(&reg);
        let decoded = decode_registry(&payload).expect("valid");
        prop_assert_eq!(&decoded, &reg);
        // Renders agree bit-for-bit — what a fleet aggregator compares.
        prop_assert_eq!(decoded.render_prometheus(), reg.render_prometheus());
        // Truncation and raw noise never panic.
        if !payload.is_empty() {
            let cut = (cut_num as usize) % payload.len();
            let _ = decode_registry(&payload[..cut]);
        }
        let _ = decode_registry(&noise);
    }

    #[test]
    fn stats_reply_envelopes_round_trip(
        completed in any::<u64>(),
        alive in any::<u32>(),
        unreachable in any::<u32>(),
        with_health in any::<bool>(),
        with_registry in any::<bool>(),
        reg in registry_strategy(),
    ) {
        let envelope = StatsEnvelope {
            stats: NodeStats { completed, ..NodeStats::default() },
            health: with_health.then_some(UpstreamHealth {
                upstreams_alive: alive,
                upstreams_unreachable: unreachable,
            }),
            registry: with_registry.then_some(reg),
        };
        for frame in [
            Frame::Stats { full: with_health },
            Frame::StatsReply(envelope),
        ] {
            let wire = frame.encode();
            let got = read_frame(&mut Cursor::new(&wire)).unwrap().expect("frame");
            prop_assert_eq!(got, frame);
        }
    }

    #[test]
    fn hostile_extension_blocks_never_panic(
        id in any::<u64>(),
        seed in any::<u64>(),
        ext_count in any::<u8>(),
        ext_len in any::<u32>(),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Hand-build an extension block with a hostile count and length
        // prefix after a legitimate request body.
        let wire = Frame::Request(request_from(id, 1, 2, seed, true, 50, seed, &[])).encode();
        let mut body = wire[4..].to_vec(); // strip the frame length prefix
        body.push(ext_count);
        body.push(1); // EXT_REQUEST_TRACE
        body.extend_from_slice(&ext_len.to_le_bytes());
        body.extend_from_slice(&garbage);
        match Frame::decode_body(&body) {
            Ok(_) | Err(SuiteError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "non-protocol error from codec: {other}"),
        }
    }

    #[test]
    fn sequences_survive_chunking(
        order in prop::collection::vec(any::<u32>(), 0..2000),
        id in any::<u64>(),
    ) {
        let chunks = chunk_sequence(id, &order);
        prop_assert!(!chunks.is_empty());
        let total = chunks.len() as u32;
        let mut data = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.index, i as u32);
            prop_assert_eq!(c.total, total);
            prop_assert_eq!(c.id, id);
            data.extend_from_slice(&c.data);
        }
        prop_assert_eq!(cdd_net::frame::assemble_sequence(&data).unwrap(), order);
    }
}
