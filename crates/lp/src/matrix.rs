//! A minimal dense row-major matrix used for the simplex tableau.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense `rows × cols` matrix of `f64`, row-major, indexed `m[(r, c)]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from nested rows (each inner slice must have equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row operation `row[dst] += factor * row[src]` (the simplex pivot
    /// elimination step). `dst != src`.
    pub fn axpy_rows(&mut self, dst: usize, src: usize, factor: f64) {
        assert_ne!(dst, src, "axpy_rows requires distinct rows");
        if factor == 0.0 {
            return;
        }
        let cols = self.cols;
        let (a, b) = if dst < src {
            let (lo, hi) = self.data.split_at_mut(src * cols);
            (&mut lo[dst * cols..dst * cols + cols], &hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(dst * cols);
            (&mut hi[..cols], &lo[src * cols..src * cols + cols])
        };
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x += factor * y;
        }
    }

    /// Scale row `r` by `factor`.
    pub fn scale_row(&mut self, r: usize, factor: f64) {
        for x in self.row_mut(r) {
            *x *= factor;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                write!(f, "{:>9.3}", self[(r, c)])?;
            }
            writeln!(f, " ]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        m[(0, 0)] = -1.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.row(0), &[-1.0, 0.0, 0.0]);
    }

    #[test]
    fn from_rows_matches_manual_fill() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn axpy_rows_both_directions() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        m.axpy_rows(0, 1, 0.5);
        assert_eq!(m.row(0), &[6.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 20.0]);
        m.axpy_rows(1, 0, -1.0);
        assert_eq!(m.row(1), &[4.0, 8.0]);
    }

    #[test]
    fn scale_row_scales_only_target() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.scale_row(1, 2.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[6.0, 8.0]);
    }
}
