//! A small modelling layer: named non-negative variables, linear
//! constraints, minimization objective.

/// Handle to a model variable (index into the model's variable list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) sense: ConstraintSense,
    pub(crate) rhs: f64,
}

/// A minimization LP over non-negative variables.
///
/// All variables have implicit bound `x ≥ 0` (matching the paper's
/// formulation, where `Eᵢ, Tᵢ, Xᵢ, Cᵢ ≥ 0`).
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) names: Vec<String>,
    pub(crate) costs: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// An empty minimization model.
    pub fn minimize() -> Self {
        Model::default()
    }

    /// Add a non-negative variable with objective coefficient `cost`.
    pub fn add_var(&mut self, name: impl Into<String>, cost: f64) -> VarId {
        self.names.push(name.into());
        self.costs.push(cost);
        VarId(self.names.len() - 1)
    }

    /// Add the constraint `Σ terms  sense  rhs`.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        sense: ConstraintSense,
        rhs: f64,
    ) {
        debug_assert!(
            terms.iter().all(|(v, _)| v.0 < self.names.len()),
            "constraint references unknown variable"
        );
        self.constraints.push(Constraint { terms, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable name (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Solve with the two-phase simplex solver.
    pub fn solve(&self) -> Result<crate::simplex::LpSolution, crate::simplex::LpError> {
        crate::simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 3.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.var_name(y), "y");
    }

    #[test]
    fn solve_round_trip() {
        // min x + 2y  s.t.  x + y >= 3, x <= 2  →  x = 2, y = 1, obj = 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::Ge, 3.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintSense::Le, 2.0);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 1.0).abs() < 1e-9);
    }
}
