//! # cdd-lp
//!
//! A self-contained dense **two-phase primal simplex** solver and the
//! fixed-sequence linear-programming models of the CDD and UCDDCP problems.
//!
//! Section III of the reproduced paper observes that once the job order is
//! fixed (all `δᵢⱼ` decided), the 0-1 integer program becomes a plain LP in
//! the completion times `Cᵢ` and compressions `Xᵢ` — but that "LP solvers
//! are quite slow when run iteratively" inside a metaheuristic, which is why
//! the O(n) algorithms of `cdd-core` exist. This crate provides that LP
//! baseline:
//!
//! * as an **independent correctness oracle** — the simplex solution of the
//!   continuous model must match the O(n) combinatorial optimum (this also
//!   validates the paper's Property 2: full-or-nothing compression), and
//! * as the **ablation baseline** for the "LP vs. linear algorithm" speed
//!   comparison (`cdd-bench`'s `ablation_lp_vs_linear`).
//!
//! ```
//! use cdd_core::{Instance, JobSequence};
//! use cdd_lp::cdd_model::solve_cdd_sequence_lp;
//!
//! let inst = Instance::paper_example_cdd();
//! let seq = JobSequence::identity(5);
//! let lp = solve_cdd_sequence_lp(&inst, &seq).unwrap();
//! assert!((lp.objective - 81.0).abs() < 1e-6);
//! ```

pub mod cdd_model;
pub mod matrix;
pub mod model;
pub mod simplex;

pub use cdd_model::{solve_cdd_sequence_lp, solve_ucddcp_sequence_lp, LpSequenceSolution};
pub use matrix::Matrix;
pub use model::{ConstraintSense, Model, VarId};
pub use simplex::{solve, LpError, LpSolution};
