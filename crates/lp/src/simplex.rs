//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! Designed for the small/medium fixed-sequence LPs of this suite
//! (a few hundred variables and constraints). Numerically plain (no
//! factorization refresh), which is adequate for the integral, well-scaled
//! scheduling data.

use crate::matrix::Matrix;
use crate::model::{ConstraintSense, Model};
use std::fmt;

/// Comparison tolerance for reduced costs and ratio tests.
const EPS: f64 = 1e-9;

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Minimal objective value.
    pub objective: f64,
    /// Optimal values of the model's structural variables.
    pub x: Vec<f64>,
    /// Total simplex pivots performed across both phases (for the
    /// LP-vs-linear-algorithm ablation).
    pub pivots: usize,
}

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point (phase 1 ended with a positive artificial sum).
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The pivot limit was exceeded (numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded below"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

struct Tableau {
    /// Constraint rows; the last column is the right-hand side.
    a: Matrix,
    /// Reduced-cost row (same column layout, rhs slot holds −objective).
    obj: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// First artificial column (artificials occupy `art_start..rhs_col`).
    art_start: usize,
    rhs_col: usize,
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.a[(r, self.rhs_col)]
    }

    /// One simplex pivot: enter column `j`, leave row `r`.
    fn pivot(&mut self, r: usize, j: usize) {
        let piv = self.a[(r, j)];
        debug_assert!(piv.abs() > EPS, "pivot on near-zero element");
        self.a.scale_row(r, 1.0 / piv);
        for i in 0..self.a.rows() {
            if i != r {
                let f = self.a[(i, j)];
                if f != 0.0 {
                    self.a.axpy_rows(i, r, -f);
                }
            }
        }
        let f = self.obj[j];
        if f != 0.0 {
            for c in 0..self.obj.len() {
                self.obj[c] -= f * self.a[(r, c)];
            }
        }
        self.basis[r] = j;
    }

    /// Run Bland-rule simplex on the current objective row.
    /// `allowed` limits the entering columns (used to ban artificials in
    /// phase 2).
    fn optimize(&mut self, allowed_cols: usize, pivots: &mut usize) -> Result<(), LpError> {
        let m = self.a.rows();
        let limit = 200 * (m + allowed_cols) + 1000;
        loop {
            // Bland: first column with negative reduced cost.
            let Some(j) = (0..allowed_cols).find(|&c| self.obj[c] < -EPS) else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on the leaving basic variable.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..m {
                let arj = self.a[(r, j)];
                if arj > EPS {
                    let ratio = self.rhs(r) / arj;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((r, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(r, j);
            *pivots += 1;
            if *pivots > limit {
                return Err(LpError::IterationLimit);
            }
        }
    }
}

/// Solve the model with two-phase primal simplex.
pub fn solve(model: &Model) -> Result<LpSolution, LpError> {
    let n = model.num_vars();
    let m = model.num_constraints();
    if m == 0 {
        // With x ≥ 0 and minimization, the optimum puts every positively
        // priced variable at 0; any negatively priced variable is unbounded.
        if model.costs.iter().any(|&c| c < -EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(LpSolution { objective: 0.0, x: vec![0.0; n], pivots: 0 });
    }

    // Normalize rows to rhs ≥ 0 and count auxiliary columns.
    let mut senses = Vec::with_capacity(m);
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    for con in &model.constraints {
        let mut row = vec![0.0; n];
        for &(v, coef) in &con.terms {
            row[v.0] += coef;
        }
        let (row, sense, b) = if con.rhs < 0.0 {
            let flipped = match con.sense {
                ConstraintSense::Le => ConstraintSense::Ge,
                ConstraintSense::Ge => ConstraintSense::Le,
                ConstraintSense::Eq => ConstraintSense::Eq,
            };
            (row.iter().map(|x| -x).collect(), flipped, -con.rhs)
        } else {
            (row, con.sense, con.rhs)
        };
        senses.push(sense);
        rows.push(row);
        rhs.push(b);
    }

    let n_slack = senses
        .iter()
        .filter(|s| matches!(s, ConstraintSense::Le | ConstraintSense::Ge))
        .count();
    let n_art = senses
        .iter()
        .filter(|s| matches!(s, ConstraintSense::Ge | ConstraintSense::Eq))
        .count();
    let slack_start = n;
    let art_start = n + n_slack;
    let rhs_col = art_start + n_art;
    let total = rhs_col + 1;

    let mut a = Matrix::zeros(m, total);
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = slack_start;
    let mut next_art = art_start;
    for r in 0..m {
        for c in 0..n {
            a[(r, c)] = rows[r][c];
        }
        a[(r, rhs_col)] = rhs[r];
        match senses[r] {
            ConstraintSense::Le => {
                a[(r, next_slack)] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            ConstraintSense::Ge => {
                a[(r, next_slack)] = -1.0;
                next_slack += 1;
                a[(r, next_art)] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            ConstraintSense::Eq => {
                a[(r, next_art)] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau { a, obj: vec![0.0; total], basis, art_start, rhs_col };
    let mut pivots = 0usize;

    // ---- Phase 1: minimize the artificial sum. ----
    if n_art > 0 {
        for c in t.art_start..t.rhs_col {
            t.obj[c] = 1.0;
        }
        // Reduce against the rows whose basic variable is artificial.
        for r in 0..m {
            if t.basis[r] >= t.art_start {
                for c in 0..total {
                    t.obj[c] -= t.a[(r, c)];
                }
            }
        }
        t.optimize(rhs_col, &mut pivots)?;
        let phase1 = -t.obj[rhs_col];
        if phase1 > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining (zero-valued) artificials out of the basis.
        for r in 0..m {
            if t.basis[r] >= t.art_start {
                if let Some(j) = (0..t.art_start).find(|&c| t.a[(r, c)].abs() > EPS) {
                    t.pivot(r, j);
                    pivots += 1;
                }
                // Otherwise the row is redundant; the artificial stays basic
                // at value 0 and artificials are banned from re-entering.
            }
        }
    }

    // ---- Phase 2: original objective. ----
    t.obj.iter_mut().for_each(|c| *c = 0.0);
    for (c, &cost) in model.costs.iter().enumerate() {
        t.obj[c] = cost;
    }
    for r in 0..m {
        let b = t.basis[r];
        if b < n && model.costs[b] != 0.0 {
            let f = t.obj[b];
            if f != 0.0 {
                for c in 0..total {
                    t.obj[c] -= f * t.a[(r, c)];
                }
            }
        }
    }
    t.optimize(t.art_start, &mut pivots)?; // artificials banned from entering

    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.rhs(r);
        }
    }
    let objective = model.costs.iter().zip(&x).map(|(c, v)| c * v).sum();
    Ok(LpSolution { objective, x, pivots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense::*, Model};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn simple_le_problem() {
        // min -x - y  s.t.  x + 2y <= 4, 3x + y <= 6  →  x=1.6, y=1.2.
        let mut m = Model::minimize();
        let x = m.add_var("x", -1.0);
        let y = m.add_var("y", -1.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Le, 4.0);
        m.add_constraint(vec![(x, 3.0), (y, 1.0)], Le, 6.0);
        let s = solve(&m).unwrap();
        assert!(approx(s.objective, -2.8), "obj = {}", s.objective);
        assert!(approx(s.x[0], 1.6));
        assert!(approx(s.x[1], 1.2));
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min 2x + 3y  s.t.  x + y >= 10, x >= 3  →  x=10 (cheaper), y=0? No:
        // cost of x is 2 < 3 = cost of y, so x = 10, y = 0, obj = 20.
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0);
        let y = m.add_var("y", 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 10.0);
        m.add_constraint(vec![(x, 1.0)], Ge, 3.0);
        let s = solve(&m).unwrap();
        assert!(approx(s.objective, 20.0));
        assert!(approx(s.x[0], 10.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y  s.t.  x + 2y = 6, x - y = 0  →  x = y = 2, obj = 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Eq, 6.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Eq, 0.0);
        let s = solve(&m).unwrap();
        assert!(approx(s.objective, 4.0));
        assert!(approx(s.x[0], 2.0));
        assert!(approx(s.x[1], 2.0));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 with x,y >= 0: means y >= x + 2.
        // min y  →  x = 0, y = 2.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Le, -2.0);
        let s = solve(&m).unwrap();
        assert!(approx(s.objective, 2.0));
        assert!(approx(s.x[1], 2.0));
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 3.
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        m.add_constraint(vec![(x, 1.0)], Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Ge, 3.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x  s.t.  x >= 1  →  unbounded below.
        let mut m = Model::minimize();
        let x = m.add_var("x", -1.0);
        m.add_constraint(vec![(x, 1.0)], Ge, 1.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn no_constraints_trivial_optimum() {
        let mut m = Model::minimize();
        m.add_var("x", 3.0);
        let s = solve(&m).unwrap();
        assert_eq!(s.objective, 0.0);
        assert_eq!(s.x, vec![0.0]);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::minimize();
        m.add_var("x", -3.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple identical constraints create degeneracy; Bland's rule
        // must still terminate.
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        for _ in 0..5 {
            m.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 4.0);
        }
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Le, 4.0);
        let s = solve(&m).unwrap();
        assert!(approx(s.objective, 4.0));
    }

    #[test]
    fn redundant_equalities_leave_artificial_basic_at_zero() {
        // Second equality is a duplicate → redundant row in phase 1.
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 5.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Eq, 10.0);
        let s = solve(&m).unwrap();
        assert!(approx(s.objective, 5.0)); // all weight on x (cheaper)
        assert!(approx(s.x[0], 5.0));
    }

    #[test]
    fn pivots_are_counted() {
        let mut m = Model::minimize();
        let x = m.add_var("x", -1.0);
        m.add_constraint(vec![(x, 1.0)], Le, 7.0);
        let s = solve(&m).unwrap();
        assert!(s.pivots >= 1);
        assert!(approx(s.objective, -7.0));
    }
}
