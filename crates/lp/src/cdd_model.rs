//! Fixed-sequence LP models for CDD and UCDDCP (paper Section III).
//!
//! For a fixed job order (all `δᵢⱼ` of the 0-1 formulation decided), the
//! remaining problem in `Cᵢ`, `Eᵢ`, `Tᵢ` (and `Xᵢ`) is a linear program:
//!
//! ```text
//! min Σ (αᵢEᵢ + βᵢTᵢ + γᵢXᵢ)
//! s.t. Eᵢ + Cᵢ ≥ d                       (Eᵢ ≥ d − Cᵢ)
//!      Tᵢ − Cᵢ ≥ −d                      (Tᵢ ≥ Cᵢ − d)
//!      C_{σ(1)} + X_{σ(1)} ≥ P_{σ(1)}    (first job starts at t ≥ 0)
//!      C_{σ(k)} − C_{σ(k−1)} + X_{σ(k)} ≥ P_{σ(k)}   (no overlap)
//!      Xᵢ ≤ Pᵢ − Mᵢ
//!      Cᵢ, Eᵢ, Tᵢ, Xᵢ ≥ 0
//! ```
//!
//! Idle time is permitted by the model (`≥`), but an optimum without idle
//! always exists (Cheng & Kahlbacher), so the LP optimum equals the O(n)
//! combinatorial optimum of `cdd-core` — the property the tests assert.

use crate::model::{ConstraintSense::*, Model, VarId};
use crate::simplex::LpError;
use cdd_core::{Instance, JobSequence, ProblemKind};

/// Solution of a fixed-sequence LP.
#[derive(Debug, Clone)]
pub struct LpSequenceSolution {
    /// Minimal total penalty (continuous relaxation — matches the integral
    /// combinatorial optimum for these models).
    pub objective: f64,
    /// Optimal completion time per **job id**.
    pub completions: Vec<f64>,
    /// Optimal compression per **job id** (all zeros for CDD).
    pub compressions: Vec<f64>,
    /// Simplex pivots used (for the LP-vs-linear ablation).
    pub pivots: usize,
}

struct JobVars {
    c: Vec<VarId>,
    x: Option<Vec<VarId>>,
}

fn build(inst: &Instance, seq: &JobSequence, with_compression: bool) -> (Model, JobVars) {
    let n = inst.n();
    let d = inst.due_date() as f64;
    let mut m = Model::minimize();

    let c: Vec<VarId> = (0..n).map(|i| m.add_var(format!("C_{i}"), 0.0)).collect();
    let e: Vec<VarId> = (0..n)
        .map(|i| m.add_var(format!("E_{i}"), inst.job(i).earliness_penalty as f64))
        .collect();
    let t: Vec<VarId> = (0..n)
        .map(|i| m.add_var(format!("T_{i}"), inst.job(i).tardiness_penalty as f64))
        .collect();
    let x: Option<Vec<VarId>> = with_compression.then(|| {
        (0..n)
            .map(|i| m.add_var(format!("X_{i}"), inst.job(i).compression_penalty as f64))
            .collect()
    });

    for i in 0..n {
        m.add_constraint(vec![(e[i], 1.0), (c[i], 1.0)], Ge, d);
        m.add_constraint(vec![(t[i], 1.0), (c[i], -1.0)], Ge, -d);
        if let Some(x) = &x {
            m.add_constraint(
                vec![(x[i], 1.0)],
                Le,
                inst.job(i).max_compression() as f64,
            );
        }
    }
    for k in 0..n {
        let j = seq.job_at(k) as usize;
        let mut terms = vec![(c[j], 1.0)];
        if k > 0 {
            terms.push((c[seq.job_at(k - 1) as usize], -1.0));
        }
        if let Some(x) = &x {
            terms.push((x[j], 1.0));
        }
        m.add_constraint(terms, Ge, inst.job(j).processing as f64);
    }
    (m, JobVars { c, x })
}

fn extract(model_sol: crate::simplex::LpSolution, vars: JobVars, n: usize) -> LpSequenceSolution {
    let completions = vars.c.iter().map(|v| model_sol.x[v.0]).collect();
    let compressions = match vars.x {
        Some(xs) => xs.iter().map(|v| model_sol.x[v.0]).collect(),
        None => vec![0.0; n],
    };
    LpSequenceSolution {
        objective: model_sol.objective,
        completions,
        compressions,
        pivots: model_sol.pivots,
    }
}

/// Solve the fixed-sequence **CDD** LP for `seq`.
pub fn solve_cdd_sequence_lp(
    inst: &Instance,
    seq: &JobSequence,
) -> Result<LpSequenceSolution, LpError> {
    assert_eq!(seq.len(), inst.n(), "sequence/instance size mismatch");
    let (m, vars) = build(inst, seq, false);
    Ok(extract(m.solve()?, vars, inst.n()))
}

/// Solve the fixed-sequence **UCDDCP** LP (with continuous compressions)
/// for `seq`.
pub fn solve_ucddcp_sequence_lp(
    inst: &Instance,
    seq: &JobSequence,
) -> Result<LpSequenceSolution, LpError> {
    assert_eq!(seq.len(), inst.n(), "sequence/instance size mismatch");
    assert_eq!(inst.kind(), ProblemKind::Ucddcp, "requires a UCDDCP instance");
    let (m, vars) = build(inst, seq, true);
    Ok(extract(m.solve()?, vars, inst.n()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::{optimize_cdd_sequence, optimize_ucddcp_sequence, Instance, JobSequence};

    #[test]
    fn paper_cdd_example_lp_matches_81() {
        let inst = Instance::paper_example_cdd();
        let seq = JobSequence::identity(5);
        let sol = solve_cdd_sequence_lp(&inst, &seq).unwrap();
        assert!((sol.objective - 81.0).abs() < 1e-6, "objective = {}", sol.objective);
    }

    #[test]
    fn paper_ucddcp_example_lp_matches_77() {
        let inst = Instance::paper_example_ucddcp();
        let seq = JobSequence::identity(5);
        let sol = solve_ucddcp_sequence_lp(&inst, &seq).unwrap();
        assert!((sol.objective - 77.0).abs() < 1e-6, "objective = {}", sol.objective);
        // Jobs 4 and 5 (ids 3, 4) compressed by exactly 1 in the paper.
        assert!((sol.compressions[3] - 1.0).abs() < 1e-6);
        assert!((sol.compressions[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lp_completions_respect_sequence() {
        let inst = Instance::paper_example_cdd();
        let seq = JobSequence::from_vec(vec![4, 2, 0, 1, 3]).unwrap();
        let sol = solve_cdd_sequence_lp(&inst, &seq).unwrap();
        // Completion times strictly increase along the sequence.
        for k in 1..5 {
            let prev = sol.completions[seq.job_at(k - 1) as usize];
            let cur = sol.completions[seq.job_at(k) as usize];
            assert!(cur > prev, "position {k}: {cur} <= {prev}");
        }
    }

    #[test]
    fn lp_matches_linear_algorithm_on_many_random_cases() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..40 {
            let n = rng.gen_range(1..=10);
            let p: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
            let a: Vec<i64> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
            let b: Vec<i64> = (0..n).map(|_| rng.gen_range(0..=15)).collect();
            let h = [0.2, 0.4, 0.6, 0.8, 1.0][trial % 5];
            let d = (p.iter().sum::<i64>() as f64 * h) as i64;
            let inst = Instance::cdd_from_arrays(&p, &a, &b, d).unwrap();
            let seq = JobSequence::random(n, &mut rng);
            let fast = optimize_cdd_sequence(&inst, &seq).objective as f64;
            let lp = solve_cdd_sequence_lp(&inst, &seq).unwrap().objective;
            assert!(
                (fast - lp).abs() < 1e-5,
                "trial {trial}: linear {fast} vs LP {lp}\ninst={inst:?}\nseq={seq:?}"
            );
        }
    }

    /// The continuous LP also validates Property 2 (full-or-nothing
    /// compression is optimal): its optimum must equal the combinatorial
    /// optimum that only considers full compression.
    #[test]
    fn ucddcp_lp_matches_linear_algorithm_on_many_random_cases() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2015);
        for trial in 0..40 {
            let n = rng.gen_range(1..=10);
            let p: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
            let m: Vec<i64> = p.iter().map(|&pi| rng.gen_range(1..=pi)).collect();
            let a: Vec<i64> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
            let b: Vec<i64> = (0..n).map(|_| rng.gen_range(0..=15)).collect();
            let g: Vec<i64> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
            let total: i64 = p.iter().sum();
            let d = total + rng.gen_range(0..=total / 2);
            let inst = Instance::ucddcp_from_arrays(&p, &m, &a, &b, &g, d).unwrap();
            let seq = JobSequence::random(n, &mut rng);
            let fast = optimize_ucddcp_sequence(&inst, &seq).objective as f64;
            let lp = solve_ucddcp_sequence_lp(&inst, &seq).unwrap().objective;
            assert!(
                (fast - lp).abs() < 1e-5,
                "trial {trial}: linear {fast} vs LP {lp}\ninst={inst:?}\nseq={seq:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires a UCDDCP instance")]
    fn ucddcp_lp_rejects_cdd_instance() {
        let inst = Instance::paper_example_cdd();
        let _ = solve_ucddcp_sequence_lp(&inst, &JobSequence::identity(5));
    }
}
