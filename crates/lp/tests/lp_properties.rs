//! Property-based validation of the simplex solver and the fixed-sequence
//! LP models: the continuous LP optimum must equal the O(n) combinatorial
//! optimum on arbitrary instances/sequences — the strongest independent
//! check of both layers (and of the paper's Properties 1–2).

use cdd_core::{optimize_cdd_sequence, optimize_ucddcp_sequence, Instance, JobSequence, Time};
use cdd_lp::{solve_cdd_sequence_lp, solve_ucddcp_sequence_lp};
use cdd_lp::{ConstraintSense, Model};
use proptest::prelude::*;

fn cdd_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (1..=max_n).prop_flat_map(|n| {
        (
            prop::collection::vec(1..=20i64, n),
            prop::collection::vec(0..=10i64, n),
            prop::collection::vec(0..=15i64, n),
            0.0..1.3f64,
        )
            .prop_map(|(p, a, b, h)| {
                let d = (p.iter().sum::<Time>() as f64 * h) as Time;
                Instance::cdd_from_arrays(&p, &a, &b, d).expect("valid")
            })
    })
}

fn ucddcp_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (1..=max_n).prop_flat_map(|n| {
        (
            prop::collection::vec((1..=20i64, 0..=10i64, 0..=15i64, 0..=10i64, 0..=19i64), n),
            0.0..0.5f64,
        )
            .prop_map(|(rows, slack)| {
                let p: Vec<Time> = rows.iter().map(|r| r.0).collect();
                let m: Vec<Time> = rows.iter().map(|r| 1 + (r.4 % r.0)).collect();
                let a: Vec<Time> = rows.iter().map(|r| r.1).collect();
                let b: Vec<Time> = rows.iter().map(|r| r.2).collect();
                let g: Vec<Time> = rows.iter().map(|r| r.3).collect();
                let total: Time = p.iter().sum();
                let d = total + (total as f64 * slack) as Time;
                Instance::ucddcp_from_arrays(&p, &m, &a, &b, &g, d).expect("valid")
            })
    })
}

fn sequence_for(n: usize, seed: u64) -> JobSequence {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    JobSequence::random(n, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Simplex(LP model) == O(n) algorithm, CDD.
    #[test]
    fn lp_equals_linear_cdd(inst in cdd_instance(12), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        let fast = optimize_cdd_sequence(&inst, &seq).objective as f64;
        let lp = solve_cdd_sequence_lp(&inst, &seq).expect("feasible").objective;
        prop_assert!((fast - lp).abs() < 1e-5, "linear {fast} vs LP {lp}");
    }

    /// Simplex(LP model) == O(n) algorithm, UCDDCP — validates that
    /// continuous compression never beats full-or-nothing (Property 2).
    #[test]
    fn lp_equals_linear_ucddcp(inst in ucddcp_instance(10), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        let fast = optimize_ucddcp_sequence(&inst, &seq).objective as f64;
        let lp = solve_ucddcp_sequence_lp(&inst, &seq).expect("feasible").objective;
        prop_assert!((fast - lp).abs() < 1e-5, "linear {fast} vs LP {lp}");
    }

    /// LP completion times are themselves a feasible schedule whose cost
    /// matches the LP objective (primal feasibility spot-check).
    #[test]
    fn lp_solution_is_feasible(inst in cdd_instance(10), seed in any::<u64>()) {
        let seq = sequence_for(inst.n(), seed);
        let sol = solve_cdd_sequence_lp(&inst, &seq).expect("feasible");
        let d = inst.due_date() as f64;
        let mut prev_completion = 0.0f64;
        let mut cost = 0.0;
        for k in 0..inst.n() {
            let j = seq.job_at(k) as usize;
            let c = sol.completions[j];
            let p = inst.job(j).processing as f64;
            prop_assert!(c >= prev_completion + p - 1e-6,
                "overlap at position {k}: {c} < {prev_completion} + {p}");
            prev_completion = c;
            cost += inst.job(j).earliness_penalty as f64 * (d - c).max(0.0)
                  + inst.job(j).tardiness_penalty as f64 * (c - d).max(0.0);
        }
        prop_assert!((cost - sol.objective).abs() < 1e-4,
            "recomputed {cost} vs LP {}", sol.objective);
    }

    /// Random small LPs with box constraints: simplex never returns a point
    /// violating its own constraints, and the objective matches c·x.
    #[test]
    fn simplex_primal_feasibility(
        costs in prop::collection::vec(-5.0..5.0f64, 1..5),
        bounds in prop::collection::vec(0.5..10.0f64, 1..5),
    ) {
        let n = costs.len().min(bounds.len());
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..n).map(|i| m.add_var(format!("x{i}"), costs[i])).collect();
        for (i, &v) in vars.iter().enumerate() {
            m.add_constraint(vec![(v, 1.0)], ConstraintSense::Le, bounds[i]);
        }
        // Bounded box → always solvable.
        let sol = m.solve().expect("box LP is feasible and bounded");
        let mut expect = 0.0;
        for i in 0..n {
            prop_assert!(sol.x[i] >= -1e-9 && sol.x[i] <= bounds[i] + 1e-9);
            // Optimal box solution: full bound when cost < 0, else 0.
            let opt = if costs[i] < 0.0 { bounds[i] } else { 0.0 };
            prop_assert!((sol.x[i] - opt).abs() < 1e-7);
            expect += costs[i] * opt;
        }
        prop_assert!((sol.objective - expect).abs() < 1e-7);
    }
}
