//! # cdd-instances
//!
//! Benchmark instances for the CDD and UCDDCP problems.
//!
//! The paper evaluates on the **OR-library** common-due-date benchmarks of
//! Biskup & Feldmann ("Benchmarks for scheduling on a single machine against
//! restrictive and unrestrictive common due dates") — job sizes
//! `n ∈ {10, 20, 50, 100, 200, 500, 1000}`, ten instances per size, four
//! restrictive factors `h ∈ {0.2, 0.4, 0.6, 0.8}` (so "40 different
//! instances for each job size"), with integer data
//! `Pᵢ ~ U[1,20]`, `αᵢ ~ U[1,10]`, `βᵢ ~ U[1,15]` and due date
//! `d = ⌊h · Σ Pᵢ⌋`. The UCDDCP instances of Awasthi et al. [8] derive from
//! the same data with compression bounds and penalties added.
//!
//! **Substitution note (see DESIGN.md):** the original `sch*.dat` files are
//! not redistributable/downloadable in this offline environment, so
//! [`biskup_feldmann`] *re-generates* instances with the published
//! distributions, deterministically from `(n, k)`. The [`orlib`] module
//! reads and writes the OR-library text format, so the authentic files can
//! be dropped in transparently if available.

pub mod best_known;
pub mod biskup_feldmann;
pub mod catalog;
pub mod orlib;
pub mod ucddcp_gen;

pub use best_known::BestKnown;
pub use biskup_feldmann::{cdd_instance, raw_job_data, RawJobData};
pub use catalog::{InstanceId, Suite, PAPER_H_VALUES, PAPER_SIZES};
pub use ucddcp_gen::ucddcp_instance;
