//! UCDDCP benchmark instances, following Awasthi et al. [8].
//!
//! Reference [8] derives its controllable-processing-time instances from the
//! same OR-library job data, adding a minimum processing time `Mᵢ`, a
//! compression penalty `γᵢ` and an unrestricted due date. We reproduce that
//! construction deterministically:
//!
//! * `Mᵢ ~ U[1, Pᵢ]` — every job retains at least one time unit,
//! * `γᵢ ~ U[1, 10]` — same magnitude as the earliness rates,
//! * `d = Σ Pᵢ + U[0, ⌊Σ Pᵢ / 4⌋]` — unrestricted with moderate slack.
//!
//! The extension RNG is seeded independently of the base-data RNG so CDD and
//! UCDDCP instances of the same `(n, k)` share identical `P`, `α`, `β`.

use crate::biskup_feldmann::{instance_seed, raw_job_data};
use cdd_core::{Instance, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compression penalty rate bounds.
pub const COMPRESSION_RANGE: (Time, Time) = (1, 10);

/// Generate UCDDCP benchmark instance `(n, k)`.
///
/// # Panics
/// Panics if `n == 0` or `k ∉ 1..=10` (as for the CDD generator).
pub fn ucddcp_instance(n: usize, k: u32) -> Instance {
    let raw = raw_job_data(n, k);
    let mut rng = StdRng::seed_from_u64(instance_seed(0x000C_0FFE_ECDD, n, k));
    let min_processing: Vec<Time> =
        raw.processing.iter().map(|&p| rng.gen_range(1..=p)).collect();
    let compression: Vec<Time> =
        (0..n).map(|_| rng.gen_range(COMPRESSION_RANGE.0..=COMPRESSION_RANGE.1)).collect();
    let total = raw.total_processing();
    let d = total + rng.gen_range(0..=total / 4);
    Instance::ucddcp_from_arrays(
        &raw.processing,
        &min_processing,
        &raw.earliness,
        &raw.tardiness,
        &compression,
        d,
    )
    .expect("generated data is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::ProblemKind;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(ucddcp_instance(50, 7), ucddcp_instance(50, 7));
    }

    #[test]
    fn instances_are_unrestricted_ucddcp() {
        for k in 1..=10 {
            let inst = ucddcp_instance(20, k);
            assert_eq!(inst.kind(), ProblemKind::Ucddcp);
            assert!(inst.is_unrestricted());
            assert!(inst.due_date() >= inst.total_processing());
        }
    }

    #[test]
    fn shares_base_data_with_cdd_generator() {
        let cdd = crate::biskup_feldmann::cdd_instance(30, 4, 0.6);
        let uc = ucddcp_instance(30, 4);
        for i in 0..30 {
            assert_eq!(cdd.job(i).processing, uc.job(i).processing);
            assert_eq!(cdd.job(i).earliness_penalty, uc.job(i).earliness_penalty);
            assert_eq!(cdd.job(i).tardiness_penalty, uc.job(i).tardiness_penalty);
        }
    }

    #[test]
    fn compression_fields_respect_bounds() {
        let inst = ucddcp_instance(200, 2);
        for job in inst.jobs() {
            assert!(job.min_processing >= 1 && job.min_processing <= job.processing);
            assert!((1..=10).contains(&job.compression_penalty));
        }
    }

    #[test]
    fn some_jobs_are_compressible() {
        // Statistically certain for n = 200: at least one job with Mᵢ < Pᵢ.
        let inst = ucddcp_instance(200, 5);
        assert!(inst.jobs().iter().any(|j| j.max_compression() > 0));
    }
}
