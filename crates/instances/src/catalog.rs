//! Enumeration of the paper's benchmark suites.

use crate::{biskup_feldmann, ucddcp_gen};
use cdd_core::Instance;
use std::fmt;

/// Job sizes evaluated in the paper (Tables II–V).
pub const PAPER_SIZES: [usize; 7] = [10, 20, 50, 100, 200, 500, 1000];

/// Restrictive factors of the OR-library benchmark.
pub const PAPER_H_VALUES: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

/// Instances per `(n, h)` class in the OR-library benchmark.
pub const INSTANCES_PER_CLASS: u32 = 10;

/// Identifier of one benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceId {
    /// Job count.
    pub n: usize,
    /// Instance number within the size class (`1..=10`).
    pub k: u32,
    /// Restrictive factor (`None` for UCDDCP — its due date is generated,
    /// not derived from `h`).
    pub h: Option<f64>,
}

impl InstanceId {
    /// CDD identifier `(n, k, h)`.
    pub fn cdd(n: usize, k: u32, h: f64) -> Self {
        InstanceId { n, k, h: Some(h) }
    }

    /// UCDDCP identifier `(n, k)`.
    pub fn ucddcp(n: usize, k: u32) -> Self {
        InstanceId { n, k, h: None }
    }

    /// Materialize the instance.
    pub fn instantiate(&self) -> Instance {
        match self.h {
            Some(h) => biskup_feldmann::cdd_instance(self.n, self.k, h),
            None => ucddcp_gen::ucddcp_instance(self.n, self.k),
        }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.h {
            Some(h) => write!(f, "cdd-n{}-k{}-h{:.1}", self.n, self.k, h),
            None => write!(f, "ucddcp-n{}-k{}", self.n, self.k),
        }
    }
}

/// A set of benchmark instances (one evaluation campaign).
#[derive(Debug, Clone)]
pub struct Suite {
    /// Human-readable suite name (used in reports).
    pub name: String,
    /// Member instances.
    pub ids: Vec<InstanceId>,
}

impl Suite {
    /// The paper's full CDD evaluation suite: every size in [`PAPER_SIZES`]
    /// × 10 instances × 4 restrictive factors (40 per size).
    pub fn paper_cdd() -> Self {
        Self::cdd_for_sizes(&PAPER_SIZES)
    }

    /// CDD suite restricted to the given sizes (40 instances per size).
    pub fn cdd_for_sizes(sizes: &[usize]) -> Self {
        let mut ids = Vec::new();
        for &n in sizes {
            for k in 1..=INSTANCES_PER_CLASS {
                for &h in &PAPER_H_VALUES {
                    ids.push(InstanceId::cdd(n, k, h));
                }
            }
        }
        Suite { name: format!("cdd-sizes-{sizes:?}"), ids }
    }

    /// The paper's full UCDDCP suite: every size × 10 instances.
    pub fn paper_ucddcp() -> Self {
        Self::ucddcp_for_sizes(&PAPER_SIZES)
    }

    /// UCDDCP suite restricted to the given sizes (10 instances per size).
    pub fn ucddcp_for_sizes(sizes: &[usize]) -> Self {
        let mut ids = Vec::new();
        for &n in sizes {
            for k in 1..=INSTANCES_PER_CLASS {
                ids.push(InstanceId::ucddcp(n, k));
            }
        }
        Suite { name: format!("ucddcp-sizes-{sizes:?}"), ids }
    }

    /// Member identifiers of one size class.
    pub fn of_size(&self, n: usize) -> impl Iterator<Item = &InstanceId> {
        self.ids.iter().filter(move |id| id.n == n)
    }

    /// Distinct sizes present, ascending.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.ids.iter().map(|id| id.n).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cdd_suite_has_40_per_size() {
        let suite = Suite::paper_cdd();
        assert_eq!(suite.ids.len(), 7 * 40);
        for &n in &PAPER_SIZES {
            assert_eq!(suite.of_size(n).count(), 40);
        }
        assert_eq!(suite.sizes(), PAPER_SIZES.to_vec());
    }

    #[test]
    fn paper_ucddcp_suite_has_10_per_size() {
        let suite = Suite::paper_ucddcp();
        assert_eq!(suite.ids.len(), 70);
        assert_eq!(suite.of_size(200).count(), 10);
    }

    #[test]
    fn ids_display_uniquely() {
        let suite = Suite::paper_cdd();
        let mut names: Vec<String> = suite.ids.iter().map(|id| id.to_string()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn id_instantiates_matching_instance() {
        let id = InstanceId::cdd(20, 3, 0.4);
        let inst = id.instantiate();
        assert_eq!(inst.n(), 20);
        assert!((inst.restrictive_factor() - 0.4).abs() < 0.05);

        let id = InstanceId::ucddcp(20, 3);
        let inst = id.instantiate();
        assert!(inst.is_unrestricted());
    }

    #[test]
    fn display_format_examples() {
        assert_eq!(InstanceId::cdd(100, 7, 0.6).to_string(), "cdd-n100-k7-h0.6");
        assert_eq!(InstanceId::ucddcp(50, 2).to_string(), "ucddcp-n50-k2");
    }
}
