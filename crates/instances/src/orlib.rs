//! Reader/writer for the OR-library common-due-date text format.
//!
//! The OR-library distributes one file per job size (`sch10`, `sch20`, …)
//! with the layout:
//!
//! ```text
//! K                  ← number of instances in the file (10)
//! n                  ← jobs in instance 1
//! p₁ a₁ b₁           ← processing, earliness rate, tardiness rate
//! …                  (n rows)
//! n                  ← jobs in instance 2
//! …
//! ```
//!
//! Due dates are *not* stored; they are derived as `d = ⌊h · Σ pᵢ⌋` by the
//! consumer. This module lets authentic OR-library files replace our
//! re-generated data transparently (see the crate docs).

use crate::biskup_feldmann::RawJobData;
use cdd_core::Time;
use std::fmt::Write as _;

/// Parse a whole OR-library file into its raw instances.
///
/// Instance numbers `k` are assigned `1..=K` in file order.
pub fn parse_orlib(text: &str) -> Result<Vec<RawJobData>, String> {
    let mut tokens = text.split_whitespace().map(|t| {
        t.parse::<i64>().map_err(|e| format!("bad token {t:?}: {e}"))
    });
    let mut next = |what: &str| -> Result<i64, String> {
        tokens.next().ok_or_else(|| format!("unexpected end of file, expected {what}"))?
    };

    let count = next("instance count")?;
    if count < 1 {
        return Err(format!("instance count must be >= 1, got {count}"));
    }
    let mut out = Vec::with_capacity(count as usize);
    for k in 1..=count {
        let n = next("job count")?;
        if n < 1 {
            return Err(format!("instance {k}: job count must be >= 1, got {n}"));
        }
        let n = n as usize;
        let mut processing = Vec::with_capacity(n);
        let mut earliness = Vec::with_capacity(n);
        let mut tardiness = Vec::with_capacity(n);
        for row in 0..n {
            let p = next("processing time")?;
            let a = next("earliness penalty")?;
            let b = next("tardiness penalty")?;
            if p < 1 {
                return Err(format!("instance {k} row {row}: processing {p} < 1"));
            }
            if a < 0 || b < 0 {
                return Err(format!("instance {k} row {row}: negative penalty"));
            }
            processing.push(p as Time);
            earliness.push(a as Time);
            tardiness.push(b as Time);
        }
        out.push(RawJobData { n, k: k as u32, processing, earliness, tardiness });
    }
    if tokens.next().is_some() {
        return Err("trailing tokens after last instance".into());
    }
    Ok(out)
}

/// Render instances in the OR-library format (inverse of [`parse_orlib`]).
pub fn write_orlib(instances: &[RawJobData]) -> String {
    let mut out = String::new();
    writeln!(out, "{}", instances.len()).expect("writing to String cannot fail");
    for inst in instances {
        writeln!(out, "{}", inst.n).expect("writing to String cannot fail");
        for i in 0..inst.n {
            writeln!(out, "{} {} {}", inst.processing[i], inst.earliness[i], inst.tardiness[i])
                .expect("writing to String cannot fail");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biskup_feldmann::raw_job_data;

    const SAMPLE: &str = "2\n3\n5 1 2\n7 3 4\n2 5 6\n1\n10 1 1\n";

    #[test]
    fn parses_well_formed_file() {
        let v = parse_orlib(SAMPLE).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].n, 3);
        assert_eq!(v[0].k, 1);
        assert_eq!(v[0].processing, vec![5, 7, 2]);
        assert_eq!(v[0].earliness, vec![1, 3, 5]);
        assert_eq!(v[0].tardiness, vec![2, 4, 6]);
        assert_eq!(v[1].n, 1);
        assert_eq!(v[1].k, 2);
    }

    #[test]
    fn round_trip_through_writer() {
        let original = vec![raw_job_data(10, 1), raw_job_data(10, 2)];
        let text = write_orlib(&original);
        let parsed = parse_orlib(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        for (a, b) in original.iter().zip(&parsed) {
            assert_eq!(a.processing, b.processing);
            assert_eq!(a.earliness, b.earliness);
            assert_eq!(a.tardiness, b.tardiness);
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let err = parse_orlib("1\n3\n5 1 2\n7 3\n").unwrap_err();
        assert!(err.contains("unexpected end"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_orlib("1\n1\n5 1 2\n9\n").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn non_numeric_rejected() {
        let err = parse_orlib("1\n1\n5 x 2\n").unwrap_err();
        assert!(err.contains("bad token"), "{err}");
    }

    #[test]
    fn invalid_values_rejected() {
        assert!(parse_orlib("1\n1\n0 1 1\n").unwrap_err().contains("processing"));
        assert!(parse_orlib("1\n1\n5 -1 1\n").unwrap_err().contains("negative"));
        assert!(parse_orlib("0\n").unwrap_err().contains("count"));
    }

    #[test]
    fn parsed_data_materializes_instances() {
        let v = parse_orlib(SAMPLE).unwrap();
        let inst = v[0].with_restrictive_factor(0.5);
        assert_eq!(inst.due_date(), 7); // ⌊0.5 · 14⌋
        assert_eq!(inst.n(), 3);
    }
}
