//! Deterministic re-generation of the Biskup–Feldmann OR-library job data.
//!
//! Every instance is identified by `(n, k)` — job count and instance number
//! `1..=10` — exactly as in the OR-library files `sch<n>.dat`. The job data
//! is independent of the restrictive factor `h`; the due date
//! `d = ⌊h · Σ Pᵢ⌋` is applied when materializing a [`cdd_core::Instance`].
//!
//! Generation is fully deterministic: the RNG is seeded from `(n, k)` with a
//! SplitMix64 hash, so every crate in the workspace sees identical data for
//! the same identifier, across runs and platforms.

use cdd_core::{Instance, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Published distribution bounds of the benchmark set.
pub const PROCESSING_RANGE: (Time, Time) = (1, 20);
/// Earliness penalty rate bounds.
pub const EARLINESS_RANGE: (Time, Time) = (1, 10);
/// Tardiness penalty rate bounds.
pub const TARDINESS_RANGE: (Time, Time) = (1, 15);

/// The `h`-independent part of a benchmark instance: raw per-job data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawJobData {
    /// Job count `n`.
    pub n: usize,
    /// Instance number `k ∈ 1..=10` within its size class.
    pub k: u32,
    /// Processing times `Pᵢ`.
    pub processing: Vec<Time>,
    /// Earliness penalty rates `αᵢ`.
    pub earliness: Vec<Time>,
    /// Tardiness penalty rates `βᵢ`.
    pub tardiness: Vec<Time>,
}

impl RawJobData {
    /// `Σ Pᵢ`.
    pub fn total_processing(&self) -> Time {
        self.processing.iter().sum()
    }

    /// Materialize a CDD instance with due date `d = ⌊h · Σ Pᵢ⌋`.
    pub fn with_restrictive_factor(&self, h: f64) -> Instance {
        let d = (self.total_processing() as f64 * h).floor() as Time;
        Instance::cdd_from_arrays(&self.processing, &self.earliness, &self.tardiness, d)
            .expect("generated data is valid")
    }
}

/// SplitMix64 — stable across platforms, used to derive per-instance seeds.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub(crate) fn instance_seed(domain: u64, n: usize, k: u32) -> u64 {
    splitmix64(domain ^ splitmix64((n as u64) << 32 | k as u64))
}

/// Generate the raw (h-independent) job data of benchmark instance `(n, k)`.
///
/// # Panics
/// Panics if `n == 0` or `k` is outside `1..=10` (the benchmark defines ten
/// instances per size; relaxing this would silently leave the published
/// suite).
pub fn raw_job_data(n: usize, k: u32) -> RawJobData {
    assert!(n >= 1, "instance must have at least one job");
    assert!((1..=10).contains(&k), "instance number k must be in 1..=10, got {k}");
    let mut rng = StdRng::seed_from_u64(instance_seed(0x00B1_5C0F_FE1D, n, k));
    let processing = (0..n).map(|_| rng.gen_range(PROCESSING_RANGE.0..=PROCESSING_RANGE.1)).collect();
    let earliness = (0..n).map(|_| rng.gen_range(EARLINESS_RANGE.0..=EARLINESS_RANGE.1)).collect();
    let tardiness = (0..n).map(|_| rng.gen_range(TARDINESS_RANGE.0..=TARDINESS_RANGE.1)).collect();
    RawJobData { n, k, processing, earliness, tardiness }
}

/// Generate CDD benchmark instance `(n, k, h)`.
pub fn cdd_instance(n: usize, k: u32, h: f64) -> Instance {
    raw_job_data(n, k).with_restrictive_factor(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = raw_job_data(50, 3);
        let b = raw_job_data(50, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_ids_differ() {
        assert_ne!(raw_job_data(50, 3), raw_job_data(50, 4));
        assert_ne!(raw_job_data(50, 3).processing, raw_job_data(100, 3).processing[..50]);
    }

    #[test]
    fn data_respects_published_ranges() {
        for k in 1..=10 {
            let raw = raw_job_data(100, k);
            assert!(raw.processing.iter().all(|&p| (1..=20).contains(&p)));
            assert!(raw.earliness.iter().all(|&a| (1..=10).contains(&a)));
            assert!(raw.tardiness.iter().all(|&b| (1..=15).contains(&b)));
        }
    }

    #[test]
    fn due_date_follows_restrictive_factor() {
        let raw = raw_job_data(20, 1);
        let total = raw.total_processing();
        for h in [0.2, 0.4, 0.6, 0.8] {
            let inst = raw.with_restrictive_factor(h);
            assert_eq!(inst.due_date(), (total as f64 * h).floor() as i64);
            assert_eq!(inst.n(), 20);
        }
    }

    #[test]
    fn same_jobs_across_h_values() {
        let i1 = cdd_instance(10, 2, 0.2);
        let i2 = cdd_instance(10, 2, 0.8);
        assert_eq!(i1.jobs(), i2.jobs());
        assert!(i1.due_date() < i2.due_date());
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=10")]
    fn k_out_of_range_rejected() {
        raw_job_data(10, 11);
    }

    #[test]
    fn seeds_are_well_spread() {
        // Adjacent identifiers must not collide (sanity check on the hash).
        let mut seeds: Vec<u64> = Vec::new();
        for n in [10usize, 20, 50] {
            for k in 1..=10 {
                seeds.push(instance_seed(0x00B1_5C0F_FE1D, n, k));
            }
        }
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }
}
