//! Cache of best-known objective values per benchmark instance.
//!
//! The paper reports `%Δ` against the best known solutions of its CPU
//! predecessors ([7], [8]). We cannot obtain those published values offline,
//! so the role of "best known" is played by a long reference run of our own
//! CPU solver (`cdd-bench`'s `make_best_known` binary), cached in a plain
//! text file so every experiment compares against the same frozen values —
//! exactly how the OR-library community circulates best-known tables.
//!
//! File format: one `<instance-id> <objective>` pair per line, `#` comments.

use cdd_core::Cost;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// A best-known-value table keyed by instance id string
/// (see [`crate::InstanceId`]'s `Display`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BestKnown {
    values: BTreeMap<String, Cost>,
}

impl BestKnown {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse from the text format. Unknown/malformed lines are errors —
    /// silently dropping a best-known value would corrupt every later `%Δ`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(id), Some(value), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("line {}: expected `<id> <objective>`", lineno + 1));
            };
            let value: Cost = value
                .parse()
                .map_err(|e| format!("line {}: bad objective {value:?}: {e}", lineno + 1))?;
            if values.insert(id.to_string(), value).is_some() {
                return Err(format!("line {}: duplicate id {id}", lineno + 1));
            }
        }
        Ok(BestKnown { values })
    }

    /// Serialize to the text format (sorted by id; stable diffs).
    pub fn render(&self) -> String {
        let mut out = String::from("# best-known objective per instance (see cdd-instances docs)\n");
        for (id, v) in &self.values {
            out.push_str(&format!("{id} {v}\n"));
        }
        out
    }

    /// Load from a file (missing file ⇒ empty table).
    pub fn load(path: &Path) -> io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                Self::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(e),
        }
    }

    /// Save to a file, creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.render())
    }

    /// Best-known objective for `id`, if recorded.
    pub fn get(&self, id: &str) -> Option<Cost> {
        self.values.get(id).copied()
    }

    /// Record `value` if it improves on (or first sets) the stored best.
    /// Returns `true` when the table changed.
    pub fn improve(&mut self, id: &str, value: Cost) -> bool {
        match self.values.get_mut(id) {
            Some(existing) if *existing <= value => false,
            Some(existing) => {
                *existing = value;
                true
            }
            None => {
                self.values.insert(id.to_string(), value);
                true
            }
        }
    }

    /// Number of recorded instances.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Percentage deviation `%Δ = 100 · (z − z_best) / z_best` of an
    /// objective against the stored best for `id`.
    ///
    /// Returns `None` when no best is stored. A stored best of zero yields
    /// `0.0` when `z == 0` and `+∞` otherwise (a zero-cost optimum missed).
    pub fn percent_delta(&self, id: &str, z: Cost) -> Option<f64> {
        let best = self.get(id)?;
        Some(if best == 0 {
            if z == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            100.0 * (z - best) as f64 / best as f64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let text = "# comment\ncdd-n10-k1-h0.2 1936\nucddcp-n50-k3 888\n";
        let t = BestKnown::parse(text).unwrap();
        assert_eq!(t.get("cdd-n10-k1-h0.2"), Some(1936));
        assert_eq!(t.get("ucddcp-n50-k3"), Some(888));
        let again = BestKnown::parse(&t.render()).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(BestKnown::parse("one-token\n").is_err());
        assert!(BestKnown::parse("id 12 extra\n").is_err());
        assert!(BestKnown::parse("id twelve\n").is_err());
        assert!(BestKnown::parse("id 1\nid 2\n").unwrap_err().contains("duplicate"));
    }

    #[test]
    fn improve_only_lowers() {
        let mut t = BestKnown::new();
        assert!(t.improve("x", 100));
        assert!(!t.improve("x", 100));
        assert!(!t.improve("x", 150));
        assert!(t.improve("x", 90));
        assert_eq!(t.get("x"), Some(90));
    }

    #[test]
    fn percent_delta_matches_paper_definition() {
        let mut t = BestKnown::new();
        t.improve("a", 200);
        assert_eq!(t.percent_delta("a", 204), Some(2.0));
        assert_eq!(t.percent_delta("a", 198), Some(-1.0));
        assert_eq!(t.percent_delta("missing", 1), None);
        t.improve("zero", 0);
        assert_eq!(t.percent_delta("zero", 0), Some(0.0));
        assert_eq!(t.percent_delta("zero", 5), Some(f64::INFINITY));
    }

    #[test]
    fn load_and_save_round_trip() {
        let dir = std::env::temp_dir().join("cdd-instances-test");
        let path = dir.join("best_known.txt");
        let _ = std::fs::remove_file(&path);
        let empty = BestKnown::load(&path).unwrap();
        assert!(empty.is_empty());
        let mut t = BestKnown::new();
        t.improve("cdd-n10-k1-h0.2", 42);
        t.save(&path).unwrap();
        let loaded = BestKnown::load(&path).unwrap();
        assert_eq!(loaded, t);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
