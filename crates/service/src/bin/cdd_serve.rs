//! **cdd-serve** — replay a workload through the solver service and report
//! throughput, latency percentiles, cache hit rate and per-device
//! utilization.
//!
//! ```text
//! cargo run --release -p cdd-service --bin cdd-serve -- \
//!     [--workload results/workload.txt | --requests 64 --sizes 10,20 --iterations 150] \
//!     [--backend sim|native] \
//!     [--devices 4] [--queue-capacity N] [--cache-capacity 256] \
//!     [--blocks 1] [--block-size 64] [--seed 2016] [--window W] [--deadline-ms D] \
//!     [--batch-window K] [--delta-eval] [--delta-resync N] \
//!     [--fault-seed S --launch-failure-rate P --bit-flip-rate P --hang-rate P] \
//!     [--chaos] [--worker-crash-rate P] [--worker-crash-horizon N] \
//!     [--retry-budget N] [--breaker-threshold N] [--breaker-open-ms MS] \
//!     [--stuck-after-ms MS] [--no-degraded] \
//!     [--faulty-device IDX] [--convergence-stride N] [--sim-threads serial|auto|K] \
//!     [--summary results/serve_summary.json] [--detail results/serve_requests.csv] \
//!     [--metrics-out metrics.prom] [--metrics-json metrics.json] \
//!     [--trace-out trace.json] [--trace-jsonl trace.jsonl]
//! ```
//!
//! Without `--workload`, a mixed CDD/UCDDCP stream is generated in-process
//! (deterministic in `--seed`, same generator as `make_workload`). The
//! client keeps at most `--window` requests in flight (default
//! `4 × devices`), which bounds queue depth and lets later duplicates score
//! direct cache hits against completed entries.
//!
//! `--chaos` arms the resilience layer's failure mode: every device's
//! fault plan gains a worker-crash class (default rate 0.15 over a
//! 16-launch horizon; override with `--worker-crash-rate` /
//! `--worker-crash-horizon`). Crashed workers are restarted by the
//! supervisor and their jobs retried (`--retry-budget`, default 2) with a
//! deterministic seed-jittered backoff; budget-exhausted requests are
//! answered from the CPU oracle with `degraded=true` (or failed with a
//! structured `WorkerCrashed` error under `--no-degraded`). The breaker
//! knobs (`--breaker-threshold`, `--breaker-open-ms`) tune how fast a sick
//! device is shed. See DESIGN.md §12.
//!
//! Outputs: a human summary on stdout, a JSON summary (machine-checkable —
//! the CI smoke job parses it), a per-request CSV whose first ten
//! columns (`idx..degraded`) are deterministic under a fixed workload
//! and fault/chaos configuration — routing and latency live in the last
//! two — and, on request, a Prometheus-text / JSON metrics snapshot
//! (`--metrics-out` / `--metrics-json`; `service_`-prefixed lines are
//! byte-identical across runs of the same workload) and a Chrome
//! `trace_event` timeline with one track per device (`--trace-out` loads
//! in `chrome://tracing` or Perfetto; `--trace-jsonl` is the streaming
//! flavour).
//!
//! `--convergence-stride N` samples every chain's search trajectory every
//! `N` generations: the metrics snapshot gains `service_convergence_*`
//! anomaly counters, and a captured trace gains per-request best-so-far
//! counter tracks. Sampling never changes a result (DESIGN.md §10).
//!
//! `--batch-window K` lets a worker fuse up to `K` adjacent compatible SA
//! requests from the queue into one device launch sequence, amortizing the
//! per-kernel launch overhead that dominates small-`n` traffic.
//! `--delta-eval` switches SA candidate scoring to the incremental delta
//! kernel (`--delta-resync N` forces a cache rebuild every `N`
//! generations). Both are outcome-invariant on clean runs: the detail
//! CSV's deterministic columns are byte-identical at every setting — the
//! CI `batch-smoke` job enforces this. Under an active fault plan
//! `--delta-eval` is a different (equally deterministic) trajectory —
//! see the fault carve-out in DESIGN.md §14; batch fusion gates itself
//! off under faults, so its identity holds unconditionally.
//!
//! `--sim-threads` (or `CDD_SIM_THREADS`) sets how many host threads each
//! simulated device uses to execute the blocks of a launch. Results,
//! modeled clocks and all `service_` metrics are byte-identical at every
//! setting — only wall-clock time changes (DESIGN.md §11). The setting is
//! echoed in the JSON summary's `sim_threads` field.
//!
//! Latency percentiles come from the service's own metrics registry
//! (`timing_request_wall_ms`, exact nearest-rank quantiles over every
//! answered request) — the CLI no longer keeps its own latency math.

use cdd_bench::workload::{generate_mixed, load};
use cdd_bench::{fault_plan_from_args, results_dir, sim_parallelism_from_args, write_csv, Args, Table};
use cdd_core::SuiteError;
use cdd_gpu::DeltaConfig;
use cdd_service::{
    Backend, BreakerConfig, RequestOutcome, ServiceConfig, ServiceReport, SolverService,
    SupervisorConfig,
};
use cuda_sim::{FaultPlan, TelemetryConfig};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Latency summary `(p50, p95, max)` in ms, from the registry histogram.
fn latency_summary(report: &ServiceReport) -> (f64, f64, f64) {
    match report.metrics.histogram("timing_request_wall_ms", &[]) {
        Some(h) => (h.quantile(0.50), h.quantile(0.95), h.max()),
        None => (0.0, 0.0, 0.0),
    }
}

fn write_text(path: &Path, contents: &str, what: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("{what} dir creatable: {e}"));
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("{what} writable: {e}"));
}

fn status_of(outcome: &RequestOutcome) -> &'static str {
    match &outcome.result {
        Ok(_) => "ok",
        Err(SuiteError::DeadlineExceeded { .. }) => "expired",
        Err(SuiteError::Rejected { .. }) => "rejected",
        Err(_) => "failed",
    }
}

fn summary_json(report: &ServiceReport, requests: usize, sim_threads: &str) -> String {
    let (p50, p95, max) = latency_summary(report);
    let mut devices = String::new();
    for (i, d) in report.devices.iter().enumerate() {
        if i > 0 {
            devices.push_str(",\n");
        }
        devices.push_str(&format!(
            "    {{\"id\": {}, \"requests\": {}, \"failed\": {}, \"busy_wall_seconds\": {:.6}, \
             \"utilization\": {:.4}, \"modeled_seconds\": {:.6}, \"kernel_launches\": {}, \
             \"faults_injected\": {}, \"worker_crashes\": {}, \"restarts\": {}, \
             \"breaker_opened\": {}}}",
            d.id,
            d.usage.requests,
            d.usage.failed,
            d.usage.busy_wall_seconds,
            d.utilization,
            d.usage.modeled.busy_seconds,
            d.usage.modeled.kernel_launches,
            d.usage.faults.transient_launch_failures
                + d.usage.faults.bit_flips
                + d.usage.faults.hung_kernels,
            d.usage.faults.worker_crashes,
            d.restarts,
            d.breaker.opened,
        ));
    }
    let c = &report.cache;
    format!(
        "{{\n\
         \x20 \"requests\": {requests},\n\
         \x20 \"sim_threads\": \"{sim_threads}\",\n\
         \x20 \"completed\": {},\n\
         \x20 \"failed\": {},\n\
         \x20 \"expired\": {},\n\
         \x20 \"rejected\": {},\n\
         \x20 \"degraded\": {},\n\
         \x20 \"wall_seconds\": {:.6},\n\
         \x20 \"throughput_rps\": {:.3},\n\
         \x20 \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"max\": {:.3}}},\n\
         \x20 \"queue\": {{\"peak_depth\": {}, \"rejected\": {}}},\n\
         \x20 \"supervisor\": {{\"restarts\": {}, \"retries\": {}}},\n\
         \x20 \"breaker\": {{\"opened\": {}, \"probes\": {}, \"reclosed\": {}}},\n\
         \x20 \"cache\": {{\"hits\": {}, \"coalesced\": {}, \"served_from_cache\": {}, \
         \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n\
         \x20 \"devices\": [\n{devices}\n  ]\n\
         }}\n",
        report.completed,
        report.failed,
        report.expired,
        report.rejected,
        report.degraded,
        report.wall_seconds,
        report.completed as f64 / report.wall_seconds.max(1e-9),
        p50,
        p95,
        max,
        report.queue.peak_depth,
        report.queue.rejected,
        report.restarts,
        report.retried,
        report.devices.iter().map(|d| d.breaker.opened).sum::<u64>(),
        report.devices.iter().map(|d| d.breaker.probes).sum::<u64>(),
        report.devices.iter().map(|d| d.breaker.reclosed).sum::<u64>(),
        c.hits,
        c.coalesced,
        c.hits + c.coalesced,
        c.misses,
        c.insertions,
        c.evictions,
        c.hit_rate(),
    )
}

fn main() {
    let args = Args::parse();
    let seed = args.get_or("seed", 2016u64);
    let entries = match args.get("workload") {
        Some(path) => load(Path::new(path)).expect("workload file readable"),
        None => generate_mixed(
            args.get_or("requests", 64usize),
            seed,
            args.get_or("iterations", 150u64),
            &args.get_list_or("sizes", &[10usize, 20]),
        ),
    };
    let devices = args.get_or("devices", 2usize).max(1);

    // --faulty-device confines the fault plan to one pool member;
    // otherwise the plan (if any) applies fleet-wide.
    let plan = fault_plan_from_args(&args);
    // --chaos arms the worker-crash class with a default rate unless the
    // explicit --worker-crash-rate flag already configured one.
    let plan = if args.flag("chaos") && args.get("worker-crash-rate").is_none() {
        let base = plan.unwrap_or_else(|| {
            FaultPlan::with_rates(args.get_or("fault-seed", 0xFA17u64), 0.0, 0.0, 0.0)
        });
        Some(base.with_worker_crash(0.15, args.get_or("worker-crash-horizon", 16u64)))
    } else {
        plan
    };
    let (fleet_fault, device_faults) = match (plan, args.get("faulty-device")) {
        (Some(p), Some(id)) => {
            let id: usize = id.parse().expect("--faulty-device: device index");
            (None, vec![(id, p)])
        }
        (p, _) => (p, Vec::new()),
    };

    // Trace capture costs memory proportional to kernel launches, so it is
    // only enabled when a trace output was actually requested.
    let capture_trace = args.get("trace-out").is_some() || args.get("trace-jsonl").is_some();

    let sim_threads = sim_parallelism_from_args(&args);
    // --backend native runs kernels directly on host threads (no modeled
    // clock, no fault machinery); sim-only requests (fault plans,
    // telemetry, traces) are rejected by the service rather than silently
    // degraded, so pairing native with --chaos/--trace-out is an error the
    // caller sees per-request.
    let backend: Backend = args
        .get("backend")
        .map(|s| s.parse().expect("--backend: `sim` or `native`"))
        .unwrap_or_default();
    let mut config = ServiceConfig {
        devices,
        backend,
        queue_capacity: args.get_or("queue-capacity", entries.len().max(64)),
        cache_capacity: args.get_or("cache-capacity", 256usize),
        blocks: args.get_or("blocks", 1usize),
        block_size: args.get_or("block-size", 64usize),
        fault: fleet_fault,
        device_faults,
        capture_trace,
        telemetry: TelemetryConfig::every(args.get_or("convergence-stride", 0u64)),
        supervisor: SupervisorConfig {
            retry_budget: args.get_or("retry-budget", 2u32),
            stuck_after_ms: args.get_or("stuck-after-ms", 30_000u64),
            degraded_answers: !args.flag("no-degraded"),
            ..SupervisorConfig::default()
        },
        breaker: BreakerConfig {
            failure_threshold: args.get_or("breaker-threshold", 3u32),
            open_ms: args.get_or("breaker-open-ms", 250u64),
            ..BreakerConfig::default()
        },
        batch_window: args.get_or("batch-window", 1usize).max(1),
        delta: DeltaConfig {
            enabled: args.flag("delta-eval"),
            resync_every: args.get_or("delta-resync", 0u64),
        },
        ..Default::default()
    };
    config.device_spec.parallelism = sim_threads;
    let deadline_ms: Option<u64> = args.get("deadline-ms").map(|s| s.parse().expect("--deadline-ms: milliseconds"));
    let window = args.get_or("window", 4 * devices).max(1);

    eprintln!(
        "cdd-serve: {} requests over {} devices ({}x{} geometry), window {window}, \
         backend {backend}, sim-threads {sim_threads}",
        entries.len(),
        devices,
        config.blocks,
        config.block_size
    );

    let service = SolverService::start(config);
    let mut results: Vec<Option<RequestOutcome>> = vec![None; entries.len()];
    let mut outstanding: VecDeque<(usize, u64)> = VecDeque::new();
    for (i, entry) in entries.iter().enumerate() {
        let mut request = entry.to_request();
        request.deadline_ms = deadline_ms;
        match service.submit(request) {
            Ok(ticket) => outstanding.push_back((i, ticket)),
            Err(e) => {
                results[i] = Some(RequestOutcome {
                    ticket: u64::MAX,
                    device: None,
                    wall_ms: 0.0,
                    result: Err(e),
                    flight: None,
                });
            }
        }
        if outstanding.len() >= window {
            let (j, ticket) = outstanding.pop_front().expect("window non-empty");
            results[j] = Some(service.wait(ticket));
        }
    }
    while let Some((j, ticket)) = outstanding.pop_front() {
        results[j] = Some(service.wait(ticket));
    }
    let report = service.shutdown();

    // Per-request detail CSV.
    // Columns 1-10 are the deterministic outcome set the CI smoke jobs
    // byte-compare; routing/latency and the tenant/priority identity ride
    // behind them.
    let mut detail = Table::new(vec![
        "idx", "instance", "algorithm", "iterations", "seed", "status", "objective", "cache_hit",
        "cpu_fallback", "degraded", "device", "wall_ms", "tenant", "priority",
    ]);
    for (i, (entry, outcome)) in entries.iter().zip(&results).enumerate() {
        let outcome = outcome.as_ref().expect("every request answered");
        let (objective, cache_hit, cpu_fallback, degraded) = match &outcome.result {
            Ok(o) => (
                o.objective.to_string(),
                o.cache_hit.to_string(),
                o.cpu_fallback.to_string(),
                o.degraded.to_string(),
            ),
            Err(_) => ("-".to_string(), "-".to_string(), "-".to_string(), "-".to_string()),
        };
        detail.push(vec![
            i.to_string(),
            entry.id.to_string(),
            entry.algorithm.to_string(),
            entry.iterations.to_string(),
            entry.seed.to_string(),
            status_of(outcome).to_string(),
            objective,
            cache_hit,
            cpu_fallback,
            degraded,
            outcome.device.map_or("-".to_string(), |d| d.to_string()),
            format!("{:.3}", outcome.wall_ms),
            entry.tenant.clone(),
            entry.priority.to_string(),
        ]);
    }
    let detail_path =
        args.get("detail").map(PathBuf::from).unwrap_or_else(|| results_dir().join("serve_requests.csv"));
    write_csv(&detail, &detail_path).expect("detail CSV writable");

    let json = summary_json(&report, entries.len(), &sim_threads.to_string());
    let summary_path =
        args.get("summary").map(PathBuf::from).unwrap_or_else(|| results_dir().join("serve_summary.json"));
    write_text(&summary_path, &json, "summary");

    // Optional metrics / trace exports. The `service_`-prefixed lines of
    // the Prometheus snapshot are timing-independent counters and compare
    // byte-identical across runs of the same workload + fault config.
    if let Some(path) = args.get("metrics-out") {
        write_text(Path::new(path), &report.metrics.render_prometheus(), "metrics snapshot");
    }
    if let Some(path) = args.get("metrics-json") {
        write_text(Path::new(path), &report.metrics.render_json(), "metrics JSON");
    }
    if let Some(path) = args.get("trace-out") {
        write_text(Path::new(path), &report.trace.render_chrome_json(), "trace JSON");
        eprintln!("trace: {path} ({} events; load in chrome://tracing or ui.perfetto.dev)", report.trace.len());
    }
    if let Some(path) = args.get("trace-jsonl") {
        write_text(Path::new(path), &report.trace.render_jsonl(), "trace JSONL");
    }

    println!(
        "\ncompleted {}/{} requests ({} failed, {} expired, {} rejected, {} degraded) in {:.3}s -> {:.2} req/s",
        report.completed,
        entries.len(),
        report.failed,
        report.expired,
        report.rejected,
        report.degraded,
        report.wall_seconds,
        report.completed as f64 / report.wall_seconds.max(1e-9),
    );
    if report.restarts > 0 || report.degraded > 0 {
        println!(
            "resilience: {} worker restarts, {} retries, {} degraded answers, breaker opened {}x",
            report.restarts,
            report.retried,
            report.degraded,
            report.devices.iter().map(|d| d.breaker.opened).sum::<u64>(),
        );
    }
    let (p50, p95, _) = latency_summary(&report);
    println!(
        "latency p50 {:.1} ms, p95 {:.1} ms | cache: {} hits + {} coalesced / {} lookups ({:.0}% served from cache)",
        p50,
        p95,
        report.cache.hits,
        report.cache.coalesced,
        report.cache.hits + report.cache.coalesced + report.cache.misses,
        report.cache.hit_rate() * 100.0,
    );
    for d in &report.devices {
        println!(
            "device {}: {} requests ({} failed), {:.0}% utilized, {:.4} modeled s, {} launches, faults {}",
            d.id,
            d.usage.requests,
            d.usage.failed,
            d.utilization * 100.0,
            d.usage.modeled.busy_seconds,
            d.usage.modeled.kernel_launches,
            d.usage.faults,
        );
    }
    println!("summary: {} | detail: {}", summary_path.display(), detail_path.display());
}
