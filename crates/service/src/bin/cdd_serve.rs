//! **cdd-serve** — replay a workload through the solver service and report
//! throughput, latency percentiles, cache hit rate and per-device
//! utilization.
//!
//! ```text
//! cargo run --release -p cdd-service --bin cdd-serve -- \
//!     [--workload results/workload.txt | --requests 64 --sizes 10,20 --iterations 150] \
//!     [--devices 4] [--queue-capacity N] [--cache-capacity 256] \
//!     [--blocks 1] [--block-size 64] [--seed 2016] [--window W] [--deadline-ms D] \
//!     [--fault-seed S --launch-failure-rate P --bit-flip-rate P --hang-rate P] \
//!     [--faulty-device IDX] \
//!     [--summary results/serve_summary.json] [--detail results/serve_requests.csv]
//! ```
//!
//! Without `--workload`, a mixed CDD/UCDDCP stream is generated in-process
//! (deterministic in `--seed`, same generator as `make_workload`). The
//! client keeps at most `--window` requests in flight (default
//! `4 × devices`), which bounds queue depth and lets later duplicates score
//! direct cache hits against completed entries.
//!
//! Outputs: a human summary on stdout, a JSON summary (machine-checkable —
//! the CI smoke job parses it), and a per-request CSV whose first nine
//! columns (`idx..cpu_fallback`) are deterministic under a fixed workload
//! and fault configuration — routing and latency live in the last two.

use cdd_bench::workload::{generate_mixed, load};
use cdd_bench::{fault_plan_from_args, results_dir, write_csv, Args, Table};
use cdd_core::SuiteError;
use cdd_service::{RequestOutcome, ServiceConfig, ServiceReport, SolverService};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn status_of(outcome: &RequestOutcome) -> &'static str {
    match &outcome.result {
        Ok(_) => "ok",
        Err(SuiteError::DeadlineExceeded { .. }) => "expired",
        Err(SuiteError::Rejected { .. }) => "rejected",
        Err(_) => "failed",
    }
}

fn summary_json(report: &ServiceReport, requests: usize, latencies_sorted: &[f64]) -> String {
    let mut devices = String::new();
    for (i, d) in report.devices.iter().enumerate() {
        if i > 0 {
            devices.push_str(",\n");
        }
        devices.push_str(&format!(
            "    {{\"id\": {}, \"requests\": {}, \"failed\": {}, \"busy_wall_seconds\": {:.6}, \
             \"utilization\": {:.4}, \"modeled_seconds\": {:.6}, \"kernel_launches\": {}, \
             \"faults_injected\": {}}}",
            d.id,
            d.usage.requests,
            d.usage.failed,
            d.usage.busy_wall_seconds,
            d.utilization,
            d.usage.modeled.busy_seconds,
            d.usage.modeled.kernel_launches,
            d.usage.faults.transient_launch_failures
                + d.usage.faults.bit_flips
                + d.usage.faults.hung_kernels,
        ));
    }
    let c = &report.cache;
    format!(
        "{{\n\
         \x20 \"requests\": {requests},\n\
         \x20 \"completed\": {},\n\
         \x20 \"failed\": {},\n\
         \x20 \"expired\": {},\n\
         \x20 \"rejected\": {},\n\
         \x20 \"wall_seconds\": {:.6},\n\
         \x20 \"throughput_rps\": {:.3},\n\
         \x20 \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"max\": {:.3}}},\n\
         \x20 \"queue\": {{\"peak_depth\": {}, \"rejected\": {}}},\n\
         \x20 \"cache\": {{\"hits\": {}, \"coalesced\": {}, \"served_from_cache\": {}, \
         \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n\
         \x20 \"devices\": [\n{devices}\n  ]\n\
         }}\n",
        report.completed,
        report.failed,
        report.expired,
        report.rejected,
        report.wall_seconds,
        report.completed as f64 / report.wall_seconds.max(1e-9),
        percentile(latencies_sorted, 0.50),
        percentile(latencies_sorted, 0.95),
        latencies_sorted.last().copied().unwrap_or(0.0),
        report.queue.peak_depth,
        report.queue.rejected,
        c.hits,
        c.coalesced,
        c.hits + c.coalesced,
        c.misses,
        c.insertions,
        c.evictions,
        c.hit_rate(),
    )
}

fn main() {
    let args = Args::parse();
    let seed = args.get_or("seed", 2016u64);
    let entries = match args.get("workload") {
        Some(path) => load(Path::new(path)).expect("workload file readable"),
        None => generate_mixed(
            args.get_or("requests", 64usize),
            seed,
            args.get_or("iterations", 150u64),
            &args.get_list_or("sizes", &[10usize, 20]),
        ),
    };
    let devices = args.get_or("devices", 2usize).max(1);

    // --faulty-device confines the fault plan to one pool member;
    // otherwise the plan (if any) applies fleet-wide.
    let plan = fault_plan_from_args(&args);
    let (fleet_fault, device_faults) = match (plan, args.get("faulty-device")) {
        (Some(p), Some(id)) => {
            let id: usize = id.parse().expect("--faulty-device: device index");
            (None, vec![(id, p)])
        }
        (p, _) => (p, Vec::new()),
    };

    let config = ServiceConfig {
        devices,
        queue_capacity: args.get_or("queue-capacity", entries.len().max(64)),
        cache_capacity: args.get_or("cache-capacity", 256usize),
        blocks: args.get_or("blocks", 1usize),
        block_size: args.get_or("block-size", 64usize),
        fault: fleet_fault,
        device_faults,
        ..Default::default()
    };
    let deadline_ms: Option<u64> = args.get("deadline-ms").map(|s| s.parse().expect("--deadline-ms: milliseconds"));
    let window = args.get_or("window", 4 * devices).max(1);

    eprintln!(
        "cdd-serve: {} requests over {} devices ({}x{} geometry), window {window}",
        entries.len(),
        devices,
        config.blocks,
        config.block_size
    );

    let service = SolverService::start(config);
    let mut results: Vec<Option<RequestOutcome>> = vec![None; entries.len()];
    let mut outstanding: VecDeque<(usize, u64)> = VecDeque::new();
    for (i, entry) in entries.iter().enumerate() {
        let mut request = entry.to_request();
        request.deadline_ms = deadline_ms;
        match service.submit(request) {
            Ok(ticket) => outstanding.push_back((i, ticket)),
            Err(e) => {
                results[i] = Some(RequestOutcome {
                    ticket: u64::MAX,
                    device: None,
                    wall_ms: 0.0,
                    result: Err(e),
                });
            }
        }
        if outstanding.len() >= window {
            let (j, ticket) = outstanding.pop_front().expect("window non-empty");
            results[j] = Some(service.wait(ticket));
        }
    }
    while let Some((j, ticket)) = outstanding.pop_front() {
        results[j] = Some(service.wait(ticket));
    }
    let report = service.shutdown();

    // Per-request detail CSV.
    let mut detail = Table::new(vec![
        "idx", "instance", "algorithm", "iterations", "seed", "status", "objective", "cache_hit",
        "cpu_fallback", "device", "wall_ms",
    ]);
    let mut latencies: Vec<f64> = Vec::new();
    for (i, (entry, outcome)) in entries.iter().zip(&results).enumerate() {
        let outcome = outcome.as_ref().expect("every request answered");
        if outcome.ticket != u64::MAX {
            latencies.push(outcome.wall_ms);
        }
        let (objective, cache_hit, cpu_fallback) = match &outcome.result {
            Ok(o) => (o.objective.to_string(), o.cache_hit.to_string(), o.cpu_fallback.to_string()),
            Err(_) => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        detail.push(vec![
            i.to_string(),
            entry.id.to_string(),
            entry.algorithm.to_string(),
            entry.iterations.to_string(),
            entry.seed.to_string(),
            status_of(outcome).to_string(),
            objective,
            cache_hit,
            cpu_fallback,
            outcome.device.map_or("-".to_string(), |d| d.to_string()),
            format!("{:.3}", outcome.wall_ms),
        ]);
    }
    let detail_path =
        args.get("detail").map(PathBuf::from).unwrap_or_else(|| results_dir().join("serve_requests.csv"));
    write_csv(&detail, &detail_path).expect("detail CSV writable");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let json = summary_json(&report, entries.len(), &latencies);
    let summary_path =
        args.get("summary").map(PathBuf::from).unwrap_or_else(|| results_dir().join("serve_summary.json"));
    if let Some(dir) = summary_path.parent() {
        std::fs::create_dir_all(dir).expect("results dir creatable");
    }
    std::fs::write(&summary_path, &json).expect("summary writable");

    println!(
        "\ncompleted {}/{} requests ({} failed, {} expired, {} rejected) in {:.3}s -> {:.2} req/s",
        report.completed,
        entries.len(),
        report.failed,
        report.expired,
        report.rejected,
        report.wall_seconds,
        report.completed as f64 / report.wall_seconds.max(1e-9),
    );
    println!(
        "latency p50 {:.1} ms, p95 {:.1} ms | cache: {} hits + {} coalesced / {} lookups ({:.0}% served from cache)",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        report.cache.hits,
        report.cache.coalesced,
        report.cache.hits + report.cache.coalesced + report.cache.misses,
        report.cache.hit_rate() * 100.0,
    );
    for d in &report.devices {
        println!(
            "device {}: {} requests ({} failed), {:.0}% utilized, {:.4} modeled s, {} launches, faults {}",
            d.id,
            d.usage.requests,
            d.usage.failed,
            d.utilization * 100.0,
            d.usage.modeled.busy_seconds,
            d.usage.modeled.kernel_launches,
            d.usage.faults,
        );
    }
    println!("summary: {} | detail: {}", summary_path.display(), detail_path.display());
}
