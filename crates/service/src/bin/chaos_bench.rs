//! **cdd-chaos-bench** — measure what resilience costs.
//!
//! ```text
//! cargo run --release -p cdd-service --bin cdd-chaos-bench -- \
//!     [--requests 96] [--devices 2] [--seed 2016] [--iterations 150] \
//!     [--sizes 10,20] [--crash-rates 0.0,0.05,0.20] [--crash-horizon 16] \
//!     [--out BENCH_pr6.json]
//! ```
//!
//! Replays one fixed generated workload through the solver service at a
//! sweep of worker-crash rates (default 0%, 5%, 20% per launch window) and
//! records, per rate: throughput, latency percentiles, supervisor restarts,
//! retries scheduled, and degraded answers. The 0% row is the baseline —
//! the delta against it is the overhead of supervision plus the cost of
//! re-running crashed work. Results go to `BENCH_pr6.json` in the
//! repository root (override with `--out`).
//!
//! The per-rate (request, fitness, degraded) outcome set is deterministic;
//! only the wall-clock columns vary between invocations (DESIGN.md §12).

use cdd_bench::workload::generate_mixed;
use cdd_bench::Args;
use cdd_service::{ServiceConfig, ServiceReport, SolverService};
use cuda_sim::FaultPlan;
use std::collections::VecDeque;

struct ChaosRun {
    crash_rate: f64,
    report: ServiceReport,
    degraded_answers: u64,
}

/// Run the whole workload through a fresh service with the given
/// worker-crash rate and collect its shutdown report.
fn run_at_rate(
    entries: &[cdd_bench::workload::WorkloadEntry],
    devices: usize,
    seed: u64,
    crash_rate: f64,
    crash_horizon: u64,
) -> ChaosRun {
    let fault = if crash_rate > 0.0 {
        Some(
            FaultPlan::with_rates(seed ^ 0xC4A0_5BAD, 0.0, 0.0, 0.0)
                .with_worker_crash(crash_rate, crash_horizon),
        )
    } else {
        None
    };
    let config = ServiceConfig {
        devices,
        queue_capacity: entries.len().max(64),
        fault,
        ..Default::default()
    };
    let service = SolverService::start(config);
    let window = (4 * devices).max(1);
    let mut outstanding: VecDeque<u64> = VecDeque::new();
    let mut degraded_answers = 0u64;
    let mut drain = |service: &SolverService, outstanding: &mut VecDeque<u64>| {
        let ticket = outstanding.pop_front().expect("window non-empty");
        let outcome = service.wait(ticket);
        match outcome.result {
            Ok(o) => {
                if o.degraded {
                    degraded_answers += 1;
                }
            }
            Err(e) => panic!("chaos bench request failed outright: {e}"),
        }
    };
    for entry in entries {
        let ticket = service.submit(entry.to_request()).expect("queue sized for the workload");
        outstanding.push_back(ticket);
        if outstanding.len() >= window {
            drain(&service, &mut outstanding);
        }
    }
    while !outstanding.is_empty() {
        drain(&service, &mut outstanding);
    }
    let report = service.shutdown();
    ChaosRun { crash_rate, report, degraded_answers }
}

fn main() {
    let args = Args::parse();
    let requests = args.get_or("requests", 96usize);
    let devices = args.get_or("devices", 2usize).max(1);
    let seed = args.get_or("seed", 2016u64);
    let iterations = args.get_or("iterations", 150u64);
    let sizes = args.get_list_or("sizes", &[10usize, 20]);
    let rates = args.get_list_or("crash-rates", &[0.0f64, 0.05, 0.20]);
    let horizon = args.get_or("crash-horizon", 16u64);
    let out = args.get("out").unwrap_or("BENCH_pr6.json").to_string();

    let entries = generate_mixed(requests, seed, iterations, &sizes);
    eprintln!(
        "cdd-chaos-bench: {requests} requests x {} crash rates over {devices} devices",
        rates.len()
    );

    let mut runs = Vec::new();
    for &rate in &rates {
        eprintln!("  crash rate {rate}...");
        runs.push(run_at_rate(&entries, devices, seed, rate, horizon));
    }

    let baseline_rps = runs
        .first()
        .map(|r| r.report.completed as f64 / r.report.wall_seconds.max(1e-9))
        .unwrap_or(0.0);
    let mut lines = Vec::new();
    for run in &runs {
        let r = &run.report;
        let (p50, p95) = match r.metrics.histogram("timing_request_wall_ms", &[]) {
            Some(h) => (h.quantile(0.50), h.quantile(0.95)),
            None => (0.0, 0.0),
        };
        let rps = r.completed as f64 / r.wall_seconds.max(1e-9);
        lines.push(format!(
            "    {{\"crash_rate\":{},\"completed\":{},\"failed\":{},\"wall_seconds\":{},\
             \"throughput_rps\":{:.3},\"throughput_vs_clean\":{:.4},\"latency_p50_ms\":{:.3},\
             \"latency_p95_ms\":{:.3},\"worker_restarts\":{},\"retries\":{},\"degraded\":{},\
             \"breaker_opened\":{}}}",
            run.crash_rate,
            r.completed,
            r.failed,
            r.wall_seconds,
            rps,
            if baseline_rps > 0.0 { rps / baseline_rps } else { 0.0 },
            p50,
            p95,
            r.restarts,
            r.retried,
            run.degraded_answers,
            r.devices.iter().map(|d| d.breaker.opened).sum::<u64>(),
        ));
    }

    let json = format!(
        "{{\n\
         \x20 \"bench\": \"pr6_chaos_resilience\",\n\
         \x20 \"pipeline\": \"solver_service\",\n\
         \x20 \"host\": {{\"cores\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},\n\
         \x20 \"config\": {{\"requests\": {requests}, \"devices\": {devices}, \"seed\": {seed}, \
         \"iterations\": {iterations}, \"crash_horizon\": {horizon}, \"retry_budget\": 2}},\n\
         \x20 \"note\": \"One fixed workload replayed at increasing worker-crash rates. \
         Crashed workers are restarted by the supervisor and their jobs retried with \
         deterministic backoff; every request is still answered (completed == requests, \
         degraded answers come from the CPU oracle when the retry budget is exhausted). \
         Throughput and latency columns are wall-clock and vary between hosts; the \
         completed/restart/retry/degraded columns are deterministic per rate.\",\n\
         \x20 \"runs\": [\n{}\n  ]\n\
         }}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        std::env::consts::OS,
        std::env::consts::ARCH,
        lines.join(",\n"),
    );
    std::fs::write(&out, json).expect("bench output writable");

    for run in &runs {
        let r = &run.report;
        println!(
            "crash rate {:>5}: {}/{} completed, {:.1} req/s, {} restarts, {} retries, {} degraded",
            run.crash_rate,
            r.completed,
            requests,
            r.completed as f64 / r.wall_seconds.max(1e-9),
            r.restarts,
            r.retried,
            run.degraded_answers,
        );
    }
    println!("wrote {out}");
}
