//! Worker supervision: crash detection, restart with a fresh device, and
//! deadline-aware re-dispatch of the work a dead worker was holding.
//!
//! The supervisor is one thread watching the pool. Each tick (or sooner,
//! when a dying worker signals the `supervise` condvar) it:
//!
//! 1. **Reaps** finished worker threads. A clean exit is the drain path; a
//!    panicked exit carries a [`WorkerCrashPanic`] payload (or a foreign
//!    panic's message), and the supervisor bumps the slot's generation,
//!    records the death, and respawns the worker with a fresh device.
//! 2. **Fences stuck workers**: a slot whose in-flight job has produced no
//!    heartbeat for `stuck_after_ms` is declared wedged — the generation
//!    bump turns the old worker into a zombie that discards its result,
//!    and a replacement takes over the slot.
//! 3. **Re-dispatches** the job a dead/stuck worker held: within the retry
//!    budget the job re-enters the queue front (after a deterministic,
//!    seed-jittered exponential backoff) with its original deadline;
//!    beyond the budget it is answered degraded from the CPU oracle — or,
//!    with `degraded_answers` off, failed with
//!    [`SuiteError::WorkerCrashed`](cdd_core::SuiteError).
//! 4. Runs the **brownout pass**: when every breaker is open or the queue
//!    is past the configured depth, deadline-carrying jobs are pulled and
//!    answered degraded now rather than expiring worthlessly later.
//!
//! # Determinism
//!
//! Restart timing is wall-clock and varies run to run; *what* is computed
//! does not. The retry backoff is a pure function of `(config, request
//! seed, retry ordinal)` — see [`retry_backoff_ms`] — and the retry's
//! fault plan is derived the same way, so the attempt trajectory of a
//! request is independent of when the supervisor got around to it.
//! Degradation is deterministic for deadline-free workloads (the budget
//! exhaustion path); the deadline-dependent paths (backoff-won't-fit and
//! brownout) only ever touch deadline-carrying requests, which are outside
//! the deterministic namespace to begin with. See DESIGN.md §12.

use crate::queue::QueuedJob;
use crate::service::{
    publish_locked, serve_degraded, spawn_worker, ParkedJob, Shared, State,
};
use cdd_core::SuiteError;
use cuda_sim::FaultStats;
use std::any::Any;
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervision policy: how deaths are detected and what happens to the
/// work they orphan.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Supervisor wake-up cadence, milliseconds (min 1).
    pub tick_ms: u64,
    /// Declare an in-flight worker stuck after this many milliseconds
    /// without a heartbeat; `0` disables the watchdog.
    pub stuck_after_ms: u64,
    /// Re-dispatches a crashed job may consume before the service stops
    /// retrying and degrades (or fails) it. `0` means crash once → degrade.
    pub retry_budget: u32,
    /// Base of the exponential retry backoff, milliseconds. Retry `r`
    /// waits `base · 2^(r-1)` plus jitter.
    pub backoff_base_ms: u64,
    /// Upper bound (exclusive) of the deterministic, request-seeded jitter
    /// added to each backoff; `0` disables jitter.
    pub backoff_jitter_ms: u64,
    /// Serve budget-exhausted and browned-out requests from the CPU
    /// oracle with `degraded: true` instead of failing them.
    pub degraded_answers: bool,
    /// Brownout when the queue is deeper than this many jobs (`0`
    /// disables the depth trigger; the all-breakers-open trigger is
    /// always armed while `degraded_answers` is on).
    pub brownout_queue_depth: usize,
    /// Degrade a deadline-carrying job once it is within this many
    /// milliseconds of expiry (`0` disables the margin trigger).
    pub brownout_margin_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            tick_ms: 2,
            stuck_after_ms: 30_000,
            retry_budget: 2,
            backoff_base_ms: 4,
            backoff_jitter_ms: 4,
            degraded_answers: true,
            brownout_queue_depth: 0,
            brownout_margin_ms: 0,
        }
    }
}

/// The payload a worker panics with when its device reports
/// [`SuiteError::DeviceLost`] — the supervisor downcasts it back out of
/// [`JoinHandle::join`]'s error.
#[derive(Debug)]
pub(crate) struct WorkerCrashPanic {
    /// Slot of the worker that died.
    pub device: usize,
    /// Human-readable cause (the `DeviceLost` detail).
    pub detail: String,
}

/// Install a process-global panic hook that stays silent for
/// [`WorkerCrashPanic`] payloads — injected worker crashes are simulated
/// events the supervisor handles, not programming errors worth a
/// backtrace on stderr — and delegates every other panic to the hook that
/// was installed before (idempotent; first caller wins).
pub(crate) fn install_quiet_crash_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<WorkerCrashPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Recover a human-readable cause from the panic payload of the worker on
/// `slot`: the structured [`WorkerCrashPanic`] detail when the worker died
/// the expected way, the message when some other code path panicked with a
/// string, and a fixed fallback otherwise.
fn crash_payload(slot: usize, payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<WorkerCrashPanic>() {
        Ok(crash) => {
            debug_assert_eq!(crash.device, slot, "a crash payload names the slot that died");
            crash.detail
        }
        Err(payload) => match payload.downcast::<String>() {
            Ok(msg) => *msg,
            Err(payload) => match payload.downcast::<&'static str>() {
                Ok(msg) => (*msg).to_string(),
                Err(_) => "worker panicked with a non-string payload".to_string(),
            },
        },
    }
}

/// Backoff before retry `retry` (1-based) of the request with seed
/// `request_seed`: exponential in the retry ordinal, plus a jitter drawn
/// from a SplitMix64-style mix of the seed and the ordinal. A pure
/// function of its arguments — never of the wall clock, the device or the
/// thread — so two runs of the same workload park every retried job for
/// the same duration.
pub(crate) fn retry_backoff_ms(cfg: &SupervisorConfig, request_seed: u64, retry: u32) -> u64 {
    let exp = cfg.backoff_base_ms.saturating_mul(1u64 << retry.saturating_sub(1).min(16));
    let jitter = if cfg.backoff_jitter_ms == 0 {
        0
    } else {
        let mut z = request_seed ^ 0xd1b54a32d192ed03u64.wrapping_mul(u64::from(retry));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) % cfg.backoff_jitter_ms
    };
    exp + jitter
}

/// The supervisor thread body. Owns every worker `JoinHandle`; holds the
/// state lock across each tick (ticks are short — reap/fence/requeue
/// book-keeping only, never a solve).
pub(crate) fn supervisor_loop(shared: &Arc<Shared>, mut workers: Vec<Option<JoinHandle<()>>>) {
    let cfg = shared.supervisor.clone();
    let mut st = shared.state.lock().expect("service state lock");
    loop {
        let now = shared.now_ms();

        // 1. Reap finished workers. `is_finished` keeps the join from
        // blocking the tick on a healthy, busy worker.
        for (slot, worker) in workers.iter_mut().enumerate() {
            if !worker.as_ref().is_some_and(|h| h.is_finished()) {
                continue;
            }
            let handle = worker.take().expect("checked is_some above");
            match handle.join() {
                // Clean exit: the drain path — leave the slot empty.
                Ok(()) => {}
                Err(payload) => {
                    let detail = crash_payload(slot, payload);
                    handle_worker_death(&mut st, shared, &cfg, slot, &detail, now);
                    let generation = st.slots[slot].generation;
                    *worker = Some(spawn_worker(shared, slot, generation));
                }
            }
        }

        // 2. Fence stuck workers: no heartbeat while a job is in flight.
        if cfg.stuck_after_ms > 0 {
            for (slot, worker) in workers.iter_mut().enumerate() {
                let stuck = {
                    let s = &st.slots[slot];
                    s.in_flight.is_some()
                        && now.saturating_sub(s.heartbeat_ms) >= cfg.stuck_after_ms
                };
                if !stuck {
                    continue;
                }
                let (job, extras, generation) = {
                    let s = &mut st.slots[slot];
                    s.generation += 1;
                    s.stuck += 1;
                    s.restarts += 1;
                    s.breaker.record_failure(now);
                    (
                        s.in_flight.take().expect("checked in_flight above"),
                        std::mem::take(&mut s.in_flight_extras),
                        s.generation,
                    )
                };
                let detail = format!(
                    "worker stuck: no heartbeat for {} ms (fenced at generation {generation})",
                    cfg.stuck_after_ms
                );
                // A fenced fused run orphans every job it was carrying;
                // each re-enters the retry path independently.
                for job in std::iter::once(job).chain(extras) {
                    redispatch_or_degrade(&mut st, shared, &cfg, slot, job, &detail, now);
                }
                // Replace the handle; dropping the zombie's handle detaches
                // it — it will observe the generation bump and exit.
                *worker = Some(spawn_worker(shared, slot, generation));
            }
        }

        // 3. Un-park retries whose backoff elapsed — or all of them on
        // shutdown (the backoff is a wall-clock nicety; shutdown must not
        // strand a retry waiting it out).
        let mut i = 0;
        while i < st.parked.len() {
            if st.shutdown || st.parked[i].due_at <= Instant::now() {
                let parked = st.parked.swap_remove(i);
                st.queue.requeue_retry(parked.job);
                shared.work.notify_all();
            } else {
                i += 1;
            }
        }

        // 4. Brownout pass: answer deadline-carrying jobs degraded *now*
        // when waiting would be pointless (every breaker open / queue too
        // deep) or fatal (expiry closer than the margin). Deadline-free
        // jobs are never browned out — they can afford to wait, and
        // keeping them queued keeps the deterministic namespace clean.
        if cfg.degraded_answers {
            let all_open = !st.slots.is_empty()
                && st
                    .slots
                    .iter()
                    .all(|s| s.breaker.state() == crate::breaker::BreakerState::Open);
            let too_deep =
                cfg.brownout_queue_depth > 0 && st.queue.depth() > cfg.brownout_queue_depth;
            if all_open || too_deep {
                for job in st.queue.extract_if(|j| j.request.deadline_ms.is_some()) {
                    serve_degraded(&mut st, job, true);
                    shared.done.notify_all();
                }
            }
            if cfg.brownout_margin_ms > 0 {
                let margin = u128::from(cfg.brownout_margin_ms);
                let pressured = st.queue.extract_if(|j| match j.request.deadline_ms {
                    Some(ms) => j.submitted.elapsed().as_millis() + margin >= u128::from(ms),
                    None => false,
                });
                for job in pressured {
                    serve_degraded(&mut st, job, true);
                    shared.done.notify_all();
                }
            }
        }

        if st.drained() {
            drop(st);
            shared.work.notify_all();
            for handle in workers.into_iter().flatten() {
                let _ = handle.join();
            }
            return;
        }
        let (guard, _) = shared
            .supervise
            .wait_timeout(st, Duration::from_millis(cfg.tick_ms.max(1)))
            .expect("service state lock");
        st = guard;
    }
}

/// Book-keep one worker death: fence the slot, trip the breaker's failure
/// path, count the crash into the slot's fault ledger (a failed run never
/// returns its `FaultStats`, so the device-side count is re-created here),
/// and re-dispatch the job the worker was holding, if any.
fn handle_worker_death(
    st: &mut State,
    shared: &Arc<Shared>,
    cfg: &SupervisorConfig,
    slot: usize,
    detail: &str,
    now: u64,
) {
    let (job, extras) = {
        let s = &mut st.slots[slot];
        s.generation += 1;
        s.restarts += 1;
        s.breaker.record_failure(now);
        s.usage.merge_faults(FaultStats { worker_crashes: 1, ..FaultStats::default() });
        (s.in_flight.take(), std::mem::take(&mut s.in_flight_extras))
    };
    for job in job.into_iter().chain(extras) {
        redispatch_or_degrade(st, shared, cfg, slot, job, detail, now);
    }
}

/// Decide what happens to a job orphaned by a worker death: another
/// attempt (immediately or parked behind its deterministic backoff) while
/// the retry budget and the deadline allow it; a degraded CPU-oracle
/// answer — or a structured [`SuiteError::WorkerCrashed`] failure — once
/// they don't.
fn redispatch_or_degrade(
    st: &mut State,
    shared: &Arc<Shared>,
    cfg: &SupervisorConfig,
    slot: usize,
    mut job: QueuedJob,
    detail: &str,
    _now: u64,
) {
    if job.retries < cfg.retry_budget {
        let next_retry = job.retries + 1;
        let delay = retry_backoff_ms(cfg, job.request.seed, next_retry);
        // Deadline-aware: a backoff that outlives the deadline would turn
        // the retry into a guaranteed expiry — degrade instead.
        let fits_deadline = match job.request.deadline_ms {
            Some(ms) => {
                job.submitted.elapsed().as_millis() + u128::from(delay) < u128::from(ms)
            }
            None => true,
        };
        if fits_deadline {
            job.retries = next_retry;
            if job.request.trace.is_some_and(|t| t.sampled) {
                job.hops.push(
                    cdd_metrics::FlightHop::new("supervisor", "retry", 0.0, 0.0)
                        .with_detail("retry", next_retry)
                        .with_detail("backoff_ms", delay),
                );
            }
            st.retries_scheduled += 1;
            if delay == 0 || st.shutdown {
                st.queue.requeue_retry(job);
                shared.work.notify_all();
            } else {
                st.parked
                    .push(ParkedJob { due_at: Instant::now() + Duration::from_millis(delay), job });
            }
            return;
        }
    }
    if cfg.degraded_answers {
        serve_degraded(st, job, false);
    } else {
        publish_locked(
            st,
            job,
            Some(slot),
            Err(SuiteError::worker_crashed(slot, detail.to_string())),
            false,
        );
    }
    shared.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(base: u64, jitter: u64) -> SupervisorConfig {
        SupervisorConfig {
            backoff_base_ms: base,
            backoff_jitter_ms: jitter,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let c = cfg(8, 0);
        for retry in 1..=5u32 {
            let a = retry_backoff_ms(&c, 42, retry);
            let b = retry_backoff_ms(&c, 42, retry);
            assert_eq!(a, b, "pure in (config, seed, retry)");
            assert_eq!(a, 8 << (retry - 1), "exponential with zero jitter");
        }
    }

    #[test]
    fn jitter_stays_in_range_and_varies_by_seed() {
        let c = cfg(10, 7);
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let d = retry_backoff_ms(&c, seed, 1);
            assert!((10..17).contains(&d), "base 10 + jitter in [0,7): got {d}");
            distinct.insert(d);
        }
        assert!(distinct.len() > 1, "jitter actually spreads the backoffs");
    }

    #[test]
    fn huge_retry_ordinals_cannot_overflow() {
        let c = cfg(u64::MAX / 2, 0);
        assert_eq!(retry_backoff_ms(&c, 1, u32::MAX), u64::MAX, "saturates, never panics");
    }

    #[test]
    fn crash_payload_downcast_chain() {
        let structured: Box<dyn Any + Send> =
            Box::new(WorkerCrashPanic { device: 3, detail: "device lost: injected".into() });
        assert_eq!(crash_payload(3, structured), "device lost: injected");
        let string: Box<dyn Any + Send> = Box::new("plain panic".to_string());
        assert_eq!(crash_payload(0, string), "plain panic");
        let static_str: Box<dyn Any + Send> = Box::new("static panic");
        assert_eq!(crash_payload(0, static_str), "static panic");
        let opaque: Box<dyn Any + Send> = Box::new(17usize);
        assert_eq!(crash_payload(0, opaque), "worker panicked with a non-string payload");
    }
}
