//! The bounded submission queue: priority-class admission of solve jobs
//! with capacity-based back-pressure and pre-dispatch deadline expiry.
//!
//! This is a plain data structure — the service serializes access to it
//! under its state mutex. Admission control is synchronous and immediate:
//! [`SubmissionQueue::try_push`] on a full queue returns
//! [`SuiteError::Rejected`] rather than blocking, so an overloaded service
//! sheds load at submission time instead of hanging clients.
//!
//! # Priority classes
//!
//! [`cdd_core::Priority`] maps onto the queue in two ways, neither of which
//! can change a computed answer (dispatch *order* is not part of the
//! determinism contract — fitness is pure in the request):
//!
//! 1. **Ordering** — a new job enters behind every queued job of its own or
//!    a higher class and ahead of lower classes (FIFO within a class). The
//!    inherited front segment (supervisor retries, promoted followers) is
//!    never reordered: those jobs were already admitted and dispatched once,
//!    so they outrank any fresh arrival regardless of class.
//! 2. **Admission headroom** — `batch` jobs are rejected once the admitted
//!    depth reaches ¾ of capacity, reserving the last quarter of the queue
//!    for `normal`/`interactive` traffic under load.

use cdd_core::{Priority, SolveRequest, SuiteError};
use cdd_metrics::FlightHop;
use std::collections::VecDeque;
use std::time::Instant;

/// One queued solve: the primary carrier of a content key. Identical
/// requests submitted while this job is queued or in flight coalesce onto
/// it (tracked by the service's waiter table, not the queue).
#[derive(Debug)]
pub(crate) struct QueuedJob {
    /// Ticket of the submitting client.
    pub ticket: u64,
    /// The work to run.
    pub request: SolveRequest,
    /// Cached `request.content_key()`.
    pub key: u64,
    /// Submission time (latency accounting and deadline expiry). Survives
    /// retries: a re-dispatched job keeps its original submission instant,
    /// so its deadline never resets.
    pub submitted: Instant,
    /// Supervisor re-dispatches this job has been through (0 = original
    /// dispatch). Drives the deterministic retry fault-plan derivation and
    /// the bounded retry budget.
    pub retries: u32,
    /// Hop spans recorded along this job's path through the service
    /// (queue wait, retries, worker attempts). Empty — and never appended
    /// to — unless the request carries a sampled trace context, so
    /// untraced runs pay nothing.
    pub hops: Vec<FlightHop>,
}

impl QueuedJob {
    /// Whether the request's pre-dispatch deadline has passed. A deadline
    /// of 0 ms expires immediately (and deterministically); `None` never
    /// expires. The comparison is done in `u128` — truncating the elapsed
    /// milliseconds to `u64` could wrap and expire a huge deadline early.
    pub fn expired(&self) -> bool {
        match self.request.deadline_ms {
            Some(ms) => self.submitted.elapsed().as_millis() >= u128::from(ms),
            None => false,
        }
    }
}

/// Depth/admission counters of the queue.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted into the queue.
    pub enqueued: u64,
    /// Submissions refused because the queue was full.
    pub rejected: u64,
    /// Jobs re-admitted at the front into an inherited slot
    /// ([`SubmissionQueue::requeue_front`]).
    pub requeued: u64,
    /// Jobs re-admitted by the supervisor after a worker crash
    /// ([`SubmissionQueue::requeue_retry`]).
    pub retried: u64,
    /// Deepest the queue of *admitted* slots ever got. Inherited re-admits
    /// reuse a slot that was already counted at admission, so this never
    /// exceeds the configured capacity.
    pub peak_depth: usize,
}

/// A capacity-bounded FIFO of pending solves.
pub(crate) struct SubmissionQueue {
    capacity: usize,
    jobs: VecDeque<QueuedJob>,
    /// Jobs currently in the queue that entered through
    /// [`requeue_front`](Self::requeue_front). Inherited jobs only ever
    /// enter at the front and `pop` takes from the front, so while this is
    /// non-zero the front `inherited` jobs are exactly the inherited ones —
    /// which lets `pop` decrement the count without per-job flags.
    inherited: usize,
    stats: QueueStats,
}

impl SubmissionQueue {
    pub fn new(capacity: usize) -> Self {
        SubmissionQueue {
            capacity: capacity.max(1),
            jobs: VecDeque::new(),
            inherited: 0,
            stats: QueueStats::default(),
        }
    }

    /// Queue depth counting only admitted slots: a job re-admitted into an
    /// inherited slot was already counted when its slot was first admitted.
    fn admitted_depth(&self) -> usize {
        self.jobs.len() - self.inherited
    }

    /// Capacity visible to `batch` submissions: the last quarter of the
    /// queue is reserved for `normal`/`interactive` traffic (never below 1
    /// slot, so a tiny queue still admits batch work when idle).
    fn batch_capacity(&self) -> usize {
        (self.capacity - self.capacity / 4).max(1)
    }

    /// Admit a job into its priority class's position, or reject it
    /// immediately when the class's capacity is exhausted. Within the
    /// non-inherited segment the job enters behind its own and higher
    /// classes and ahead of strictly lower ones (FIFO per class); the
    /// inherited front segment is never reordered.
    pub fn try_push(&mut self, job: QueuedJob) -> Result<(), SuiteError> {
        if self.jobs.len() >= self.capacity {
            self.stats.rejected += 1;
            return Err(SuiteError::rejected(format!(
                "submission queue full ({} pending requests)",
                self.jobs.len()
            )));
        }
        if job.request.priority == Priority::Batch && self.admitted_depth() >= self.batch_capacity()
        {
            self.stats.rejected += 1;
            return Err(SuiteError::rejected(format!(
                "batch headroom exhausted ({} pending requests; batch admits up to {})",
                self.jobs.len(),
                self.batch_capacity()
            )));
        }
        let pos = (self.inherited..self.jobs.len())
            .find(|&i| self.jobs[i].request.priority < job.request.priority)
            .unwrap_or(self.jobs.len());
        self.jobs.insert(pos, job);
        self.stats.enqueued += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.admitted_depth());
        Ok(())
    }

    /// Re-admit a job at the *front*, bypassing the capacity check — used
    /// when a coalesced follower outlives an expired primary and inherits
    /// its (already admitted) queue slot. The slot was counted in
    /// `peak_depth` when it was first admitted, so re-admission leaves the
    /// admitted depth unchanged (it cannot push `peak_depth` past the
    /// configured capacity).
    pub fn requeue_front(&mut self, job: QueuedJob) {
        self.jobs.push_front(job);
        self.inherited += 1;
        self.stats.requeued += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.admitted_depth());
    }

    /// Re-admit a crashed-and-retried job into the inherited front segment,
    /// **ordered by ticket among the retried/inherited peers already
    /// there**. Retries therefore re-enter ahead of every new arrival (they
    /// cannot deadline-starve behind fresh submissions) while preserving
    /// the original arrival order among themselves — unlike
    /// [`requeue_front`](Self::requeue_front), which is LIFO by design (the
    /// promoted follower has been waiting longest). The job keeps its
    /// original `submitted` instant (and therefore its original deadline)
    /// and inherits its already-admitted slot, bypassing capacity.
    pub fn requeue_retry(&mut self, job: QueuedJob) {
        let pos = self
            .jobs
            .iter()
            .take(self.inherited)
            .position(|j| j.ticket > job.ticket)
            .unwrap_or(self.inherited);
        self.jobs.insert(pos, job);
        self.inherited += 1;
        self.stats.retried += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.admitted_depth());
    }

    /// Pop the front job only when `pred` accepts it. Lets a worker drain
    /// expired heads (and decide whether to take work at all) without ever
    /// holding a job outside the queue — which matters for breaker gating:
    /// the half-open probe must only be consumed when a job is actually
    /// taken.
    pub fn pop_if(&mut self, pred: impl FnOnce(&QueuedJob) -> bool) -> Option<QueuedJob> {
        if pred(self.jobs.front()?) {
            self.pop()
        } else {
            None
        }
    }

    /// Next job in FIFO order.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        let job = self.jobs.pop_front();
        if job.is_some() && self.inherited > 0 {
            self.inherited -= 1;
        }
        job
    }

    /// Remove and return every queued job matching `pred` (used by the
    /// brownout path to pull deadline-pressured jobs for degraded answers).
    /// Keeps the inherited-slot accounting consistent: extracted inherited
    /// jobs no longer count toward the front segment.
    pub fn extract_if(&mut self, mut pred: impl FnMut(&QueuedJob) -> bool) -> Vec<QueuedJob> {
        let inherited_before = self.inherited;
        let mut kept = VecDeque::with_capacity(self.jobs.len());
        let mut out = Vec::new();
        let mut kept_inherited = 0;
        for (i, job) in self.jobs.drain(..).enumerate() {
            if pred(&job) {
                out.push(job);
            } else {
                if i < inherited_before {
                    kept_inherited += 1;
                }
                kept.push_back(job);
            }
        }
        self.jobs = kept;
        self.inherited = kept_inherited;
        out
    }

    /// Jobs currently queued (admitted + inherited).
    pub fn depth(&self) -> usize {
        self.jobs.len()
    }

    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::{Algorithm, Instance};

    fn job(ticket: u64, deadline_ms: Option<u64>) -> QueuedJob {
        let request = SolveRequest {
            deadline_ms,
            ..SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 10, ticket)
        };
        let key = request.content_key();
        QueuedJob { ticket, request, key, submitted: Instant::now(), retries: 0, hops: Vec::new() }
    }

    #[test]
    fn saturation_rejects_instead_of_blocking() {
        let mut q = SubmissionQueue::new(2);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let err = q.try_push(job(3, None)).unwrap_err();
        assert!(matches!(err, SuiteError::Rejected { .. }), "got {err:?}");
        assert_eq!(q.stats().rejected, 1);
        q.pop().unwrap();
        q.try_push(job(3, None)).expect("slot freed");
        assert_eq!(q.stats().peak_depth, 2);
    }

    #[test]
    fn fifo_order_and_front_requeue() {
        let mut q = SubmissionQueue::new(4);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let first = q.pop().unwrap();
        assert_eq!(first.ticket, 1);
        q.requeue_front(first);
        assert_eq!(q.pop().unwrap().ticket, 1, "requeued job runs next");
        assert_eq!(q.pop().unwrap().ticket, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn zero_deadline_expires_immediately_and_none_never() {
        assert!(job(1, Some(0)).expired());
        assert!(!job(1, None).expired());
        assert!(!job(1, Some(60_000)).expired());
    }

    #[test]
    fn huge_deadline_cannot_expire_prematurely() {
        // Regression: the elapsed/deadline comparison used to truncate the
        // u128 elapsed-ms to u64 before comparing; the comparison now stays
        // in u128 so a deadline near u64::MAX can never wrap into an
        // immediate expiry.
        assert!(!job(1, Some(u64::MAX)).expired());
        assert!(!job(1, Some(u64::MAX - 1)).expired());
    }

    #[test]
    fn inherited_requeue_cannot_push_peak_depth_past_capacity() {
        // Regression: requeue_front between a pop and a refill used to
        // report peak_depth = capacity + 1 even though only `capacity` slots
        // were ever admitted.
        let mut q = SubmissionQueue::new(2);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let popped = q.pop().unwrap();
        q.try_push(job(3, None)).expect("slot freed by pop");
        q.requeue_front(popped); // inherits its already-admitted slot back
        assert_eq!(q.stats().peak_depth, 2, "peak stays at the configured capacity");
        assert_eq!(q.stats().requeued, 1, "the inherited re-admit is tracked separately");
        // The physical queue really does hold 3 jobs; draining proves no
        // job was lost to the accounting.
        assert_eq!(q.pop().unwrap().ticket, 1);
        assert_eq!(q.pop().unwrap().ticket, 2);
        assert_eq!(q.pop().unwrap().ticket, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn retried_jobs_reenter_at_the_front_in_original_arrival_order() {
        // Satellite: a crashed job's retry must re-enter *ahead of new
        // arrivals* (no deadline starvation) but keep the original arrival
        // order among retried peers — and keep its original deadline.
        let mut q = SubmissionQueue::new(8);
        for t in 1..=4 {
            q.try_push(job(t, Some(60_000))).unwrap();
        }
        let j1 = q.pop().unwrap(); // tickets 1 and 2 get dispatched…
        let mut j2 = q.pop().unwrap();
        let submitted_2 = j2.submitted;
        q.try_push(job(5, None)).unwrap(); // …while a new request arrives.

        // Both dispatched jobs crash; the supervisor retries 2 before 1.
        j2.retries += 1;
        q.requeue_retry(j2);
        q.requeue_retry(j1);
        assert_eq!(q.stats().retried, 2);

        // Retries run first, in original arrival order; then the untouched
        // FIFO tail; new arrivals never starve a retry.
        let first = q.pop().unwrap();
        assert_eq!(first.ticket, 1, "arrival order among retried peers");
        let second = q.pop().unwrap();
        assert_eq!(second.ticket, 2);
        assert_eq!(second.submitted, submitted_2, "original deadline clock is preserved");
        assert_eq!(second.retries, 1);
        assert_eq!(q.pop().unwrap().ticket, 3);
        assert_eq!(q.pop().unwrap().ticket, 4);
        assert_eq!(q.pop().unwrap().ticket, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn retry_reentry_interleaves_with_promoted_followers() {
        // requeue_retry orders among the *inherited segment* by ticket, so
        // a retried job slots correctly even when expiry promotions
        // (LIFO requeue_front) already populated the front.
        let mut q = SubmissionQueue::new(8);
        for t in 1..=3 {
            q.try_push(job(t, None)).unwrap();
        }
        let j1 = q.pop().unwrap();
        let j2 = q.pop().unwrap();
        q.requeue_front(j2); // a promoted follower sits at the front
        q.requeue_retry(j1); // the retried job (older ticket) goes before it
        assert_eq!(q.pop().unwrap().ticket, 1);
        assert_eq!(q.pop().unwrap().ticket, 2);
        assert_eq!(q.pop().unwrap().ticket, 3);
    }

    #[test]
    fn extract_if_keeps_inherited_accounting_consistent() {
        let mut q = SubmissionQueue::new(8);
        for t in 1..=4 {
            q.try_push(job(t, if t == 3 { Some(5) } else { None })).unwrap();
        }
        let j1 = q.pop().unwrap();
        q.requeue_retry(j1); // front segment: [1]
        let pulled = q.extract_if(|j| j.request.deadline_ms.is_some());
        assert_eq!(pulled.len(), 1);
        assert_eq!(pulled[0].ticket, 3);
        // The inherited job survived the extraction and still runs first.
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop().unwrap().ticket, 1);
        // Extracting the inherited job itself also rebalances the count.
        let j2 = q.pop().unwrap();
        q.requeue_retry(j2);
        let pulled = q.extract_if(|j| j.ticket == 2);
        assert_eq!(pulled.len(), 1);
        assert_eq!(q.pop().unwrap().ticket, 4);
        assert!(q.pop().is_none());
    }

    fn job_at(ticket: u64, priority: Priority) -> QueuedJob {
        let mut j = job(ticket, None);
        j.request.priority = priority;
        j
    }

    #[test]
    fn higher_priority_jobs_are_dispatched_first_fifo_within_class() {
        let mut q = SubmissionQueue::new(8);
        q.try_push(job_at(1, Priority::Normal)).unwrap();
        q.try_push(job_at(2, Priority::Batch)).unwrap();
        q.try_push(job_at(3, Priority::Interactive)).unwrap();
        q.try_push(job_at(4, Priority::Normal)).unwrap();
        q.try_push(job_at(5, Priority::Interactive)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.ticket).collect();
        assert_eq!(order, [3, 5, 1, 4, 2], "interactive, then normal, then batch; FIFO within");
    }

    #[test]
    fn priority_insertion_never_reorders_the_inherited_front_segment() {
        let mut q = SubmissionQueue::new(8);
        q.try_push(job_at(1, Priority::Batch)).unwrap();
        let dispatched = q.pop().unwrap(); // the batch job was already running
        q.try_push(job_at(2, Priority::Normal)).unwrap();
        q.requeue_retry(dispatched);
        // A fresh interactive arrival outranks queued lower classes but not
        // the retried job: that one was admitted and dispatched already.
        q.try_push(job_at(3, Priority::Interactive)).unwrap();
        assert_eq!(q.pop().unwrap().ticket, 1, "retry runs first despite being batch");
        assert_eq!(q.pop().unwrap().ticket, 3);
        assert_eq!(q.pop().unwrap().ticket, 2);
    }

    #[test]
    fn batch_loses_its_headroom_under_load_but_higher_classes_keep_theirs() {
        let mut q = SubmissionQueue::new(4); // batch capacity: 3
        q.try_push(job_at(1, Priority::Batch)).unwrap();
        q.try_push(job_at(2, Priority::Batch)).unwrap();
        q.try_push(job_at(3, Priority::Batch)).unwrap();
        let err = q.try_push(job_at(4, Priority::Batch)).unwrap_err();
        assert!(err.to_string().contains("batch headroom"), "got {err}");
        q.try_push(job_at(5, Priority::Normal)).expect("the reserved quarter admits normal");
        let err = q.try_push(job_at(6, Priority::Interactive)).unwrap_err();
        assert!(err.to_string().contains("queue full"), "hard capacity still binds: {err}");
        assert_eq!(q.stats().rejected, 2);
    }

    #[test]
    fn tiny_queues_still_admit_batch_work_when_idle() {
        let mut q = SubmissionQueue::new(1);
        q.try_push(job_at(1, Priority::Batch)).expect("batch capacity is never zero");
        assert!(q.try_push(job_at(2, Priority::Interactive)).is_err());
    }

    #[test]
    fn inherited_count_tracks_interleaved_pops_and_requeues() {
        let mut q = SubmissionQueue::new(3);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        q.requeue_front(b);
        q.requeue_front(a); // front is now [a, b] — both inherited
        assert_eq!(q.stats().peak_depth, 2);
        assert_eq!(q.pop().unwrap().ticket, 1, "inherited jobs run first, LIFO among themselves");
        // One inherited job (b) still in the queue; a fresh admission counts
        // against the freed slots as usual.
        q.try_push(job(4, None)).unwrap();
        q.try_push(job(5, None)).unwrap();
        assert_eq!(q.stats().peak_depth, 2, "1 inherited + 2 fresh = 2 admitted slots");
        assert_eq!(q.stats().requeued, 2);
    }
}
