//! The bounded submission queue: FIFO admission of solve jobs with
//! capacity-based back-pressure and pre-dispatch deadline expiry.
//!
//! This is a plain data structure — the service serializes access to it
//! under its state mutex. Admission control is synchronous and immediate:
//! [`SubmissionQueue::try_push`] on a full queue returns
//! [`SuiteError::Rejected`] rather than blocking, so an overloaded service
//! sheds load at submission time instead of hanging clients.

use cdd_core::{SolveRequest, SuiteError};
use std::collections::VecDeque;
use std::time::Instant;

/// One queued solve: the primary carrier of a content key. Identical
/// requests submitted while this job is queued or in flight coalesce onto
/// it (tracked by the service's waiter table, not the queue).
#[derive(Debug)]
pub(crate) struct QueuedJob {
    /// Ticket of the submitting client.
    pub ticket: u64,
    /// The work to run.
    pub request: SolveRequest,
    /// Cached `request.content_key()`.
    pub key: u64,
    /// Submission time (latency accounting and deadline expiry).
    pub submitted: Instant,
}

impl QueuedJob {
    /// Whether the request's pre-dispatch deadline has passed. A deadline
    /// of 0 ms expires immediately (and deterministically); `None` never
    /// expires.
    pub fn expired(&self) -> bool {
        match self.request.deadline_ms {
            Some(ms) => self.submitted.elapsed().as_millis() as u64 >= ms,
            None => false,
        }
    }
}

/// Depth/admission counters of the queue.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted into the queue.
    pub enqueued: u64,
    /// Submissions refused because the queue was full.
    pub rejected: u64,
    /// Deepest the queue ever got.
    pub peak_depth: usize,
}

/// A capacity-bounded FIFO of pending solves.
pub(crate) struct SubmissionQueue {
    capacity: usize,
    jobs: VecDeque<QueuedJob>,
    stats: QueueStats,
}

impl SubmissionQueue {
    pub fn new(capacity: usize) -> Self {
        SubmissionQueue { capacity: capacity.max(1), jobs: VecDeque::new(), stats: QueueStats::default() }
    }

    /// Admit a job, or reject it immediately when the queue is full.
    pub fn try_push(&mut self, job: QueuedJob) -> Result<(), SuiteError> {
        if self.jobs.len() >= self.capacity {
            self.stats.rejected += 1;
            return Err(SuiteError::rejected(format!(
                "submission queue full ({} pending requests)",
                self.jobs.len()
            )));
        }
        self.jobs.push_back(job);
        self.stats.enqueued += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.jobs.len());
        Ok(())
    }

    /// Re-admit a job at the *front*, bypassing the capacity check — used
    /// when a coalesced follower outlives an expired primary and inherits
    /// its (already admitted) queue slot.
    pub fn requeue_front(&mut self, job: QueuedJob) {
        self.jobs.push_front(job);
        self.stats.peak_depth = self.stats.peak_depth.max(self.jobs.len());
    }

    /// Next job in FIFO order.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        self.jobs.pop_front()
    }

    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::{Algorithm, Instance};

    fn job(ticket: u64, deadline_ms: Option<u64>) -> QueuedJob {
        let request = SolveRequest {
            deadline_ms,
            ..SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 10, ticket)
        };
        let key = request.content_key();
        QueuedJob { ticket, request, key, submitted: Instant::now() }
    }

    #[test]
    fn saturation_rejects_instead_of_blocking() {
        let mut q = SubmissionQueue::new(2);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let err = q.try_push(job(3, None)).unwrap_err();
        assert!(matches!(err, SuiteError::Rejected { .. }), "got {err:?}");
        assert_eq!(q.stats().rejected, 1);
        q.pop().unwrap();
        q.try_push(job(3, None)).expect("slot freed");
        assert_eq!(q.stats().peak_depth, 2);
    }

    #[test]
    fn fifo_order_and_front_requeue() {
        let mut q = SubmissionQueue::new(4);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let first = q.pop().unwrap();
        assert_eq!(first.ticket, 1);
        q.requeue_front(first);
        assert_eq!(q.pop().unwrap().ticket, 1, "requeued job runs next");
        assert_eq!(q.pop().unwrap().ticket, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn zero_deadline_expires_immediately_and_none_never() {
        assert!(job(1, Some(0)).expired());
        assert!(!job(1, None).expired());
        assert!(!job(1, Some(60_000)).expired());
    }
}
