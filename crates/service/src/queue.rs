//! The bounded submission queue: FIFO admission of solve jobs with
//! capacity-based back-pressure and pre-dispatch deadline expiry.
//!
//! This is a plain data structure — the service serializes access to it
//! under its state mutex. Admission control is synchronous and immediate:
//! [`SubmissionQueue::try_push`] on a full queue returns
//! [`SuiteError::Rejected`] rather than blocking, so an overloaded service
//! sheds load at submission time instead of hanging clients.

use cdd_core::{SolveRequest, SuiteError};
use std::collections::VecDeque;
use std::time::Instant;

/// One queued solve: the primary carrier of a content key. Identical
/// requests submitted while this job is queued or in flight coalesce onto
/// it (tracked by the service's waiter table, not the queue).
#[derive(Debug)]
pub(crate) struct QueuedJob {
    /// Ticket of the submitting client.
    pub ticket: u64,
    /// The work to run.
    pub request: SolveRequest,
    /// Cached `request.content_key()`.
    pub key: u64,
    /// Submission time (latency accounting and deadline expiry).
    pub submitted: Instant,
}

impl QueuedJob {
    /// Whether the request's pre-dispatch deadline has passed. A deadline
    /// of 0 ms expires immediately (and deterministically); `None` never
    /// expires. The comparison is done in `u128` — truncating the elapsed
    /// milliseconds to `u64` could wrap and expire a huge deadline early.
    pub fn expired(&self) -> bool {
        match self.request.deadline_ms {
            Some(ms) => self.submitted.elapsed().as_millis() >= u128::from(ms),
            None => false,
        }
    }
}

/// Depth/admission counters of the queue.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted into the queue.
    pub enqueued: u64,
    /// Submissions refused because the queue was full.
    pub rejected: u64,
    /// Jobs re-admitted at the front into an inherited slot
    /// ([`SubmissionQueue::requeue_front`]).
    pub requeued: u64,
    /// Deepest the queue of *admitted* slots ever got. Inherited re-admits
    /// reuse a slot that was already counted at admission, so this never
    /// exceeds the configured capacity.
    pub peak_depth: usize,
}

/// A capacity-bounded FIFO of pending solves.
pub(crate) struct SubmissionQueue {
    capacity: usize,
    jobs: VecDeque<QueuedJob>,
    /// Jobs currently in the queue that entered through
    /// [`requeue_front`](Self::requeue_front). Inherited jobs only ever
    /// enter at the front and `pop` takes from the front, so while this is
    /// non-zero the front `inherited` jobs are exactly the inherited ones —
    /// which lets `pop` decrement the count without per-job flags.
    inherited: usize,
    stats: QueueStats,
}

impl SubmissionQueue {
    pub fn new(capacity: usize) -> Self {
        SubmissionQueue {
            capacity: capacity.max(1),
            jobs: VecDeque::new(),
            inherited: 0,
            stats: QueueStats::default(),
        }
    }

    /// Queue depth counting only admitted slots: a job re-admitted into an
    /// inherited slot was already counted when its slot was first admitted.
    fn admitted_depth(&self) -> usize {
        self.jobs.len() - self.inherited
    }

    /// Admit a job, or reject it immediately when the queue is full.
    pub fn try_push(&mut self, job: QueuedJob) -> Result<(), SuiteError> {
        if self.jobs.len() >= self.capacity {
            self.stats.rejected += 1;
            return Err(SuiteError::rejected(format!(
                "submission queue full ({} pending requests)",
                self.jobs.len()
            )));
        }
        self.jobs.push_back(job);
        self.stats.enqueued += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.admitted_depth());
        Ok(())
    }

    /// Re-admit a job at the *front*, bypassing the capacity check — used
    /// when a coalesced follower outlives an expired primary and inherits
    /// its (already admitted) queue slot. The slot was counted in
    /// `peak_depth` when it was first admitted, so re-admission leaves the
    /// admitted depth unchanged (it cannot push `peak_depth` past the
    /// configured capacity).
    pub fn requeue_front(&mut self, job: QueuedJob) {
        self.jobs.push_front(job);
        self.inherited += 1;
        self.stats.requeued += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.admitted_depth());
    }

    /// Next job in FIFO order.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        let job = self.jobs.pop_front();
        if job.is_some() && self.inherited > 0 {
            self.inherited -= 1;
        }
        job
    }

    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::{Algorithm, Instance};

    fn job(ticket: u64, deadline_ms: Option<u64>) -> QueuedJob {
        let request = SolveRequest {
            deadline_ms,
            ..SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 10, ticket)
        };
        let key = request.content_key();
        QueuedJob { ticket, request, key, submitted: Instant::now() }
    }

    #[test]
    fn saturation_rejects_instead_of_blocking() {
        let mut q = SubmissionQueue::new(2);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let err = q.try_push(job(3, None)).unwrap_err();
        assert!(matches!(err, SuiteError::Rejected { .. }), "got {err:?}");
        assert_eq!(q.stats().rejected, 1);
        q.pop().unwrap();
        q.try_push(job(3, None)).expect("slot freed");
        assert_eq!(q.stats().peak_depth, 2);
    }

    #[test]
    fn fifo_order_and_front_requeue() {
        let mut q = SubmissionQueue::new(4);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let first = q.pop().unwrap();
        assert_eq!(first.ticket, 1);
        q.requeue_front(first);
        assert_eq!(q.pop().unwrap().ticket, 1, "requeued job runs next");
        assert_eq!(q.pop().unwrap().ticket, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn zero_deadline_expires_immediately_and_none_never() {
        assert!(job(1, Some(0)).expired());
        assert!(!job(1, None).expired());
        assert!(!job(1, Some(60_000)).expired());
    }

    #[test]
    fn huge_deadline_cannot_expire_prematurely() {
        // Regression: the elapsed/deadline comparison used to truncate the
        // u128 elapsed-ms to u64 before comparing; the comparison now stays
        // in u128 so a deadline near u64::MAX can never wrap into an
        // immediate expiry.
        assert!(!job(1, Some(u64::MAX)).expired());
        assert!(!job(1, Some(u64::MAX - 1)).expired());
    }

    #[test]
    fn inherited_requeue_cannot_push_peak_depth_past_capacity() {
        // Regression: requeue_front between a pop and a refill used to
        // report peak_depth = capacity + 1 even though only `capacity` slots
        // were ever admitted.
        let mut q = SubmissionQueue::new(2);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let popped = q.pop().unwrap();
        q.try_push(job(3, None)).expect("slot freed by pop");
        q.requeue_front(popped); // inherits its already-admitted slot back
        assert_eq!(q.stats().peak_depth, 2, "peak stays at the configured capacity");
        assert_eq!(q.stats().requeued, 1, "the inherited re-admit is tracked separately");
        // The physical queue really does hold 3 jobs; draining proves no
        // job was lost to the accounting.
        assert_eq!(q.pop().unwrap().ticket, 1);
        assert_eq!(q.pop().unwrap().ticket, 2);
        assert_eq!(q.pop().unwrap().ticket, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn inherited_count_tracks_interleaved_pops_and_requeues() {
        let mut q = SubmissionQueue::new(3);
        q.try_push(job(1, None)).unwrap();
        q.try_push(job(2, None)).unwrap();
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        q.requeue_front(b);
        q.requeue_front(a); // front is now [a, b] — both inherited
        assert_eq!(q.stats().peak_depth, 2);
        assert_eq!(q.pop().unwrap().ticket, 1, "inherited jobs run first, LIFO among themselves");
        // One inherited job (b) still in the queue; a fresh admission counts
        // against the freed slots as usual.
        q.try_push(job(4, None)).unwrap();
        q.try_push(job(5, None)).unwrap();
        assert_eq!(q.stats().peak_depth, 2, "1 inherited + 2 fresh = 2 admitted slots");
        assert_eq!(q.stats().requeued, 2);
    }
}
