//! Per-device circuit breaker: `closed → open → half-open`, driven by
//! consecutive recovery-layer failures and by the injected-fault rate a
//! finished run reports ([`cuda_sim::FaultStats`]).
//!
//! The breaker sheds traffic away from a sick device: while it is **open**
//! the device's worker does not pop jobs (they stay queued for healthy
//! workers), and after a deterministic backoff the breaker admits exactly
//! one **half-open** probe. A successful probe re-closes the breaker; a
//! failed one re-opens it with a doubled backoff (capped).
//!
//! Time is an explicit `now_ms` parameter — the service feeds wall-clock
//! milliseconds since it started, tests feed a logical clock — so the whole
//! state machine is a pure function of its inputs and the "deterministic
//! reopen backoff" invariant is directly checkable (see the proptest suite
//! in `tests/breaker_properties.rs` and DESIGN.md §12).

use cuda_sim::FaultStats;

/// Tuning of one device's circuit breaker.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// Backoff before the first half-open probe, milliseconds. Doubles on
    /// every consecutive re-open.
    pub open_ms: u64,
    /// Cap of the doubling backoff, milliseconds.
    pub max_open_ms: u64,
    /// Injected-fault rate (faults per attempted launch) at or above which
    /// a *successful* run still counts as a failure signal — a device that
    /// needed the recovery layer for nearly every launch is sick even when
    /// recovery wins. Values above 1.0 disable the signal.
    pub fault_rate_threshold: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_ms: 250,
            max_open_ms: 4_000,
            fault_rate_threshold: 0.9,
        }
    }
}

/// Where the breaker is in its `closed → open → half-open` cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request is admitted.
    Closed,
    /// Shedding: no request is admitted until the backoff elapses.
    Open,
    /// Probing: the single probe has been granted; its outcome decides
    /// between re-closing and re-opening.
    HalfOpen,
}

/// Counters of what one breaker did over the service lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BreakerStats {
    /// Transitions into `Open` (first trips and re-opens alike).
    pub opened: u64,
    /// Half-open probes granted.
    pub probes: u64,
    /// Successful probes that re-closed the breaker.
    pub reclosed: u64,
}

/// One device's breaker. All methods take the current time explicitly;
/// callers must use one monotone clock consistently.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Consecutive `Open` entries without an intervening re-close; drives
    /// the doubling backoff. At least 1 whenever the breaker is open.
    reopens: u32,
    opened_at_ms: u64,
    /// What happened so far.
    pub stats: BreakerStats,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            reopens: 0,
            opened_at_ms: 0,
            stats: BreakerStats::default(),
        }
    }

    /// Current state, with the open→half-open transition *not* applied (the
    /// transition only happens when [`allow`](Self::allow) grants the probe).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The backoff the current (or next) open period uses: `open_ms`
    /// doubled per consecutive re-open, capped at `max_open_ms`. A pure
    /// function of the re-open count — never of the clock — which is the
    /// "deterministic reopen backoff" half of the breaker contract.
    pub fn open_duration_ms(&self) -> u64 {
        let exp = self.reopens.saturating_sub(1).min(32);
        self.config
            .open_ms
            .max(1)
            .saturating_mul(1u64 << exp)
            .min(self.config.max_open_ms.max(1))
    }

    /// May this device take a request at `now_ms`? Granting the first call
    /// after an elapsed open backoff transitions to half-open and counts
    /// the probe; every further call is refused until the probe's outcome
    /// is recorded.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ms.saturating_sub(self.opened_at_ms) >= self.open_duration_ms() {
                    self.state = BreakerState::HalfOpen;
                    self.stats.probes += 1;
                    true
                } else {
                    false
                }
            }
            // The single probe is already out.
            BreakerState::HalfOpen => false,
        }
    }

    /// Record a completed request that produced a usable answer.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.reopens = 0;
            self.stats.reclosed += 1;
        }
    }

    /// Record a failed request (recovery-layer error or worker crash).
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => self.trip(now_ms),
            BreakerState::Closed
                if self.consecutive_failures >= self.config.failure_threshold.max(1) =>
            {
                self.trip(now_ms)
            }
            // Open, or closed below threshold: nothing more to do — a
            // failure while open can only come from a run that was already
            // in flight when the breaker tripped.
            _ => {}
        }
    }

    /// Feed a *successful* run's injected-fault counters: at or above the
    /// configured rate the run counts as a failure signal, otherwise as a
    /// success. Returns whether the fault rate tripped the failure path.
    pub fn note_fault_rate(&mut self, faults: &FaultStats, now_ms: u64) -> bool {
        let injected = faults.transient_launch_failures + faults.hung_kernels;
        let sick = faults.launches_attempted > 0
            && injected as f64 / faults.launches_attempted as f64
                >= self.config.fault_rate_threshold;
        if sick {
            self.record_failure(now_ms);
        } else {
            self.record_success();
        }
        sick
    }

    fn trip(&mut self, now_ms: u64) {
        self.state = BreakerState::Open;
        self.reopens = self.reopens.saturating_add(1);
        self.opened_at_ms = now_ms;
        self.consecutive_failures = 0;
        self.stats.opened += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_ms: 100,
            max_open_ms: 400,
            fault_rate_threshold: 0.9,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_and_sheds() {
        let mut b = breaker();
        assert!(b.allow(0));
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold stays closed");
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats.opened, 1);
        assert!(!b.allow(50), "open breaker sheds until the backoff elapses");
        assert!(!b.allow(101), "opened at t=2: 2+100 elapses at 102");
        assert!(b.allow(102), "backoff elapsed: the probe is granted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(103), "exactly one probe in half-open");
        assert_eq!(b.stats.probes, 1);
    }

    #[test]
    fn probe_outcome_decides_reclose_or_doubled_reopen() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(102));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats.reclosed, 1);
        assert_eq!(b.open_duration_ms(), 100, "re-close resets the backoff");

        // Trip again; this time the probe fails: backoff doubles per
        // consecutive re-open and caps at max_open_ms.
        for t in 200..203 {
            b.record_failure(t);
        }
        assert_eq!(b.open_duration_ms(), 100);
        assert!(b.allow(302));
        b.record_failure(303);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_duration_ms(), 200, "second consecutive open doubles");
        assert!(!b.allow(502));
        assert!(b.allow(503));
        b.record_failure(504);
        assert_eq!(b.open_duration_ms(), 400);
        b.record_failure(700); // while open: no state change
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(904), "opened at 504 + 400 backoff");
        b.record_failure(905);
        assert_eq!(b.open_duration_ms(), 400, "capped at max_open_ms");
    }

    #[test]
    fn intervening_success_resets_the_consecutive_count() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        b.record_success();
        b.record_failure(2);
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Closed, "the streak was broken");
        b.record_failure(4);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn fault_rate_counts_as_failure_signal() {
        let mut b = breaker();
        let sick = FaultStats {
            launches_attempted: 10,
            transient_launch_failures: 9,
            ..Default::default()
        };
        let healthy = FaultStats { launches_attempted: 10, ..Default::default() };
        assert!(b.note_fault_rate(&sick, 0));
        assert!(b.note_fault_rate(&sick, 1));
        assert!(b.note_fault_rate(&sick, 2));
        assert_eq!(b.state(), BreakerState::Open, "three all-faulty runs trip the breaker");
        assert!(b.allow(102));
        assert!(!b.note_fault_rate(&healthy, 103), "clean run re-closes via the probe");
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
