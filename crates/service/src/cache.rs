//! Content-addressed solution cache.
//!
//! Keys are [`cdd_core::SolveRequest::content_key`] values: a request's
//! instance data, algorithm, budget and seed fully determine its result
//! (the determinism contract of the pipelines), so serving a stored outcome
//! for an equal key is *bit-identical* to re-running the solve — same
//! sequence, same objective. The deadline is deliberately not part of the
//! key: it changes urgency, not work.
//!
//! Eviction is LRU over a logical clock (no wall-clock reads — cache
//! contents stay deterministic under replay). The stats distinguish
//! *hits* (served from a completed entry), *coalesced* requests (attached
//! to an identical in-flight solve — the service's cache layer, not this
//! struct, detects those) and *misses* (fresh dispatches).

use cdd_core::SolveOutcome;
use std::collections::HashMap;

/// Hit/miss/eviction counters of the cache layer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a completed cache entry.
    pub hits: u64,
    /// Requests coalesced onto an identical queued or in-flight solve.
    pub coalesced: u64,
    /// Requests that required a fresh dispatch.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Inserts that found the key already present and refreshed the stored
    /// outcome in place (the entry count does not grow).
    pub replacements: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served without a fresh dispatch (direct hits
    /// plus coalesced requests).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

struct Entry {
    outcome: SolveOutcome,
    last_used: u64,
}

/// A capacity-bounded LRU map from request content key to solved outcome.
pub struct SolutionCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, Entry>,
    stats: CacheStats,
}

impl SolutionCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely — every request is a miss and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        SolutionCache { capacity, clock: 0, entries: HashMap::new(), stats: CacheStats::default() }
    }

    /// Look up a completed outcome. On a hit, returns the stored outcome
    /// re-labelled as a cached response (`cache_hit = true`, `device =
    /// None`) and counts the hit; absence counts nothing (the service
    /// decides between *coalesced* and *miss* afterwards).
    pub fn lookup(&mut self, key: u64) -> Option<SolveOutcome> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(&key)?;
        entry.last_used = clock;
        self.stats.hits += 1;
        Some(SolveOutcome { cache_hit: true, device: None, ..entry.outcome.clone() })
    }

    /// Record that a request joined an identical queued or in-flight solve.
    pub fn note_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Record that a request required a fresh dispatch.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Store a completed outcome, evicting the least-recently-used entry if
    /// the cache is full. Returns the evicted key, if any — the victim is
    /// fully determined by the operation history (every entry's `last_used`
    /// clock value is unique, so the LRU minimum is unambiguous even though
    /// the underlying `HashMap` iterates in randomized order).
    pub fn insert(&mut self, key: u64, outcome: &SolveOutcome) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&lru) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
            {
                self.entries.remove(&lru);
                self.stats.evictions += 1;
                evicted = Some(lru);
            }
        }
        let previous = self.entries.insert(
            key,
            Entry { outcome: outcome.clone(), last_used: self.clock },
        );
        if previous.is_none() {
            self.stats.insertions += 1;
        } else {
            // Refreshing an existing key is still a write the operator
            // should see — it used to vanish from the stats entirely.
            self.stats.replacements += 1;
        }
        evicted
    }

    /// Entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::JobSequence;

    fn outcome(objective: i64) -> SolveOutcome {
        SolveOutcome {
            sequence: JobSequence::identity(3),
            objective,
            modeled_seconds: 0.5,
            evaluations: 100,
            cache_hit: false,
            device: Some(1),
            cpu_fallback: false,
            degraded: false,
        }
    }

    #[test]
    fn hits_return_relabelled_outcomes() {
        let mut cache = SolutionCache::new(4);
        assert!(cache.lookup(7).is_none());
        cache.insert(7, &outcome(42));
        let hit = cache.lookup(7).expect("stored");
        assert_eq!(hit.objective, 42);
        assert!(hit.cache_hit);
        assert_eq!(hit.device, None);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut cache = SolutionCache::new(2);
        cache.insert(1, &outcome(1));
        cache.insert(2, &outcome(2));
        cache.lookup(1); // makes 2 the LRU entry
        cache.insert(3, &outcome(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(1).is_some() && cache.lookup(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_counts_as_replacement_not_insertion() {
        // Regression: refreshing an existing key used to leave every
        // counter untouched, making repeated writes invisible in the stats.
        let mut cache = SolutionCache::new(2);
        cache.insert(1, &outcome(1));
        cache.insert(1, &outcome(10));
        cache.insert(1, &outcome(20));
        assert_eq!(cache.stats().insertions, 1, "one distinct key stored");
        assert_eq!(cache.stats().replacements, 2, "both refreshes counted");
        assert_eq!(cache.stats().evictions, 0, "a refresh never evicts");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(1).unwrap().objective, 20, "latest outcome wins");
    }

    #[test]
    fn replacement_refreshes_recency() {
        let mut cache = SolutionCache::new(2);
        cache.insert(1, &outcome(1));
        cache.insert(2, &outcome(2));
        cache.insert(1, &outcome(10)); // refresh makes key 2 the LRU entry
        cache.insert(3, &outcome(3));
        assert!(cache.lookup(2).is_none(), "stale key evicted");
        assert!(cache.lookup(1).is_some());
        assert_eq!(cache.stats().replacements, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = SolutionCache::new(0);
        cache.insert(1, &outcome(1));
        assert!(cache.is_empty());
        assert!(cache.lookup(1).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn hit_rate_counts_coalesced_requests_as_served() {
        let mut cache = SolutionCache::new(4);
        cache.note_miss();
        cache.note_coalesced();
        cache.insert(1, &outcome(1));
        cache.lookup(1);
        let s = cache.stats();
        assert_eq!((s.hits, s.coalesced, s.misses), (1, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
