//! The solver service: a bounded submission queue feeding a pool of
//! simulated GPU devices through work stealing, fronted by a
//! content-addressed solution cache.
//!
//! # Architecture
//!
//! ```text
//! submit() ──► cache lookup ──hit──► answered immediately
//!                  │miss
//!                  ├─► identical job queued/in flight? ──► coalesce onto it
//!                  │no
//!                  └─► bounded FIFO queue ──full──► SuiteError::Rejected
//!                            │
//!            (work stealing: each idle device worker pops the next job)
//!                            │
//!          device 0 ─ device 1 ─ … ─ device N-1   (one in-flight run each)
//!                            │
//!                  completion: cache insert + ticket fulfilment
//! ```
//!
//! # Determinism contract
//!
//! Which *device* runs a request and how long it waits are wall-clock
//! matters and vary run to run. The request's *fitness* does not: the
//! pipelines are deterministic in `(instance, algorithm, iterations,
//! seed)`, and a device's per-request fault plan is derived purely from its
//! base plan and the request seed ([`DeviceHandle::request_plan`] — device
//! id deliberately excluded). A uniform fleet therefore returns the same
//! sequence and objective for a request no matter how it is routed, and a
//! cached response is bit-identical to a fresh solve of the same request.
//! Per-device utilization, latency and the hit/coalesced split are *not*
//! part of the contract.

use crate::cache::{CacheStats, SolutionCache};
use crate::queue::{QueueStats, QueuedJob, SubmissionQueue};
use cdd_core::{SolveOutcome, SolveRequest, SuiteError};
use cdd_gpu::{counter_trace_events, run_gpu_solve, ConvergenceSummary, GpuSolveSpec, RecoveryPolicy};
use cdd_metrics::trace::{TraceEvent, TraceSink};
use cdd_metrics::{latency_ms_buckets, MetricsRegistry};
use cuda_sim::{
    timeline_trace_events, DeviceHandle, DeviceSpec, DeviceUsage, FaultPlan, FaultStats,
    TelemetryConfig,
};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Static configuration of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool size (how many simulated devices run concurrently; min 1).
    pub devices: usize,
    /// Submission-queue capacity; a full queue rejects new requests.
    pub queue_capacity: usize,
    /// Solution-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Grid size of every dispatched solve.
    pub blocks: usize,
    /// Block size of every dispatched solve.
    pub block_size: usize,
    /// Hardware description shared by all pool devices.
    pub device_spec: DeviceSpec,
    /// Base fault plan installed on *every* device (`None` = clean fleet).
    pub fault: Option<FaultPlan>,
    /// Per-device overrides: `(device id, plan)` — takes precedence over
    /// `fault` for that device, making single-device failure scenarios
    /// expressible.
    pub device_faults: Vec<(usize, FaultPlan)>,
    /// Retry/re-attempt/fallback policy applied to every solve.
    pub recovery: RecoveryPolicy,
    /// Record every run's profiler timeline as Chrome trace events (one
    /// track per device, timestamps on the modeled clock). Off by default —
    /// traces grow with the workload.
    pub capture_trace: bool,
    /// Convergence-telemetry policy applied to every dispatched solve
    /// (disabled by default). Enabling it adds `service_convergence_*`
    /// counters to the report and, with `capture_trace`, best-so-far
    /// counter tracks to the Chrome trace; it never changes a result.
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            devices: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            blocks: 1,
            block_size: 64,
            device_spec: DeviceSpec::gt560m(),
            fault: None,
            device_faults: Vec::new(),
            recovery: RecoveryPolicy::default(),
            capture_trace: false,
            telemetry: TelemetryConfig::disabled(),
        }
    }
}

/// Fleet-wide convergence tallies, summed over every request a device ran.
/// Each request's summary is derived from its deterministic trace, so the
/// fleet totals are routing-independent — they qualify for the `service_`
/// metric namespace.
#[derive(Debug, Clone, Copy, Default)]
struct ConvergenceTotals {
    /// Requests that produced a convergence trace.
    requests: u64,
    /// Generation samples recorded across those traces.
    samples: u64,
    /// Chains whose best-so-far had already plateaued by mid-run.
    stalled_chains: u64,
    /// Requests whose trace ended in a diversity collapse.
    collapsed: u64,
}

impl ConvergenceTotals {
    fn absorb(&mut self, other: ConvergenceTotals) {
        self.requests += other.requests;
        self.samples += other.samples;
        self.stalled_chains += other.stalled_chains;
        self.collapsed += other.collapsed;
    }

    fn record(&mut self, summary: &ConvergenceSummary) {
        self.requests += 1;
        self.samples += summary.samples as u64;
        // The fraction was computed as count/chains; recover the count.
        self.stalled_chains +=
            (summary.stalled_chain_fraction * summary.chains as f64).round() as u64;
        self.collapsed += u64::from(summary.diversity_collapse_gen.is_some());
    }
}

/// The answer to one submitted request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The ticket this outcome fulfils.
    pub ticket: u64,
    /// Device that did the work (`None` when answered from the cache or
    /// expired before dispatch; coalesced requests report the device that
    /// ran the shared solve).
    pub device: Option<usize>,
    /// Milliseconds from submission to fulfilment.
    pub wall_ms: f64,
    /// The solve result, or why it was not produced.
    pub result: Result<SolveOutcome, SuiteError>,
}

/// Per-device section of the final report.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Pool device id.
    pub id: usize,
    /// Accumulated usage (modeled time, run counts, injected faults).
    pub usage: DeviceUsage,
    /// Busy-wall-seconds / service-wall-seconds.
    pub utilization: f64,
}

/// Counters and per-device usage returned by [`SolverService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Wall-clock lifetime of the service, seconds.
    pub wall_seconds: f64,
    /// Tickets accepted (admitted, coalesced or cache-answered).
    pub submitted: u64,
    /// Tickets answered with a solve outcome.
    pub completed: u64,
    /// Tickets answered with a device/pipeline error.
    pub failed: u64,
    /// Tickets expired before dispatch.
    pub expired: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Queue depth/admission counters.
    pub queue: QueueStats,
    /// Cache hit/miss/eviction counters.
    pub cache: CacheStats,
    /// Per-device usage and utilization.
    pub devices: Vec<DeviceReport>,
    /// Metrics snapshot of the whole service lifetime. Series under the
    /// `service_` prefix are timing-independent for a deterministic
    /// workload (no deadline expiries, no capacity evictions): they count
    /// *what* was computed, which the determinism contract fixes, not
    /// *where or when*, which it does not. The `timing_` and `device_`
    /// prefixes carry the wall-clock-dependent remainder (latency
    /// histograms, the hit/coalesce split, per-device placement).
    pub metrics: MetricsRegistry,
    /// Chrome trace of every run's profiler timeline, one track per device
    /// on the modeled clock. Empty unless [`ServiceConfig::capture_trace`]
    /// was set.
    pub trace: TraceSink,
}

/// A request coalesced onto an identical queued or in-flight primary.
struct Follower {
    ticket: u64,
    submitted: Instant,
    deadline_ms: Option<u64>,
}

struct State {
    queue: SubmissionQueue,
    /// `content key → followers`; a key is present exactly while a primary
    /// with that key is queued or in flight.
    waiters: HashMap<u64, Vec<Follower>>,
    results: HashMap<u64, RequestOutcome>,
    cache: SolutionCache,
    /// Live registry: per-request latency observations land here as they
    /// happen; the lifetime counters are folded in once at shutdown.
    metrics: MetricsRegistry,
    submitted: u64,
    completed: u64,
    failed: u64,
    expired: u64,
    next_ticket: u64,
    shutdown: bool,
}

impl State {
    /// Record one request's submission→fulfilment latency. Wall-clock
    /// durations vary run to run, hence the `timing_` prefix.
    fn observe_latency(&mut self, wall_ms: f64) {
        self.metrics.observe("timing_request_wall_ms", &[], wall_ms, latency_ms_buckets());
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work arrives or shutdown begins (workers wait here).
    work: Condvar,
    /// Signalled when a ticket is fulfilled (clients wait here).
    done: Condvar,
    blocks: usize,
    block_size: usize,
    recovery: RecoveryPolicy,
    capture_trace: bool,
    telemetry: TelemetryConfig,
}

fn elapsed_ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

/// A running solver service. Submit requests with [`submit`](Self::submit)
/// (or the blocking [`solve`](Self::solve)), collect answers with
/// [`wait`](Self::wait), and finish with [`shutdown`](Self::shutdown) to
/// drain the queue and obtain the [`ServiceReport`].
pub struct SolverService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<(DeviceHandle, Vec<TraceEvent>, ConvergenceTotals)>>,
    started: Instant,
}

impl SolverService {
    /// Start the worker pool (one thread per device).
    pub fn start(config: ServiceConfig) -> Self {
        let devices = config.devices.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: SubmissionQueue::new(config.queue_capacity),
                waiters: HashMap::new(),
                results: HashMap::new(),
                cache: SolutionCache::new(config.cache_capacity),
                metrics: MetricsRegistry::new(),
                submitted: 0,
                completed: 0,
                failed: 0,
                expired: 0,
                next_ticket: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            blocks: config.blocks,
            block_size: config.block_size,
            recovery: config.recovery.clone(),
            capture_trace: config.capture_trace,
            telemetry: config.telemetry,
        });
        let workers = (0..devices)
            .map(|id| {
                let plan = config
                    .device_faults
                    .iter()
                    .find(|(dev, _)| *dev == id)
                    .map(|(_, p)| p.clone())
                    .or_else(|| config.fault.clone());
                let mut handle = DeviceHandle::new(id, config.device_spec.clone());
                if let Some(p) = plan {
                    handle = handle.with_fault(p);
                }
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("cdd-device-{id}"))
                    .spawn(move || worker_loop(&shared, handle))
                    .expect("worker thread spawns")
            })
            .collect();
        SolverService { shared, workers, started: Instant::now() }
    }

    /// Submit a request. Returns a ticket to [`wait`](Self::wait) on, or
    /// [`SuiteError::Rejected`] immediately when the queue is full or the
    /// service is shutting down. Never blocks on a full queue.
    pub fn submit(&self, request: SolveRequest) -> Result<u64, SuiteError> {
        let key = request.content_key();
        let mut st = self.shared.state.lock().expect("service state lock");
        if st.shutdown {
            return Err(SuiteError::rejected("service is shutting down"));
        }
        let ticket = st.next_ticket;

        // 1. Completed identical solve in the cache?
        if let Some(outcome) = st.cache.lookup(key) {
            st.next_ticket += 1;
            st.submitted += 1;
            st.completed += 1;
            st.observe_latency(0.0);
            st.results.insert(
                ticket,
                RequestOutcome { ticket, device: None, wall_ms: 0.0, result: Ok(outcome) },
            );
            self.shared.done.notify_all();
            return Ok(ticket);
        }

        // 2. Identical solve queued or in flight? Ride along.
        if let Some(followers) = st.waiters.get_mut(&key) {
            followers.push(Follower {
                ticket,
                submitted: Instant::now(),
                deadline_ms: request.deadline_ms,
            });
            st.cache.note_coalesced();
            st.next_ticket += 1;
            st.submitted += 1;
            return Ok(ticket);
        }

        // 3. Fresh dispatch — subject to admission control.
        st.queue.try_push(QueuedJob { ticket, request, key, submitted: Instant::now() })?;
        st.cache.note_miss();
        st.waiters.insert(key, Vec::new());
        st.next_ticket += 1;
        st.submitted += 1;
        self.shared.work.notify_one();
        Ok(ticket)
    }

    /// Block until the ticket (from [`submit`](Self::submit)) is answered.
    pub fn wait(&self, ticket: u64) -> RequestOutcome {
        let mut st = self.shared.state.lock().expect("service state lock");
        loop {
            if let Some(outcome) = st.results.remove(&ticket) {
                return outcome;
            }
            st = self.shared.done.wait(st).expect("service state lock");
        }
    }

    /// Submit and wait: the synchronous client API.
    pub fn solve(&self, request: SolveRequest) -> Result<SolveOutcome, SuiteError> {
        let ticket = self.submit(request)?;
        self.wait(ticket).result
    }

    /// Stop accepting work, drain the queue, join the workers and report.
    pub fn shutdown(mut self) -> ServiceReport {
        {
            let mut st = self.shared.state.lock().expect("service state lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        let joined: Vec<(DeviceHandle, Vec<TraceEvent>, ConvergenceTotals)> =
            self.workers.drain(..).map(|w| w.join().expect("worker thread exits")).collect();
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let mut st = self.shared.state.lock().expect("service state lock");

        let mut metrics = std::mem::take(&mut st.metrics);
        let queue = st.queue.stats().clone();
        let cache = st.cache.stats().clone();
        let convergence = self.shared.telemetry.enabled().then(|| {
            let mut totals = ConvergenceTotals::default();
            for (_, _, t) in &joined {
                totals.absorb(*t);
            }
            totals
        });
        fold_final_metrics(&mut metrics, &st, &queue, &cache, &joined, convergence, wall_seconds);

        let mut trace = TraceSink::new();
        if self.shared.capture_trace {
            trace.name_process(0, "cdd-service");
            // One named track per device, present even when a device never
            // ran a request — the Perfetto view shows the whole fleet.
            for (h, _, _) in &joined {
                trace.name_track(0, h.id as u32, &format!("device {}", h.id));
            }
            for (_, events, _) in &joined {
                trace.extend(events.iter().cloned());
            }
        }

        ServiceReport {
            wall_seconds,
            submitted: st.submitted,
            completed: st.completed,
            failed: st.failed,
            expired: st.expired,
            rejected: queue.rejected,
            queue,
            cache,
            devices: joined
                .into_iter()
                .map(|(h, _, _)| DeviceReport {
                    id: h.id,
                    utilization: h.usage.utilization(wall_seconds),
                    usage: h.usage,
                })
                .collect(),
            metrics,
            trace,
        }
    }
}

/// Fold the service's lifetime counters into the registry at shutdown.
///
/// Naming contract: the `service_` prefix carries only series that are
/// reproducible across runs of a deterministic workload (pure u64 counts of
/// admitted/answered work and injected faults — per-request fault plans are
/// routing-independent, so the fleet-wide totals don't depend on placement).
/// Anything shaped by the wall clock — latency, the hit-vs-coalesced split,
/// per-device placement and utilization — lives under `timing_` or
/// `device_` instead, so a consumer can byte-compare the deterministic
/// subset with `grep '^service_'`.
fn fold_final_metrics(
    metrics: &mut MetricsRegistry,
    st: &State,
    queue: &QueueStats,
    cache: &CacheStats,
    joined: &[(DeviceHandle, Vec<TraceEvent>, ConvergenceTotals)],
    convergence: Option<ConvergenceTotals>,
    wall_seconds: f64,
) {
    metrics.inc("service_requests_submitted_total", &[], st.submitted);
    metrics.inc("service_requests_completed_total", &[], st.completed);
    metrics.inc("service_requests_failed_total", &[], st.failed);
    metrics.inc("service_requests_expired_total", &[], st.expired);

    metrics.inc("service_queue_enqueued_total", &[], queue.enqueued);
    metrics.inc("service_queue_rejected_total", &[], queue.rejected);
    metrics.inc("service_queue_requeued_total", &[], queue.requeued);
    // Peak depth is a race between the submitting client and the draining
    // workers — timing-shaped, so it stays out of the `service_` namespace.
    metrics.set_gauge("timing_queue_peak_depth", &[], queue.peak_depth as f64);

    // Whether a repeat is served as a direct hit or by coalescing depends
    // on whether the primary finished first — a race. Their *sum* does not.
    metrics.inc("service_cache_served_total", &[], cache.hits + cache.coalesced);
    metrics.inc("service_cache_misses_total", &[], cache.misses);
    metrics.inc("service_cache_insertions_total", &[], cache.insertions);
    metrics.inc("service_cache_replacements_total", &[], cache.replacements);
    metrics.inc("service_cache_evictions_total", &[], cache.evictions);
    metrics.inc("timing_cache_hits_total", &[], cache.hits);
    metrics.inc("timing_cache_coalesced_total", &[], cache.coalesced);

    // Convergence tallies only exist when telemetry was on: a disabled
    // service must render a snapshot byte-identical to one that predates
    // the telemetry feature. When on, all four series are registered even
    // at zero so equal workloads stay line-for-line comparable.
    if let Some(conv) = convergence {
        metrics.inc("service_convergence_requests_total", &[], conv.requests);
        metrics.inc("service_convergence_samples_total", &[], conv.samples);
        metrics.inc("service_convergence_stalled_chains_total", &[], conv.stalled_chains);
        metrics.inc("service_convergence_collapsed_total", &[], conv.collapsed);
    }

    let mut fleet_faults = FaultStats::default();
    for (h, _, _) in joined {
        fleet_faults.launches_attempted += h.usage.faults.launches_attempted;
        fleet_faults.transient_launch_failures += h.usage.faults.transient_launch_failures;
        fleet_faults.bit_flips += h.usage.faults.bit_flips;
        fleet_faults.hung_kernels += h.usage.faults.hung_kernels;
        h.usage.observe_into(metrics, &h.id.to_string(), wall_seconds);
    }
    fleet_faults.observe_into(metrics, "service_fault", &[]);

    metrics.set_gauge("timing_wall_seconds", &[], wall_seconds);
}

impl Drop for SolverService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown() already joined them
        }
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One device worker: steal the next job off the shared queue, run it on
/// this device, publish the outcome. Returns the handle (with accumulated
/// usage) when the service shuts down and the queue is drained.
fn worker_loop(
    shared: &Arc<Shared>,
    mut handle: DeviceHandle,
) -> (DeviceHandle, Vec<TraceEvent>, ConvergenceTotals) {
    // This device's trace track: each run's timeline is appended where the
    // previous one ended, so the track reads as one continuous modeled-time
    // axis per device.
    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut trace_clock_us = 0.0f64;
    let mut convergence = ConvergenceTotals::default();
    loop {
        let job = {
            let mut st = shared.state.lock().expect("service state lock");
            loop {
                match st.queue.pop() {
                    Some(job) if job.expired() => {
                        expire_locked(&mut st, job);
                        shared.done.notify_all();
                        // A promoted follower (if any) is at the queue
                        // front; keep popping.
                    }
                    Some(job) => break Some(job),
                    None if st.shutdown => break None,
                    None => st = shared.work.wait(st).expect("service state lock"),
                }
            }
        };
        let Some(job) = job else { return (handle, trace, convergence) };

        // Run outside the lock — this is the long part, and it is what
        // makes the pool concurrent: every other worker keeps stealing
        // while this device is busy.
        let run_started = Instant::now();
        let spec = GpuSolveSpec {
            blocks: shared.blocks,
            block_size: shared.block_size,
            device: handle.spec.clone(),
            fault: handle.request_plan(job.request.seed),
            recovery: shared.recovery.clone(),
            telemetry: shared.telemetry,
        };
        let result = run_gpu_solve(
            &job.request.instance,
            job.request.algorithm,
            job.request.iterations,
            job.request.seed,
            &spec,
        );
        let run_wall = run_started.elapsed().as_secs_f64();
        match &result {
            Ok(r) => {
                handle.usage.record_run(
                    r.modeled_seconds,
                    r.kernel_seconds,
                    r.transfer_seconds,
                    r.kernel_launches,
                    run_wall,
                    false,
                );
                handle.usage.merge_faults(r.recovery.faults);
                if let Some(trace_data) = &r.convergence {
                    convergence.record(&ConvergenceSummary::from_trace(trace_data));
                }
                if shared.capture_trace {
                    let tid = handle.id as u32;
                    let (events, end_us) =
                        timeline_trace_events(&r.timeline, 0, tid, trace_clock_us);
                    trace.push(
                        TraceEvent::begin(
                            &format!("request seed={}", job.request.seed),
                            "request",
                            0,
                            tid,
                            trace_clock_us,
                        )
                        .with_arg("algorithm", job.request.algorithm)
                        .with_arg("iterations", job.request.iterations),
                    );
                    trace.extend(events);
                    // Best-so-far counter samples, pinned to the same
                    // modeled-clock offsets as the kernel spans above.
                    if let Some(conv) = &r.convergence {
                        trace.extend(counter_trace_events(
                            conv,
                            &r.timeline,
                            0,
                            tid,
                            trace_clock_us,
                        ));
                    }
                    trace.push(TraceEvent::end(
                        &format!("request seed={}", job.request.seed),
                        "request",
                        0,
                        tid,
                        end_us,
                    ));
                    trace_clock_us = end_us;
                }
            }
            Err(_) => handle.usage.record_run(0.0, 0.0, 0.0, 0, run_wall, true),
        }

        let mut st = shared.state.lock().expect("service state lock");
        complete_locked(&mut st, job, handle.id, result);
        shared.done.notify_all();
    }
}

/// Fulfil an expired primary; promote its oldest still-live follower into
/// the vacated queue slot (at the front — it has been waiting longest).
fn expire_locked(st: &mut State, job: QueuedJob) {
    st.expired += 1;
    let deadline = job.request.deadline_ms.unwrap_or(0);
    st.observe_latency(elapsed_ms(job.submitted));
    st.results.insert(
        job.ticket,
        RequestOutcome {
            ticket: job.ticket,
            device: None,
            wall_ms: elapsed_ms(job.submitted),
            result: Err(SuiteError::deadline(deadline)),
        },
    );
    let Some(followers) = st.waiters.remove(&job.key) else { return };
    let mut rest = followers.into_iter();
    for f in rest.by_ref() {
        // Compare in u128 — truncating elapsed ms to u64 could wrap a huge
        // deadline into a premature expiry (same fix as `QueuedJob::expired`).
        let f_expired = match f.deadline_ms {
            Some(ms) => f.submitted.elapsed().as_millis() >= u128::from(ms),
            None => false,
        };
        if f_expired {
            st.expired += 1;
            st.observe_latency(elapsed_ms(f.submitted));
            st.results.insert(
                f.ticket,
                RequestOutcome {
                    ticket: f.ticket,
                    device: None,
                    wall_ms: elapsed_ms(f.submitted),
                    result: Err(SuiteError::deadline(f.deadline_ms.unwrap_or(0))),
                },
            );
            continue;
        }
        let request = SolveRequest { deadline_ms: f.deadline_ms, ..job.request.clone() };
        st.queue.requeue_front(QueuedJob {
            ticket: f.ticket,
            request,
            key: job.key,
            submitted: f.submitted,
        });
        st.waiters.insert(job.key, rest.collect());
        return;
    }
}

/// Publish a finished solve: update the cache, fulfil the primary ticket
/// and every coalesced follower.
fn complete_locked(
    st: &mut State,
    job: QueuedJob,
    device: usize,
    result: Result<cdd_gpu::GpuRunResult, SuiteError>,
) {
    let outcome: Result<SolveOutcome, SuiteError> = match result {
        Ok(r) => {
            let o = SolveOutcome {
                sequence: r.best,
                objective: r.objective,
                modeled_seconds: r.modeled_seconds,
                evaluations: r.evaluations,
                cache_hit: false,
                device: Some(device),
                cpu_fallback: r.recovery.cpu_fallback,
            };
            st.cache.insert(job.key, &o);
            Ok(o)
        }
        Err(e) => Err(e),
    };
    fulfil(st, job.ticket, device, job.submitted, &outcome, false);
    if let Some(followers) = st.waiters.remove(&job.key) {
        for f in followers {
            fulfil(st, f.ticket, device, f.submitted, &outcome, true);
        }
    }
}

fn fulfil(
    st: &mut State,
    ticket: u64,
    device: usize,
    submitted: Instant,
    outcome: &Result<SolveOutcome, SuiteError>,
    coalesced: bool,
) {
    let result = match outcome {
        Ok(o) => {
            st.completed += 1;
            Ok(if coalesced {
                // A follower's answer came from the shared computation —
                // semantically a cache hit that was satisfied in flight.
                SolveOutcome { cache_hit: true, device: None, ..o.clone() }
            } else {
                o.clone()
            })
        }
        Err(e) => {
            st.failed += 1;
            Err(e.clone())
        }
    };
    let wall_ms = elapsed_ms(submitted);
    st.observe_latency(wall_ms);
    st.results.insert(ticket, RequestOutcome { ticket, device: Some(device), wall_ms, result });
}
