//! The solver service: a bounded submission queue feeding a pool of
//! simulated GPU devices through work stealing, fronted by a
//! content-addressed solution cache and watched over by a supervisor.
//!
//! # Architecture
//!
//! ```text
//! submit() ──► cache lookup ──hit──► answered immediately
//!                  │miss
//!                  ├─► identical job queued/in flight? ──► coalesce onto it
//!                  │no
//!                  └─► bounded FIFO queue ──full──► SuiteError::Rejected
//!                            │
//!            (work stealing: each idle device worker pops the next job,
//!             gated by that device's circuit breaker)
//!                            │
//!          device 0 ─ device 1 ─ … ─ device N-1   (one in-flight run each)
//!                │ DeviceLost            │ completion: cache insert +
//!                ▼                       ▼ ticket fulfilment
//!          worker panics ──► supervisor reaps, restarts the worker with a
//!          fresh device, and re-dispatches the in-flight job (bounded
//!          deterministic retry/backoff) or serves it degraded from the
//!          CPU oracle (`cdd_core::degraded_outcome`)
//! ```
//!
//! The resilience pieces live in sibling modules: [`crate::supervisor`]
//! (worker death detection, restart, retry/park/degrade policy) and
//! [`crate::breaker`] (the per-device `closed → open → half-open` circuit
//! breaker). Mutable per-device state — usage, breaker, trace, in-flight
//! job — lives in [`SlotState`] inside the shared state, **not** in the
//! worker thread, so it survives worker crashes and restarts.
//!
//! # Determinism contract
//!
//! Which *device* runs a request, how long it waits and how often its
//! worker was restarted are wall-clock matters and vary run to run. The
//! request's *fitness and degraded flag* do not: the pipelines are
//! deterministic in `(instance, algorithm, iterations, seed)`, a device's
//! per-request fault plan is derived purely from its base plan, the request
//! seed and the retry ordinal ([`DeviceHandle::request_plan_retry`] —
//! device id deliberately excluded), and a degraded answer is pure in the
//! instance. Whether attempt `r` of a request crashes is decided by plan
//! `r` alone, so the attempt trajectory — and therefore the final
//! `(fitness, degraded)` pair — is routing- and timing-independent for
//! deadline-free workloads. Per-device utilization, latency, the
//! hit/coalesced split and breaker state *timing* are not part of the
//! contract. See DESIGN.md §12.

use crate::breaker::{BreakerConfig, BreakerStats, CircuitBreaker};
use crate::cache::{CacheStats, SolutionCache};
use crate::queue::{QueueStats, QueuedJob, SubmissionQueue};
use crate::supervisor::{
    install_quiet_crash_hook, supervisor_loop, SupervisorConfig, WorkerCrashPanic,
};
use cdd_core::{Algorithm, Priority, SolveOutcome, SolveRequest, SuiteError, TraceContext};
use cdd_gpu::{
    counter_trace_events, run_gpu_solve, run_gpu_solve_batch, Backend, ConvergenceSummary,
    DeltaConfig, GpuSolveSpec, RecoveryPolicy,
};
use cdd_metrics::trace::{TraceEvent, TraceSink};
use cdd_metrics::{latency_ms_buckets, FlightHop, FlightRecord, MetricsRegistry};
use cuda_sim::{
    timeline_trace_events, DeviceHandle, DeviceSpec, DeviceUsage, FaultPlan, FaultStats,
    TelemetryConfig,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Static configuration of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool size (how many simulated devices run concurrently; min 1).
    pub devices: usize,
    /// Submission-queue capacity; a full queue rejects new requests.
    pub queue_capacity: usize,
    /// Solution-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Grid size of every dispatched solve.
    pub blocks: usize,
    /// Block size of every dispatched solve.
    pub block_size: usize,
    /// Hardware description shared by all pool devices.
    pub device_spec: DeviceSpec,
    /// Execution backend for clean production requests (DESIGN.md §16).
    /// Sim-only capabilities override it per request: a run that carries an
    /// *active* fault plan, convergence telemetry or trace capture always
    /// routes to [`Backend::Sim`], whatever is configured here — chaos,
    /// replay and verification traffic never silently loses its
    /// instrumentation. The default is [`Backend::Sim`]; production
    /// deployments opt into [`Backend::Native`] for wall-clock speed (the
    /// outcome is byte-identical either way, see `cdd_gpu`'s
    /// `backend_parity` suite).
    pub backend: Backend,
    /// Base fault plan installed on *every* device (`None` = clean fleet).
    pub fault: Option<FaultPlan>,
    /// Per-device overrides: `(device id, plan)` — takes precedence over
    /// `fault` for that device, making single-device failure scenarios
    /// expressible.
    pub device_faults: Vec<(usize, FaultPlan)>,
    /// Retry/re-attempt/fallback policy applied to every solve.
    pub recovery: RecoveryPolicy,
    /// Record every run's profiler timeline as Chrome trace events (one
    /// track per device, timestamps on the modeled clock). Off by default —
    /// traces grow with the workload.
    pub capture_trace: bool,
    /// Convergence-telemetry policy applied to every dispatched solve
    /// (disabled by default). Enabling it adds `service_convergence_*`
    /// counters to the report and, with `capture_trace`, best-so-far
    /// counter tracks to the Chrome trace; it never changes a result.
    pub telemetry: TelemetryConfig,
    /// Supervision policy: worker restart, retry budget, deterministic
    /// backoff and graceful degradation (see [`SupervisorConfig`]).
    pub supervisor: SupervisorConfig,
    /// Per-device circuit-breaker tuning (see [`BreakerConfig`]).
    pub breaker: BreakerConfig,
    /// Cross-request batching window: a worker that pops an SA job may
    /// drain up to `batch_window - 1` further *compatible* jobs off the
    /// queue front (same algorithm, problem kind, job count and iteration
    /// budget) and run them as one fused device launch sequence —
    /// amortizing the per-kernel launch overhead that dominates small-`n`
    /// traffic. `1` (the default) disables batching. Per-request outcomes
    /// are byte-identical to solo runs (see `cdd_gpu::batch`); fusion is
    /// skipped — jobs just run solo — on fault-injected slots and when
    /// telemetry or trace capture is on.
    pub batch_window: usize,
    /// Incremental (delta) candidate scoring for every dispatched SA solve
    /// — outcome-identical to full evaluation on clean runs (under an
    /// active fault plan it is a different deterministic trajectory, see
    /// the DESIGN.md §14 fault carve-out); DPSO and fused batch launches
    /// ignore it.
    pub delta: DeltaConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            devices: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            blocks: 1,
            block_size: 64,
            device_spec: DeviceSpec::gt560m(),
            backend: Backend::default(),
            fault: None,
            device_faults: Vec::new(),
            recovery: RecoveryPolicy::default(),
            capture_trace: false,
            telemetry: TelemetryConfig::disabled(),
            supervisor: SupervisorConfig::default(),
            breaker: BreakerConfig::default(),
            batch_window: 1,
            delta: DeltaConfig::default(),
        }
    }
}

/// Fleet-wide convergence tallies, summed over every request a device ran.
/// Each request's summary is derived from its deterministic trace, so the
/// fleet totals are routing-independent — they qualify for the `service_`
/// metric namespace.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ConvergenceTotals {
    /// Requests that produced a convergence trace.
    requests: u64,
    /// Generation samples recorded across those traces.
    samples: u64,
    /// Chains whose best-so-far had already plateaued by mid-run.
    stalled_chains: u64,
    /// Requests whose trace ended in a diversity collapse.
    collapsed: u64,
}

impl ConvergenceTotals {
    fn absorb(&mut self, other: ConvergenceTotals) {
        self.requests += other.requests;
        self.samples += other.samples;
        self.stalled_chains += other.stalled_chains;
        self.collapsed += other.collapsed;
    }

    fn record(&mut self, summary: &ConvergenceSummary) {
        self.requests += 1;
        self.samples += summary.samples as u64;
        // The fraction was computed as count/chains; recover the count.
        self.stalled_chains +=
            (summary.stalled_chain_fraction * summary.chains as f64).round() as u64;
        self.collapsed += u64::from(summary.diversity_collapse_gen.is_some());
    }
}

/// The answer to one submitted request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The ticket this outcome fulfils.
    pub ticket: u64,
    /// Device that did the work (`None` when answered from the cache,
    /// expired before dispatch or served degraded; coalesced requests
    /// report the device that ran the shared solve).
    pub device: Option<usize>,
    /// Milliseconds from submission to fulfilment.
    pub wall_ms: f64,
    /// The solve result, or why it was not produced.
    pub result: Result<SolveOutcome, SuiteError>,
    /// Per-hop flight record of this request's path through the service.
    /// `None` unless the request carried a sampled [`TraceContext`] —
    /// untraced requests are book-kept identically to a build without
    /// tracing. The record's `node` field is left empty here; the embedding
    /// (e.g. `cdd-node`) stamps its own label before shipping it.
    pub flight: Option<FlightRecord>,
}

/// Per-device section of the final report.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Pool device id.
    pub id: usize,
    /// Accumulated usage (modeled time, run counts, injected faults).
    /// Survives worker restarts — this is the *slot's* usage, not one
    /// worker incarnation's.
    pub usage: DeviceUsage,
    /// Busy-wall-seconds / service-wall-seconds.
    pub utilization: f64,
    /// Worker restarts the supervisor performed on this slot (crash
    /// reaps + stuck fences).
    pub restarts: u64,
    /// What this device's circuit breaker did.
    pub breaker: BreakerStats,
}

/// Counters and per-device usage returned by [`SolverService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Wall-clock lifetime of the service, seconds.
    pub wall_seconds: f64,
    /// Tickets accepted (admitted, coalesced or cache-answered).
    pub submitted: u64,
    /// Tickets answered with a solve outcome.
    pub completed: u64,
    /// Tickets answered with a device/pipeline error.
    pub failed: u64,
    /// Tickets expired before dispatch.
    pub expired: u64,
    /// Tickets answered from the CPU oracle with `degraded: true`
    /// (retry budget exhausted, or pulled by a brownout pass). Degraded
    /// answers count toward `completed` as well.
    pub degraded: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Crashed jobs re-admitted by the supervisor for another attempt.
    pub retried: u64,
    /// Worker restarts across the fleet (crash reaps + stuck fences).
    pub restarts: u64,
    /// Queue depth/admission counters.
    pub queue: QueueStats,
    /// Cache hit/miss/eviction counters.
    pub cache: CacheStats,
    /// Per-device usage, utilization, restarts and breaker activity.
    pub devices: Vec<DeviceReport>,
    /// Metrics snapshot of the whole service lifetime. Series under the
    /// `service_` prefix are timing-independent for a deterministic
    /// workload (no deadline expiries, no capacity evictions): they count
    /// *what* was computed, which the determinism contract fixes, not
    /// *where or when*, which it does not. The `timing_` and `device_`
    /// prefixes carry the wall-clock-dependent remainder (latency
    /// histograms, the hit/coalesce split, per-device placement). One
    /// carve-out: `service_breaker_*` totals are deterministic only in the
    /// clean case (all zero) — under chaos, per-slot consecutive-failure
    /// streaks depend on placement, so the chaos CI job byte-compares the
    /// per-request CSV instead of these series.
    pub metrics: MetricsRegistry,
    /// Chrome trace of every run's profiler timeline, one track per device
    /// on the modeled clock. Empty unless [`ServiceConfig::capture_trace`]
    /// was set.
    pub trace: TraceSink,
}

/// Live counters mid-flight — the probe-sized view of a running service
/// (see [`SolverService::snapshot`]). Everything here is a monotone count
/// or an instantaneous depth; the full per-device/metrics report still
/// requires [`SolverService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// Tickets accepted so far.
    pub submitted: u64,
    /// Tickets answered with a solve outcome so far.
    pub completed: u64,
    /// Tickets answered with an error so far.
    pub failed: u64,
    /// Tickets expired before dispatch so far.
    pub expired: u64,
    /// Tickets answered degraded so far.
    pub degraded: u64,
    /// Submissions refused by admission control so far.
    pub rejected: u64,
    /// Crashed jobs re-admitted for another attempt so far.
    pub retried: u64,
    /// Worker restarts across the fleet so far.
    pub restarts: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Cache hit/miss/eviction counters so far.
    pub cache: CacheStats,
}

/// A request coalesced onto an identical queued or in-flight primary.
struct Follower {
    ticket: u64,
    submitted: Instant,
    deadline_ms: Option<u64>,
    /// The follower's own trace context — a coalesced request keeps its own
    /// trace id even though the primary does the work.
    trace: Option<TraceContext>,
}

/// Whether a request asked for hop spans: it carries a sampled trace
/// context. Everything flight-record-shaped in this module is gated on
/// this, so untraced runs take the exact pre-tracing code path.
fn traced(request: &SolveRequest) -> bool {
    request.trace.is_some_and(|t| t.sampled)
}

/// Start a flight record for a sampled request, or `None`. The `node`
/// label is stamped by the embedding.
fn start_flight(trace: Option<TraceContext>) -> Option<FlightRecord> {
    trace.filter(|t| t.sampled).map(|t| FlightRecord::new(t.trace_id, ""))
}

/// Everything that belongs to one device *slot* and must survive worker
/// crashes: the worker thread is disposable, this is not.
pub(crate) struct SlotState {
    /// Fencing token: bumped on every restart. A worker whose generation
    /// no longer matches is a zombie — it discards its result and exits.
    pub(crate) generation: u64,
    /// The job this slot is currently running, if any. Taken by the
    /// supervisor on crash/stuck so the job can be re-dispatched.
    pub(crate) in_flight: Option<QueuedJob>,
    /// Further jobs fused onto the in-flight primary by the batching
    /// window. Empty outside a fused run; the supervisor re-dispatches
    /// these alongside `in_flight` when it fences the slot.
    pub(crate) in_flight_extras: Vec<QueuedJob>,
    /// Logical-clock ms (service epoch) of the worker's last sign of life
    /// (job pop or completion). Only meaningful while `in_flight` is some.
    pub(crate) heartbeat_ms: u64,
    /// This device's circuit breaker. Survives restarts deliberately — a
    /// crashing device should not get a fresh breaker with every worker.
    pub(crate) breaker: CircuitBreaker,
    /// Accumulated usage across all worker incarnations.
    pub(crate) usage: DeviceUsage,
    /// This device's trace track (when capture is on).
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) trace_clock_us: f64,
    /// Convergence tallies across all worker incarnations.
    pub(crate) convergence: ConvergenceTotals,
    /// Worker restarts on this slot (crash reaps + stuck fences).
    pub(crate) restarts: u64,
    /// Stuck fences among those restarts.
    pub(crate) stuck: u64,
}

/// A retried job waiting out its backoff before re-entering the queue.
pub(crate) struct ParkedJob {
    pub(crate) due_at: Instant,
    pub(crate) job: QueuedJob,
}

pub(crate) struct State {
    pub(crate) queue: SubmissionQueue,
    /// `content key → followers`; a key is present exactly while a primary
    /// with that key is queued or in flight.
    waiters: HashMap<u64, Vec<Follower>>,
    results: HashMap<u64, RequestOutcome>,
    cache: SolutionCache,
    /// Live registry: per-request latency observations land here as they
    /// happen; the lifetime counters are folded in once at shutdown.
    metrics: MetricsRegistry,
    submitted: u64,
    completed: u64,
    failed: u64,
    expired: u64,
    /// Tickets answered degraded (subset of `completed`).
    degraded: u64,
    /// Degraded answers that came from a brownout pass specifically.
    degraded_brownout: u64,
    /// Retry re-dispatches the supervisor scheduled (parked or immediate).
    pub(crate) retries_scheduled: u64,
    /// Fused device runs the batching window produced (each covered ≥ 2
    /// requests). Which jobs meet in the queue is a race between clients
    /// and workers, so these two live under the `timing_` namespace.
    batch_launches: u64,
    /// Requests answered out of those fused runs.
    batch_fused_requests: u64,
    /// Requests dispatched per execution backend, indexed `[sim, native]`.
    /// Deterministic on uniform fleets (routing is config- and
    /// capability-driven); on mixed `device_faults` fleets a request's
    /// backend follows the slot race, the same carve-out as
    /// `service_breaker_*`.
    backend_requests: [u64; 2],
    /// Accepted tickets per tenant (BTreeMap: deterministic fold order).
    tenant_submitted: BTreeMap<String, u64>,
    /// Accepted tickets per priority class, indexed by `Priority::as_u8`.
    priority_submitted: [u64; 3],
    next_ticket: u64,
    pub(crate) shutdown: bool,
    pub(crate) slots: Vec<SlotState>,
    pub(crate) parked: Vec<ParkedJob>,
}

impl State {
    /// Record one request's submission→fulfilment latency. Wall-clock
    /// durations vary run to run, hence the `timing_` prefix.
    fn observe_latency(&mut self, wall_ms: f64) {
        self.metrics.observe("timing_request_wall_ms", &[], wall_ms, latency_ms_buckets());
    }

    /// Book-keep an accepted ticket against its tenant and priority class.
    /// Pure counts of admitted work — they qualify for the `service_`
    /// metric namespace.
    fn note_accepted(&mut self, tenant: &str, priority: Priority) {
        self.submitted += 1;
        *self.tenant_submitted.entry(tenant.to_string()).or_insert(0) += 1;
        self.priority_submitted[priority.as_u8() as usize] += 1;
    }

    /// Nothing left to run: shutdown was requested, the queue and the
    /// parking lot are empty, and no slot has a job in flight. Workers and
    /// the supervisor exit exactly when this holds.
    pub(crate) fn drained(&self) -> bool {
        self.shutdown
            && self.queue.depth() == 0
            && self.parked.is_empty()
            && self.slots.iter().all(|s| s.in_flight.is_none() && s.in_flight_extras.is_empty())
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<State>,
    /// Signalled when work arrives or shutdown begins (workers wait here).
    pub(crate) work: Condvar,
    /// Signalled when a ticket is fulfilled (clients wait here).
    pub(crate) done: Condvar,
    /// Signalled to wake the supervisor early (worker crash imminent).
    pub(crate) supervise: Condvar,
    blocks: usize,
    block_size: usize,
    recovery: RecoveryPolicy,
    capture_trace: bool,
    telemetry: TelemetryConfig,
    batch_window: usize,
    delta: DeltaConfig,
    /// Backend for clean requests; sim-only capabilities override it.
    backend: Backend,
    /// Hardware description shared by all pool devices (restarts clone it).
    device_spec: DeviceSpec,
    /// Per-slot base fault plan, resolved once at start — a restarted
    /// worker gets a fresh device with the *same* base plan.
    slot_plans: Vec<Option<FaultPlan>>,
    pub(crate) supervisor: SupervisorConfig,
    /// Origin of the service's logical millisecond clock (`now_ms`).
    epoch: Instant,
}

impl Shared {
    /// Milliseconds since the service started — the one monotone clock the
    /// breakers, heartbeats and stuck checks all share.
    pub(crate) fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

fn elapsed_ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

/// How long a breaker-gated worker naps before re-checking `allow` (the
/// condvar has no "breaker re-opened" edge to signal on).
const BREAKER_RECHECK_MS: u64 = 10;

/// A running solver service. Submit requests with [`submit`](Self::submit)
/// (or the blocking [`solve`](Self::solve)), collect answers with
/// [`wait`](Self::wait), and finish with [`shutdown`](Self::shutdown) to
/// drain the queue and obtain the [`ServiceReport`].
pub struct SolverService {
    shared: Arc<Shared>,
    /// The supervisor thread owns the worker handles; joining it joins the
    /// whole pool.
    supervisor: Option<JoinHandle<()>>,
    started: Instant,
}

impl SolverService {
    /// Start the worker pool (one thread per device) and the supervisor.
    pub fn start(config: ServiceConfig) -> Self {
        let devices = config.devices.max(1);
        let slot_plans: Vec<Option<FaultPlan>> = (0..devices)
            .map(|id| {
                config
                    .device_faults
                    .iter()
                    .find(|(dev, _)| *dev == id)
                    .map(|(_, p)| p.clone())
                    .or_else(|| config.fault.clone())
            })
            .collect();
        let slots = (0..devices)
            .map(|_| SlotState {
                generation: 0,
                in_flight: None,
                in_flight_extras: Vec::new(),
                heartbeat_ms: 0,
                breaker: CircuitBreaker::new(config.breaker.clone()),
                usage: DeviceUsage::default(),
                trace: Vec::new(),
                trace_clock_us: 0.0,
                convergence: ConvergenceTotals::default(),
                restarts: 0,
                stuck: 0,
            })
            .collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: SubmissionQueue::new(config.queue_capacity),
                waiters: HashMap::new(),
                results: HashMap::new(),
                cache: SolutionCache::new(config.cache_capacity),
                metrics: MetricsRegistry::new(),
                submitted: 0,
                completed: 0,
                failed: 0,
                expired: 0,
                degraded: 0,
                degraded_brownout: 0,
                retries_scheduled: 0,
                batch_launches: 0,
                batch_fused_requests: 0,
                backend_requests: [0; 2],
                tenant_submitted: BTreeMap::new(),
                priority_submitted: [0; 3],
                next_ticket: 0,
                shutdown: false,
                slots,
                parked: Vec::new(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            supervise: Condvar::new(),
            blocks: config.blocks,
            block_size: config.block_size,
            recovery: config.recovery.clone(),
            capture_trace: config.capture_trace,
            telemetry: config.telemetry,
            batch_window: config.batch_window,
            delta: config.delta,
            backend: config.backend,
            device_spec: config.device_spec.clone(),
            slot_plans,
            supervisor: config.supervisor.clone(),
            epoch: Instant::now(),
        });
        install_quiet_crash_hook();
        let workers: Vec<Option<JoinHandle<()>>> =
            (0..devices).map(|id| Some(spawn_worker(&shared, id, 0))).collect();
        let sup_shared = Arc::clone(&shared);
        let supervisor = thread::Builder::new()
            .name("cdd-supervisor".into())
            .spawn(move || supervisor_loop(&sup_shared, workers))
            .expect("supervisor thread spawns");
        SolverService { shared, supervisor: Some(supervisor), started: Instant::now() }
    }

    /// Submit a request. Returns a ticket to [`wait`](Self::wait) on, or
    /// [`SuiteError::Rejected`] immediately when the queue is full or the
    /// service is shutting down. Never blocks on a full queue.
    pub fn submit(&self, request: SolveRequest) -> Result<u64, SuiteError> {
        let key = request.content_key();
        let mut st = self.shared.state.lock().expect("service state lock");
        if st.shutdown {
            return Err(SuiteError::rejected("service is shutting down"));
        }
        let ticket = st.next_ticket;

        // 1. Completed identical solve in the cache?
        if let Some(outcome) = st.cache.lookup(key) {
            st.next_ticket += 1;
            st.note_accepted(&request.tenant, request.priority);
            st.completed += 1;
            st.observe_latency(0.0);
            let flight = start_flight(request.trace).map(|mut f| {
                f.hops.push(FlightHop::new("service", "cache_hit", 0.0, 0.0));
                f
            });
            st.results.insert(
                ticket,
                RequestOutcome { ticket, device: None, wall_ms: 0.0, result: Ok(outcome), flight },
            );
            self.shared.done.notify_all();
            return Ok(ticket);
        }

        // 2. Identical solve queued or in flight? Ride along.
        if let Some(followers) = st.waiters.get_mut(&key) {
            followers.push(Follower {
                ticket,
                submitted: Instant::now(),
                deadline_ms: request.deadline_ms,
                trace: request.trace,
            });
            st.cache.note_coalesced();
            st.next_ticket += 1;
            st.note_accepted(&request.tenant, request.priority);
            return Ok(ticket);
        }

        // 3. Fresh dispatch — subject to admission control. Wake every
        // worker: with breakers in play, `notify_one` could land on a
        // worker whose breaker is open, leaving the job waiting.
        let (tenant, priority) = (request.tenant.clone(), request.priority);
        st.queue.try_push(QueuedJob {
            ticket,
            request,
            key,
            submitted: Instant::now(),
            retries: 0,
            hops: Vec::new(),
        })?;
        st.cache.note_miss();
        st.waiters.insert(key, Vec::new());
        st.next_ticket += 1;
        st.note_accepted(&tenant, priority);
        self.shared.work.notify_all();
        Ok(ticket)
    }

    /// Block until the ticket (from [`submit`](Self::submit)) is answered.
    pub fn wait(&self, ticket: u64) -> RequestOutcome {
        let mut st = self.shared.state.lock().expect("service state lock");
        loop {
            if let Some(outcome) = st.results.remove(&ticket) {
                return outcome;
            }
            st = self.shared.done.wait(st).expect("service state lock");
        }
    }

    /// Submit and wait: the synchronous client API.
    pub fn solve(&self, request: SolveRequest) -> Result<SolveOutcome, SuiteError> {
        let ticket = self.submit(request)?;
        self.wait(ticket).result
    }

    /// Begin a graceful shutdown from a shared reference: new submissions
    /// are rejected from this call on, while queued and parked work keeps
    /// draining. Needed by embeddings that share the service behind an
    /// `Arc` (the `cdd-node` front door begins draining from a connection
    /// thread, then the owner calls [`shutdown`](Self::shutdown) to join
    /// and collect the report). Idempotent.
    pub fn begin_shutdown(&self) {
        let mut st = self.shared.state.lock().expect("service state lock");
        st.shutdown = true;
        self.shared.work.notify_all();
        self.shared.supervise.notify_all();
    }

    /// Whether every accepted ticket has been answered (no queued, parked
    /// or in-flight work). With [`begin_shutdown`](Self::begin_shutdown)
    /// already called, `idle() == true` means the workers are exiting — the
    /// deterministic drain point an embedding waits for before restarting.
    pub fn idle(&self) -> bool {
        let st = self.shared.state.lock().expect("service state lock");
        st.queue.depth() == 0
            && st.parked.is_empty()
            && st.slots.iter().all(|s| s.in_flight.is_none() && s.in_flight_extras.is_empty())
    }

    /// Live counters for health/stats probes: cheap, lock-scoped, callable
    /// from any thread while the service runs (the full [`ServiceReport`]
    /// only exists at shutdown).
    pub fn snapshot(&self) -> ServiceSnapshot {
        let st = self.shared.state.lock().expect("service state lock");
        ServiceSnapshot {
            submitted: st.submitted,
            completed: st.completed,
            failed: st.failed,
            expired: st.expired,
            degraded: st.degraded,
            rejected: st.queue.stats().rejected,
            retried: st.queue.stats().retried,
            restarts: st.slots.iter().map(|s| s.restarts).sum(),
            queue_depth: st.queue.depth(),
            cache: st.cache.stats().clone(),
        }
    }

    /// A full [`MetricsRegistry`] snapshot of the service *so far*: the
    /// live per-request observations plus the lifetime counters folded in
    /// exactly as [`shutdown`](Self::shutdown) would fold them. Unlike
    /// `shutdown` this is non-destructive and callable mid-flight — it is
    /// what a `Stats { full: true }` probe ships over the wire. The
    /// `service_` determinism contract applies to a *drained* snapshot
    /// (every accepted ticket answered); a mid-drain snapshot is merely a
    /// consistent point-in-time view.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let st = self.shared.state.lock().expect("service state lock");
        let mut metrics = st.metrics.clone();
        let queue = st.queue.stats().clone();
        let cache = st.cache.stats().clone();
        let convergence = self.shared.telemetry.enabled().then(|| {
            let mut totals = ConvergenceTotals::default();
            for s in &st.slots {
                totals.absorb(s.convergence);
            }
            totals
        });
        let batching = self.shared.batch_window > 1;
        let native = self.shared.backend == Backend::Native;
        fold_final_metrics(&mut metrics, &st, &queue, &cache, convergence, batching, native, wall_seconds);
        metrics
    }

    /// Stop accepting work, drain the queue (parked retries re-enter
    /// immediately — shutdown never strands a retry in its backoff), join
    /// the supervisor and the workers, and report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.begin_shutdown();
        if let Some(sup) = self.supervisor.take() {
            let _ = sup.join();
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let mut st = self.shared.state.lock().expect("service state lock");

        let mut metrics = std::mem::take(&mut st.metrics);
        let queue = st.queue.stats().clone();
        let cache = st.cache.stats().clone();
        let convergence = self.shared.telemetry.enabled().then(|| {
            let mut totals = ConvergenceTotals::default();
            for s in &st.slots {
                totals.absorb(s.convergence);
            }
            totals
        });
        let batching = self.shared.batch_window > 1;
        let native = self.shared.backend == Backend::Native;
        fold_final_metrics(&mut metrics, &st, &queue, &cache, convergence, batching, native, wall_seconds);

        let mut trace = TraceSink::new();
        if self.shared.capture_trace {
            trace.name_process(0, "cdd-service");
            // One named track per device, present even when a device never
            // ran a request — the Perfetto view shows the whole fleet.
            for id in 0..st.slots.len() {
                trace.name_track(0, id as u32, &format!("device {id}"));
            }
            for s in &st.slots {
                trace.extend(s.trace.iter().cloned());
            }
        }

        ServiceReport {
            wall_seconds,
            submitted: st.submitted,
            completed: st.completed,
            failed: st.failed,
            expired: st.expired,
            degraded: st.degraded,
            rejected: queue.rejected,
            retried: queue.retried,
            restarts: st.slots.iter().map(|s| s.restarts).sum(),
            queue,
            cache,
            devices: st
                .slots
                .iter()
                .enumerate()
                .map(|(id, s)| DeviceReport {
                    id,
                    utilization: s.usage.utilization(wall_seconds),
                    usage: s.usage.clone(),
                    restarts: s.restarts,
                    breaker: s.breaker.stats,
                })
                .collect(),
            metrics,
            trace,
        }
    }
}

/// Fold the service's lifetime counters into the registry at shutdown.
///
/// Naming contract: the `service_` prefix carries only series that are
/// reproducible across runs of a deterministic workload (pure u64 counts of
/// admitted/answered work and injected faults — per-request fault plans are
/// routing-independent, so the fleet-wide totals don't depend on placement).
/// Anything shaped by the wall clock — latency, the hit-vs-coalesced split,
/// per-device placement and utilization — lives under `timing_` or
/// `device_` instead, so a consumer can byte-compare the deterministic
/// subset with `grep '^service_'`. One carve-out, documented on
/// [`ServiceReport::metrics`]: `service_breaker_*` is deterministic only
/// when it is all zero (clean fleet) — breaker trips count *consecutive*
/// per-slot failures, which depend on placement under chaos.
/// The deterministic description table behind the `# HELP` lines: one
/// entry per core series, applied on every fold so local renders and
/// wire-shipped registry snapshots carry identical help text. Merging
/// registries keeps descriptions deterministic (lexicographic-min wins on
/// conflict), so fleet-aggregated renders are byte-stable too.
fn describe_service_metrics(metrics: &mut MetricsRegistry) {
    const HELP: &[(&str, &str)] = &[
        ("service_requests_submitted_total", "Tickets accepted (admitted, coalesced or cached)."),
        ("service_requests_completed_total", "Tickets answered with a solve outcome."),
        ("service_requests_failed_total", "Tickets answered with a device or pipeline error."),
        ("service_requests_expired_total", "Tickets expired before dispatch."),
        ("service_degraded_total", "Tickets answered from the CPU oracle with degraded=true."),
        ("service_degraded_brownout_total", "Degraded answers pulled by a brownout pass."),
        ("service_tenant_submitted_total", "Accepted tickets per tenant."),
        ("service_priority_submitted_total", "Accepted tickets per priority class."),
        ("service_queue_enqueued_total", "Jobs accepted into the submission queue."),
        ("service_queue_rejected_total", "Submissions refused by admission control."),
        ("service_queue_requeued_total", "Promoted followers re-admitted at the queue front."),
        ("service_queue_retried_total", "Crashed jobs re-admitted by the supervisor."),
        ("service_supervisor_restarts_total", "Worker restarts across the fleet."),
        ("service_supervisor_stuck_total", "Stuck-worker fences among those restarts."),
        ("service_supervisor_retries_total", "Retry re-dispatches the supervisor scheduled."),
        ("service_breaker_opened_total", "Circuit-breaker transitions into open."),
        ("service_breaker_probes_total", "Half-open probes granted."),
        ("service_breaker_reclosed_total", "Successful probes that re-closed a breaker."),
        ("service_cache_served_total", "Requests served from the cache or by coalescing."),
        ("service_cache_misses_total", "Cache lookups that missed."),
        ("service_cache_insertions_total", "Solutions inserted into the cache."),
        ("service_cache_replacements_total", "Cache insertions that replaced an entry."),
        ("service_cache_evictions_total", "Cache entries evicted by capacity pressure."),
        ("timing_request_wall_ms", "Submission-to-fulfilment latency (wall clock)."),
        ("timing_queue_peak_depth", "Deepest the admitted queue ever got."),
        ("timing_cache_hits_total", "Requests served as direct cache hits."),
        ("timing_cache_coalesced_total", "Requests coalesced onto an in-flight primary."),
        ("timing_batch_launches_total", "Fused device launches the batching window produced."),
        ("timing_batch_fused_requests_total", "Requests answered out of fused launches."),
        ("service_backend_requests_total", "Requests dispatched per execution backend."),
        ("timing_backend_native_wall_ms", "Per-request device wall time on the native backend."),
        ("timing_wall_seconds", "Wall-clock lifetime of the service, seconds."),
    ];
    for (name, help) in HELP {
        metrics.describe(name, help);
    }
}

#[allow(clippy::too_many_arguments)]
fn fold_final_metrics(
    metrics: &mut MetricsRegistry,
    st: &State,
    queue: &QueueStats,
    cache: &CacheStats,
    convergence: Option<ConvergenceTotals>,
    batching: bool,
    native: bool,
    wall_seconds: f64,
) {
    describe_service_metrics(metrics);
    metrics.inc("service_requests_submitted_total", &[], st.submitted);
    // Per-tenant and per-class admission counts. Tenants appear in BTreeMap
    // (= byte-stable) order; all three priority classes register even at
    // zero so equal workloads stay line-for-line comparable.
    for (tenant, count) in &st.tenant_submitted {
        metrics.inc("service_tenant_submitted_total", &[("tenant", tenant)], *count);
    }
    for p in [Priority::Batch, Priority::Normal, Priority::Interactive] {
        metrics.inc(
            "service_priority_submitted_total",
            &[("class", p.label())],
            st.priority_submitted[p.as_u8() as usize],
        );
    }
    metrics.inc("service_requests_completed_total", &[], st.completed);
    metrics.inc("service_requests_failed_total", &[], st.failed);
    metrics.inc("service_requests_expired_total", &[], st.expired);
    metrics.inc("service_degraded_total", &[], st.degraded);
    metrics.inc("service_degraded_brownout_total", &[], st.degraded_brownout);

    metrics.inc("service_queue_enqueued_total", &[], queue.enqueued);
    metrics.inc("service_queue_rejected_total", &[], queue.rejected);
    metrics.inc("service_queue_requeued_total", &[], queue.requeued);
    metrics.inc("service_queue_retried_total", &[], queue.retried);
    // Peak depth is a race between the submitting client and the draining
    // workers — timing-shaped, so it stays out of the `service_` namespace.
    metrics.set_gauge("timing_queue_peak_depth", &[], queue.peak_depth as f64);

    // Supervision counters. Restarts and retries are driven by injected
    // crash plans (routing-independent) and are deterministic for
    // deadline-free workloads; stuck fences are wall-clock events and stay
    // 0 unless a worker really wedged.
    metrics.inc(
        "service_supervisor_restarts_total",
        &[],
        st.slots.iter().map(|s| s.restarts).sum(),
    );
    metrics.inc("service_supervisor_stuck_total", &[], st.slots.iter().map(|s| s.stuck).sum());
    metrics.inc("service_supervisor_retries_total", &[], st.retries_scheduled);

    // Breaker counters — the documented `service_` carve-out (see above).
    metrics.inc(
        "service_breaker_opened_total",
        &[],
        st.slots.iter().map(|s| s.breaker.stats.opened).sum(),
    );
    metrics.inc(
        "service_breaker_probes_total",
        &[],
        st.slots.iter().map(|s| s.breaker.stats.probes).sum(),
    );
    metrics.inc(
        "service_breaker_reclosed_total",
        &[],
        st.slots.iter().map(|s| s.breaker.stats.reclosed).sum(),
    );

    // Which jobs meet in the batching window depends on queue timing — a
    // race between clients and workers — so the fusion tallies live under
    // `timing_`, registered (even at zero) only when the window is open: a
    // window-of-1 service must render a snapshot byte-identical to one
    // predating the batching feature.
    if batching {
        metrics.inc("timing_batch_launches_total", &[], st.batch_launches);
        metrics.inc("timing_batch_fused_requests_total", &[], st.batch_fused_requests);
    }

    // Backend routing tallies — registered (both labels, even at zero) only
    // when the fleet is configured native, so a default sim fleet renders a
    // snapshot byte-identical to one predating the backend split. On a
    // native fleet the `sim` label counts the capability-routed residue:
    // chaos, telemetry and trace-capture requests (see `worker_loop`).
    if native {
        metrics.inc(
            "service_backend_requests_total",
            &[("backend", "sim")],
            st.backend_requests[0],
        );
        metrics.inc(
            "service_backend_requests_total",
            &[("backend", "native")],
            st.backend_requests[1],
        );
    }

    // Whether a repeat is served as a direct hit or by coalescing depends
    // on whether the primary finished first — a race. Their *sum* does not.
    metrics.inc("service_cache_served_total", &[], cache.hits + cache.coalesced);
    metrics.inc("service_cache_misses_total", &[], cache.misses);
    metrics.inc("service_cache_insertions_total", &[], cache.insertions);
    metrics.inc("service_cache_replacements_total", &[], cache.replacements);
    metrics.inc("service_cache_evictions_total", &[], cache.evictions);
    metrics.inc("timing_cache_hits_total", &[], cache.hits);
    metrics.inc("timing_cache_coalesced_total", &[], cache.coalesced);

    // Convergence tallies only exist when telemetry was on: a disabled
    // service must render a snapshot byte-identical to one that predates
    // the telemetry feature. When on, all four series are registered even
    // at zero so equal workloads stay line-for-line comparable.
    if let Some(conv) = convergence {
        metrics.inc("service_convergence_requests_total", &[], conv.requests);
        metrics.inc("service_convergence_samples_total", &[], conv.samples);
        metrics.inc("service_convergence_stalled_chains_total", &[], conv.stalled_chains);
        metrics.inc("service_convergence_collapsed_total", &[], conv.collapsed);
    }

    let mut fleet_faults = FaultStats::default();
    for (id, s) in st.slots.iter().enumerate() {
        fleet_faults.launches_attempted += s.usage.faults.launches_attempted;
        fleet_faults.transient_launch_failures += s.usage.faults.transient_launch_failures;
        fleet_faults.bit_flips += s.usage.faults.bit_flips;
        fleet_faults.hung_kernels += s.usage.faults.hung_kernels;
        fleet_faults.worker_crashes += s.usage.faults.worker_crashes;
        s.usage.observe_into(metrics, &id.to_string(), wall_seconds);
    }
    fleet_faults.observe_into(metrics, "service_fault", &[]);

    metrics.set_gauge("timing_wall_seconds", &[], wall_seconds);
}

impl Drop for SolverService {
    fn drop(&mut self) {
        let Some(sup) = self.supervisor.take() else {
            return; // shutdown() already joined everything
        };
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.supervise.notify_all();
        let _ = sup.join();
    }
}

/// Spawn (or respawn) the worker thread for `slot` at `generation`. Every
/// incarnation gets a *fresh* device built from the shared spec and the
/// slot's base fault plan — restarting a crashed worker replaces its dead
/// device rather than resurrecting it.
pub(crate) fn spawn_worker(shared: &Arc<Shared>, slot: usize, generation: u64) -> JoinHandle<()> {
    let mut handle = DeviceHandle::new(slot, shared.device_spec.clone());
    if let Some(plan) = shared.slot_plans[slot].clone() {
        handle = handle.with_fault(plan);
    }
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("cdd-device-{slot}"))
        .spawn(move || worker_loop(&shared, slot, generation, handle))
        .expect("worker thread spawns")
}

/// One device worker: steal the next job off the shared queue (when this
/// device's breaker admits it), run it on this device, publish the outcome.
///
/// Exits cleanly when the service is drained or when the slot's generation
/// moved past this worker (it was fenced as stuck — the result, if any, is
/// discarded because the job was already re-dispatched). Exits by *panic*
/// — with a [`WorkerCrashPanic`] payload the supervisor reaps — when the
/// device reports [`SuiteError::DeviceLost`].
fn worker_loop(shared: &Arc<Shared>, slot: usize, generation: u64, handle: DeviceHandle) {
    loop {
        let (request, retries, extra_requests) = {
            let mut st = shared.state.lock().expect("service state lock");
            loop {
                if st.slots[slot].generation != generation {
                    return; // fenced: a replacement worker owns this slot
                }
                // Drain expired heads first — an expired job must never
                // consume the breaker's half-open probe.
                while let Some(dead) = st.queue.pop_if(|j| j.expired()) {
                    expire_locked(&mut st, dead);
                    shared.done.notify_all();
                    // A promoted follower (if any) is at the queue front;
                    // keep checking.
                }
                if st.queue.depth() == 0 {
                    if st.drained() {
                        shared.work.notify_all(); // wake peers to re-check
                        return;
                    }
                    st = shared.work.wait(st).expect("service state lock");
                    continue;
                }
                let now = shared.now_ms();
                if !st.slots[slot].breaker.allow(now) {
                    // Open breaker: leave the queue to healthy workers and
                    // nap — the backoff elapsing is a clock edge, not a
                    // condvar edge.
                    let (guard, _) = shared
                        .work
                        .wait_timeout(st, Duration::from_millis(BREAKER_RECHECK_MS))
                        .expect("service state lock");
                    st = guard;
                    continue;
                }
                // The breaker admitted us with a job available: take it.
                // (`allow` and the pop happen under one lock hold, so a
                // granted half-open probe always takes a job.)
                let mut job = st.queue.pop().expect("depth checked above");
                st.slots[slot].heartbeat_ms = now;
                if traced(&job.request) {
                    // Queue wait ends here. The breaker just admitted this
                    // worker, so its state at dispatch is closed or probing.
                    let breaker = match st.slots[slot].breaker.state() {
                        crate::breaker::BreakerState::HalfOpen => "half_open",
                        _ => "closed",
                    };
                    job.hops.push(
                        FlightHop::new("queue", "queue_wait", 0.0, elapsed_ms(job.submitted) * 1e3)
                            .with_detail("breaker", breaker)
                            .with_detail("retries", job.retries),
                    );
                }
                let request = job.request.clone();
                let retries = job.retries;
                st.slots[slot].in_flight = Some(job);
                // Batching window: drain adjacent compatible SA jobs off
                // the queue front to fuse with the primary. Only on a
                // fault-free slot (fused runs carry no fault plan), with
                // telemetry and trace capture off (fused results have no
                // per-request timeline). An incompatible queue head simply
                // stops the drain — FIFO order is never reshuffled.
                let mut extra_requests = Vec::new();
                if shared.batch_window > 1
                    && request.algorithm == Algorithm::Sa
                    && shared.slot_plans[slot].is_none()
                    && !shared.telemetry.enabled()
                    && !shared.capture_trace
                {
                    while extra_requests.len() + 2 <= shared.batch_window {
                        let Some(extra) = st.queue.pop_if(|j| {
                            !j.expired()
                                && j.request.algorithm == Algorithm::Sa
                                && j.request.iterations == request.iterations
                                && j.request.instance.kind() == request.instance.kind()
                                && j.request.instance.n() == request.instance.n()
                        }) else {
                            break;
                        };
                        extra_requests.push(extra.request.clone());
                        st.slots[slot].in_flight_extras.push(extra);
                    }
                }
                break (request, retries, extra_requests);
            }
        };

        // Run outside the lock — this is the long part, and it is what
        // makes the pool concurrent: every other worker keeps stealing
        // while this device is busy. The fault plan is derived from the
        // request seed and the retry ordinal only (never the device id or
        // the clock) — the chaos determinism contract hangs on this.
        let run_started = Instant::now();
        let fault = handle.request_plan_retry(request.seed, retries);
        // Per-request backend routing (DESIGN.md §16): fault injection,
        // convergence telemetry and trace capture exist only in the
        // simulator, so a request carrying any of them runs on sim no
        // matter what the fleet is configured for. Everything else — the
        // clean production path — runs on the configured backend.
        let backend = if fault.as_ref().is_some_and(FaultPlan::is_active)
            || shared.telemetry.enabled()
            || shared.capture_trace
        {
            Backend::Sim
        } else {
            shared.backend
        };
        let spec = GpuSolveSpec {
            blocks: shared.blocks,
            block_size: shared.block_size,
            device: handle.spec.clone(),
            backend,
            fault,
            recovery: shared.recovery.clone(),
            telemetry: shared.telemetry,
            delta: shared.delta,
        };
        // One result per fused job, primary first. A failed fused launch
        // falls back to running each request solo — batching is a latency
        // optimization, never a new failure mode.
        let mut fused = false;
        let results: Vec<Result<cdd_gpu::GpuRunResult, SuiteError>> = if extra_requests.is_empty()
        {
            vec![run_gpu_solve(
                &request.instance,
                request.algorithm,
                request.iterations,
                request.seed,
                &spec,
            )]
        } else {
            let entries: Vec<(cdd_core::Instance, u64)> = std::iter::once(&request)
                .chain(extra_requests.iter())
                .map(|r| (r.instance.clone(), r.seed))
                .collect();
            match run_gpu_solve_batch(&entries, Algorithm::Sa, request.iterations, &spec) {
                Ok(rs) => {
                    fused = true;
                    rs.into_iter().map(Ok).collect()
                }
                Err(_) => entries
                    .iter()
                    .map(|(inst, seed)| {
                        run_gpu_solve(inst, Algorithm::Sa, request.iterations, *seed, &spec)
                    })
                    .collect(),
            }
        };
        let run_wall = run_started.elapsed().as_secs_f64();

        let mut st = shared.state.lock().expect("service state lock");
        if st.slots[slot].generation != generation {
            // Fenced while running: the supervisor already took the jobs
            // back and re-dispatched them. Discard everything — recording
            // usage or a result here would double-count against the
            // replacement worker's slot.
            return;
        }
        let now = shared.now_ms();
        st.slots[slot].heartbeat_ms = now;
        if let [Err(SuiteError::DeviceLost { detail })] = results.as_slice() {
            // The simulated device died under this job (solo path only —
            // fused runs only form on fault-free slots). Leave the job in
            // `in_flight` for the supervisor to re-dispatch, record the
            // failed run, and crash this worker the way a real device loss
            // kills a host thread: by panicking. The breaker failure is
            // recorded by the supervisor (exactly once per death, whether
            // the job was mid-run or not).
            let detail = detail.clone();
            st.slots[slot].usage.record_run(0.0, 0.0, 0.0, 0, run_wall, true);
            drop(st);
            shared.supervise.notify_all();
            std::panic::panic_any(WorkerCrashPanic { device: slot, detail });
        }
        let job = st.slots[slot].in_flight.take().expect("job was in flight");
        let extras = std::mem::take(&mut st.slots[slot].in_flight_extras);
        if fused {
            st.batch_launches += 1;
            st.batch_fused_requests += results.len() as u64;
        }
        // The shared wall time is split evenly across the fused jobs, like
        // the modeled time inside the batch pipeline.
        let wall_share = run_wall / results.len() as f64;
        let batch_size = results.len();
        st.backend_requests[match backend {
            Backend::Sim => 0,
            Backend::Native => 1,
        }] += batch_size as u64;
        if backend == Backend::Native {
            // One observation per answered request (the fused wall time is
            // split evenly), mirroring `timing_request_wall_ms`.
            for _ in 0..batch_size {
                st.metrics.observe(
                    "timing_backend_native_wall_ms",
                    &[],
                    wall_share * 1e3,
                    latency_ms_buckets(),
                );
            }
        }
        for (mut job, result) in std::iter::once(job).chain(extras).zip(results) {
            if traced(&job.request) {
                let mut hop = match &result {
                    Ok(r) => FlightHop::new(
                        "worker",
                        "attempt",
                        r.modeled_seconds * 1e6,
                        wall_share * 1e6,
                    ),
                    Err(_) => FlightHop::new("worker", "attempt_failed", 0.0, wall_share * 1e6),
                }
                .with_device(slot as u32)
                .with_detail("retry", job.retries);
                if fused {
                    hop = hop.with_detail("batch_size", batch_size);
                }
                job.hops.push(hop);
            }
            match &result {
                Ok(r) => {
                    record_success_locked(&mut st, slot, &job, r, wall_share, now, shared);
                }
                Err(_) => {
                    st.slots[slot].usage.record_run(0.0, 0.0, 0.0, 0, wall_share, true);
                    st.slots[slot].breaker.record_failure(now);
                }
            }
            complete_locked(&mut st, job, slot, result);
        }
        shared.done.notify_all();
        if st.shutdown {
            // Peers may be waiting to observe the drain.
            shared.work.notify_all();
        }
    }
}

/// Book-keep a successful run against its slot: usage, breaker fault-rate
/// signal, convergence tallies and (when capture is on) the trace track.
fn record_success_locked(
    st: &mut State,
    slot: usize,
    job: &QueuedJob,
    r: &cdd_gpu::GpuRunResult,
    run_wall: f64,
    now_ms: u64,
    shared: &Shared,
) {
    let s = &mut st.slots[slot];
    s.usage.record_run(
        r.modeled_seconds,
        r.kernel_seconds,
        r.transfer_seconds,
        r.kernel_launches,
        run_wall,
        false,
    );
    s.usage.merge_faults(r.recovery.faults);
    s.breaker.note_fault_rate(&r.recovery.faults, now_ms);
    if let Some(trace_data) = &r.convergence {
        s.convergence.record(&ConvergenceSummary::from_trace(trace_data));
    }
    if shared.capture_trace {
        let tid = slot as u32;
        let (events, end_us) = timeline_trace_events(&r.timeline, 0, tid, s.trace_clock_us);
        s.trace.push(
            TraceEvent::begin(
                &format!("request seed={}", job.request.seed),
                "request",
                0,
                tid,
                s.trace_clock_us,
            )
            .with_arg("algorithm", job.request.algorithm)
            .with_arg("iterations", job.request.iterations),
        );
        s.trace.extend(events);
        // Best-so-far counter samples, pinned to the same modeled-clock
        // offsets as the kernel spans above.
        if let Some(conv) = &r.convergence {
            s.trace.extend(counter_trace_events(conv, &r.timeline, 0, tid, s.trace_clock_us));
        }
        s.trace.push(TraceEvent::end(
            &format!("request seed={}", job.request.seed),
            "request",
            0,
            tid,
            end_us,
        ));
        s.trace_clock_us = end_us;
    }
}

/// Fulfil an expired primary; promote its oldest still-live follower into
/// the vacated queue slot (at the front — it has been waiting longest).
pub(crate) fn expire_locked(st: &mut State, mut job: QueuedJob) {
    st.expired += 1;
    let deadline = job.request.deadline_ms.unwrap_or(0);
    st.observe_latency(elapsed_ms(job.submitted));
    if traced(&job.request) {
        job.hops.push(
            FlightHop::new("queue", "expired", 0.0, elapsed_ms(job.submitted) * 1e3)
                .with_detail("deadline_ms", deadline),
        );
    }
    let flight = start_flight(job.request.trace).map(|mut f| {
        f.hops = job.hops.clone();
        f
    });
    st.results.insert(
        job.ticket,
        RequestOutcome {
            ticket: job.ticket,
            device: None,
            wall_ms: elapsed_ms(job.submitted),
            result: Err(SuiteError::deadline(deadline)),
            flight,
        },
    );
    let Some(followers) = st.waiters.remove(&job.key) else { return };
    let mut rest = followers.into_iter();
    for f in rest.by_ref() {
        // Compare in u128 — truncating elapsed ms to u64 could wrap a huge
        // deadline into a premature expiry (same fix as `QueuedJob::expired`).
        let f_expired = match f.deadline_ms {
            Some(ms) => f.submitted.elapsed().as_millis() >= u128::from(ms),
            None => false,
        };
        if f_expired {
            st.expired += 1;
            st.observe_latency(elapsed_ms(f.submitted));
            let flight = start_flight(f.trace).map(|mut fl| {
                fl.hops.push(FlightHop::new(
                    "queue",
                    "expired",
                    0.0,
                    elapsed_ms(f.submitted) * 1e3,
                ));
                fl
            });
            st.results.insert(
                f.ticket,
                RequestOutcome {
                    ticket: f.ticket,
                    device: None,
                    wall_ms: elapsed_ms(f.submitted),
                    result: Err(SuiteError::deadline(f.deadline_ms.unwrap_or(0))),
                    flight,
                },
            );
            continue;
        }
        // The promoted follower keeps its *own* trace context — it was a
        // distinct request that merely coalesced onto the expired primary.
        let request =
            SolveRequest { deadline_ms: f.deadline_ms, trace: f.trace, ..job.request.clone() };
        st.queue.requeue_front(QueuedJob {
            ticket: f.ticket,
            request,
            key: job.key,
            submitted: f.submitted,
            retries: 0,
            hops: Vec::new(),
        });
        st.waiters.insert(job.key, rest.collect());
        return;
    }
}

/// Publish a finished solve: optionally cache it, fulfil the primary
/// ticket and every coalesced follower.
pub(crate) fn publish_locked(
    st: &mut State,
    job: QueuedJob,
    device: Option<usize>,
    outcome: Result<SolveOutcome, SuiteError>,
    cache: bool,
) {
    if cache {
        if let Ok(o) = &outcome {
            st.cache.insert(job.key, o);
        }
    }
    let flight = start_flight(job.request.trace).map(|mut f| {
        f.hops = job.hops.clone();
        f
    });
    fulfil(st, job.ticket, device, job.submitted, &outcome, false, flight);
    if let Some(followers) = st.waiters.remove(&job.key) {
        for f in followers {
            // A follower's whole journey was "wait for the shared solve":
            // one hop, wall-timed from its own submission.
            let flight = start_flight(f.trace).map(|mut fl| {
                fl.hops.push(FlightHop::new(
                    "service",
                    "coalesced",
                    0.0,
                    elapsed_ms(f.submitted) * 1e3,
                ));
                fl
            });
            fulfil(st, f.ticket, device, f.submitted, &outcome, true, flight);
        }
    }
}

/// Publish a finished device solve: update the cache, fulfil the primary
/// ticket and every coalesced follower.
fn complete_locked(
    st: &mut State,
    job: QueuedJob,
    device: usize,
    result: Result<cdd_gpu::GpuRunResult, SuiteError>,
) {
    let outcome: Result<SolveOutcome, SuiteError> = match result {
        Ok(r) => Ok(SolveOutcome {
            sequence: r.best,
            objective: r.objective,
            modeled_seconds: r.modeled_seconds,
            evaluations: r.evaluations,
            cache_hit: false,
            device: Some(device),
            cpu_fallback: r.recovery.cpu_fallback,
            degraded: false,
        }),
        Err(e) => Err(e),
    };
    publish_locked(st, job, Some(device), outcome, true);
}

/// Answer `job` from the CPU oracle with `degraded: true` — the graceful
/// half of "graceful degradation". Never cached: a later healthy fleet
/// must be able to serve the real metaheuristic answer for the same key.
pub(crate) fn serve_degraded(st: &mut State, mut job: QueuedJob, brownout: bool) {
    st.degraded += 1;
    if brownout {
        st.degraded_brownout += 1;
    }
    if traced(&job.request) {
        job.hops.push(
            FlightHop::new("supervisor", "degraded", 0.0, elapsed_ms(job.submitted) * 1e3)
                .with_detail("brownout", brownout),
        );
    }
    let outcome = cdd_core::degraded_outcome(&job.request.instance);
    publish_locked(st, job, None, Ok(outcome), false);
}

fn fulfil(
    st: &mut State,
    ticket: u64,
    device: Option<usize>,
    submitted: Instant,
    outcome: &Result<SolveOutcome, SuiteError>,
    coalesced: bool,
    flight: Option<FlightRecord>,
) {
    let result = match outcome {
        Ok(o) => {
            st.completed += 1;
            Ok(if coalesced {
                // A follower's answer came from the shared computation —
                // semantically a cache hit that was satisfied in flight.
                SolveOutcome { cache_hit: true, device: None, ..o.clone() }
            } else {
                o.clone()
            })
        }
        Err(e) => {
            st.failed += 1;
            Err(e.clone())
        }
    };
    let wall_ms = elapsed_ms(submitted);
    st.observe_latency(wall_ms);
    st.results.insert(ticket, RequestOutcome { ticket, device, wall_ms, result, flight });
}
