//! # cdd-service
//!
//! A multi-device **solver service** on top of the suite's simulated-GPU
//! pipelines: typed [`cdd_core::SolveRequest`]s enter a bounded submission
//! queue with admission control and per-request deadlines, idle device
//! workers steal jobs onto a pool of independent `cuda-sim` devices (one
//! in-flight campaign per device), and a content-addressed
//! [`SolutionCache`] answers repeated requests without re-dispatching.
//! Faults on one device degrade the requests routed to it — never the
//! service (see [`service`] module docs for the dataflow and the
//! determinism contract, and DESIGN.md §8 for the design rationale).
//!
//! The crate ships a synchronous client API ([`SolverService::submit`] /
//! [`SolverService::wait`] / [`SolverService::solve`]) and the `cdd-serve`
//! binary, which replays a workload file against the service and reports
//! throughput, latency percentiles, cache hit rate and per-device
//! utilization.
//!
//! PR 6 adds the **resilience layer**: a [`supervisor`] that detects dead
//! or stuck workers, restarts them with fresh devices and re-dispatches
//! their in-flight jobs with a bounded, deterministically-jittered retry
//! backoff; a per-device [`CircuitBreaker`] that sheds traffic away from
//! sick devices; and graceful degradation — requests the pool cannot
//! serve are answered from the CPU oracle with `degraded: true` instead
//! of erroring (see DESIGN.md §12 and the `--chaos` mode of `cdd-serve`).
//!
//! ```
//! use cdd_core::{Algorithm, Instance, SolveRequest};
//! use cdd_service::{ServiceConfig, SolverService};
//!
//! let service = SolverService::start(ServiceConfig {
//!     devices: 2,
//!     blocks: 1,
//!     block_size: 32,
//!     ..Default::default()
//! });
//! let request = SolveRequest::new(Instance::paper_example_cdd(), Algorithm::Sa, 100, 42);
//! let outcome = service.solve(request.clone()).unwrap();
//! let again = service.solve(request).unwrap();
//! assert_eq!(outcome.objective, again.objective); // bit-identical, served from cache
//! assert!(again.cache_hit);
//! let report = service.shutdown();
//! assert_eq!(report.completed, 2);
//! assert_eq!(report.cache.hits + report.cache.coalesced, 1);
//! ```

pub mod breaker;
pub mod cache;
pub mod queue;
pub mod service;
pub mod supervisor;

pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use cdd_gpu::Backend;
pub use cache::{CacheStats, SolutionCache};
pub use queue::QueueStats;
pub use service::{
    DeviceReport, RequestOutcome, ServiceConfig, ServiceReport, ServiceSnapshot, SolverService,
};
pub use supervisor::SupervisorConfig;
