//! End-to-end tests of the solver service: admission control, cache
//! bit-identity, coalescing, per-device fault isolation, deadlines and the
//! cross-run determinism contract.

use cdd_core::{Algorithm, SolveRequest, SuiteError};
use cdd_gpu::{run_gpu_solve, GpuSolveSpec, RecoveryPolicy};
use cdd_instances::InstanceId;
use cdd_service::{BreakerConfig, ServiceConfig, SolverService, SupervisorConfig};
use cuda_sim::FaultPlan;

fn small_config(devices: usize) -> ServiceConfig {
    ServiceConfig { devices, blocks: 1, block_size: 32, ..Default::default() }
}

fn request(n: usize, k: u32, algo: Algorithm, iterations: u64, seed: u64) -> SolveRequest {
    SolveRequest::new(InstanceId::ucddcp(n, k).instantiate(), algo, iterations, seed)
}

#[test]
fn cached_response_is_bit_identical_to_a_fresh_solve() {
    let service = SolverService::start(small_config(1));
    let req = request(10, 1, Algorithm::Sa, 120, 7);

    let fresh = service.solve(req.clone()).expect("clean solve succeeds");
    assert!(!fresh.cache_hit);
    assert_eq!(fresh.device, Some(0));

    let cached = service.solve(req.clone()).expect("cached solve succeeds");
    assert!(cached.cache_hit);
    assert_eq!(cached.device, None);
    assert_eq!(cached.objective, fresh.objective, "fitness is bit-identical");
    assert_eq!(cached.sequence, fresh.sequence, "schedule is bit-identical");

    // …and both match a direct pipeline call outside the service.
    let direct = run_gpu_solve(
        &req.instance,
        req.algorithm,
        req.iterations,
        req.seed,
        &GpuSolveSpec { blocks: 1, block_size: 32, ..Default::default() },
    )
    .expect("direct run succeeds");
    assert_eq!(fresh.objective, direct.objective);
    assert_eq!(fresh.sequence, direct.best);

    let report = service.shutdown();
    assert_eq!(report.completed, 2);
    assert_eq!(report.cache.hits, 1);
    assert_eq!(report.cache.misses, 1);
    assert_eq!(report.devices.len(), 1);
    assert_eq!(report.devices[0].usage.requests, 1, "the cache saved one dispatch");
}

#[test]
fn queue_saturation_returns_admission_error_not_a_hang() {
    let service = SolverService::start(ServiceConfig {
        devices: 1,
        queue_capacity: 2,
        ..small_config(1)
    });

    // Occupy the single device with a slow request, and give the worker a
    // moment to steal it so the queue is empty again.
    let slow = service.submit(request(30, 1, Algorithm::Sa, 2000, 1)).expect("admitted");
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Two distinct fillers fit; the third must be refused immediately.
    let fill_a = service.submit(request(10, 1, Algorithm::Sa, 100, 2)).expect("queued");
    let fill_b = service.submit(request(10, 1, Algorithm::Sa, 100, 3)).expect("queued");
    let err = service.submit(request(10, 1, Algorithm::Sa, 100, 4)).unwrap_err();
    assert!(matches!(err, SuiteError::Rejected { .. }), "got {err:?}");

    for ticket in [slow, fill_a, fill_b] {
        service.wait(ticket).result.expect("admitted requests still complete");
    }
    let report = service.shutdown();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 3);
    assert_eq!(report.queue.peak_depth, 2);
}

#[test]
fn identical_inflight_requests_coalesce_onto_one_dispatch() {
    let service = SolverService::start(small_config(1));
    let req = request(20, 1, Algorithm::Sa, 1500, 77);
    let first = service.submit(req.clone()).expect("admitted");
    let second = service.submit(req.clone()).expect("admitted");

    let a = service.wait(first).result.expect("solve succeeds");
    let b = service.wait(second).result.expect("solve succeeds");
    assert_eq!(a.objective, b.objective);
    assert_eq!(a.sequence, b.sequence);
    assert!(b.cache_hit, "the rider is flagged as served from the cache layer");

    let report = service.shutdown();
    assert_eq!(report.cache.misses, 1, "exactly one fresh dispatch");
    assert_eq!(report.cache.hits + report.cache.coalesced, 1);
    assert_eq!(report.completed, 2);
}

#[test]
fn a_faulted_device_only_fails_the_requests_routed_to_it() {
    let lethal = FaultPlan::with_rates(0xDEAD, 1.0, 0.0, 0.0);
    let service = SolverService::start(ServiceConfig {
        devices: 2,
        device_faults: vec![(1, lethal)],
        // No retries, no fallback: a request on the dead device fails fast
        // and visibly instead of being silently repaired.
        recovery: RecoveryPolicy {
            max_launch_retries: 1,
            max_device_attempts: 1,
            cpu_fallback: false,
        },
        ..small_config(2)
    });

    let tickets: Vec<u64> = (0..12)
        .map(|i| {
            service
                .submit(request(12, 1 + (i % 3), Algorithm::Sa, 200, 1000 + u64::from(i)))
                .expect("admitted")
        })
        .collect();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| service.wait(t)).collect();

    let (mut ok, mut failed) = (0u64, 0u64);
    for outcome in &outcomes {
        match &outcome.result {
            Ok(solved) => {
                ok += 1;
                assert_eq!(outcome.device, Some(0), "successes come from the clean device");
                assert_eq!(solved.device, Some(0));
                assert!(!solved.cpu_fallback);
            }
            Err(e) => {
                failed += 1;
                assert_eq!(outcome.device, Some(1), "only the faulted device fails: {e}");
            }
        }
    }
    assert!(ok > 0, "the clean device must have served requests");
    assert!(failed > 0, "the lethal device must have failed requests");

    let report = service.shutdown();
    assert_eq!(report.completed, ok);
    assert_eq!(report.failed, failed);
    let dev1 = report.devices.iter().find(|d| d.id == 1).expect("device 1 reported");
    assert_eq!(dev1.usage.failed, failed, "failures are attributed to the faulted device");
    let dev0 = report.devices.iter().find(|d| d.id == 0).expect("device 0 reported");
    assert_eq!(dev0.usage.failed, 0);
}

#[test]
fn per_request_fitness_is_identical_across_runs_despite_routing() {
    fn run_once() -> Vec<i64> {
        let entries = cdd_bench::workload::generate_mixed(10, 99, 80, &[10]);
        let service = SolverService::start(ServiceConfig {
            devices: 3,
            // Fleet-wide faults: per-request plans derive from the request
            // seed alone, so whichever device a request lands on, the
            // recovery layer sees the same fault sequence.
            fault: Some(FaultPlan::with_rates(0xFA17, 0.02, 0.005, 0.0)),
            ..small_config(3)
        });
        let tickets: Vec<u64> =
            entries.iter().map(|e| service.submit(e.to_request()).expect("admitted")).collect();
        let objectives = tickets
            .into_iter()
            .map(|t| service.wait(t).result.expect("recovery absorbs injected faults").objective)
            .collect();
        service.shutdown();
        objectives
    }
    assert_eq!(run_once(), run_once(), "fitness must not depend on scheduling");
}

/// The deterministic (`service_`-prefixed) lines of a Prometheus snapshot —
/// the exact subset CI byte-compares across two runs of the same workload.
fn deterministic_lines(report: &cdd_service::ServiceReport) -> String {
    report
        .metrics
        .render_prometheus()
        .lines()
        .filter(|l| l.starts_with("service_"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn service_metrics_are_byte_identical_across_runs() {
    fn run_once() -> (String, cdd_service::ServiceReport) {
        let entries = cdd_bench::workload::generate_mixed(12, 41, 80, &[10]);
        let service = SolverService::start(ServiceConfig {
            devices: 3,
            fault: Some(FaultPlan::with_rates(0xFA17, 0.05, 0.01, 0.02)),
            ..small_config(3)
        });
        let tickets: Vec<u64> =
            entries.iter().map(|e| service.submit(e.to_request()).expect("admitted")).collect();
        for t in tickets {
            service.wait(t).result.expect("recovery absorbs injected faults");
        }
        let report = service.shutdown();
        (deterministic_lines(&report), report)
    }
    let (a, report_a) = run_once();
    let (b, _) = run_once();
    assert_eq!(a, b, "the service_ namespace must not depend on scheduling");
    assert!(!a.is_empty());
    // The snapshot agrees with the report's own counters.
    let m = &report_a.metrics;
    assert_eq!(m.counter("service_requests_submitted_total", &[]), report_a.submitted);
    assert_eq!(m.counter("service_requests_completed_total", &[]), report_a.completed);
    assert_eq!(
        m.counter("service_cache_served_total", &[]),
        report_a.cache.hits + report_a.cache.coalesced
    );
    assert_eq!(m.counter("service_cache_misses_total", &[]), report_a.cache.misses);
    assert_eq!(
        m.counter("service_fault_launches_attempted_total", &[]),
        report_a.devices.iter().map(|d| d.usage.faults.launches_attempted).sum::<u64>()
    );
    // Timing-dependent series exist, but outside the compared namespace.
    assert!(m.histogram("timing_request_wall_ms", &[]).is_some());
    assert_eq!(
        m.histogram("timing_request_wall_ms", &[]).unwrap().count(),
        report_a.submitted,
        "every answered request contributes one latency sample"
    );
}

#[test]
fn trace_capture_produces_one_track_per_device() {
    let entries = cdd_bench::workload::generate_mixed(8, 23, 60, &[10]);
    let service = SolverService::start(ServiceConfig {
        devices: 2,
        capture_trace: true,
        ..small_config(2)
    });
    let tickets: Vec<u64> =
        entries.iter().map(|e| service.submit(e.to_request()).expect("admitted")).collect();
    for t in tickets {
        service.wait(t).result.expect("clean fleet");
    }
    let report = service.shutdown();

    let trace = &report.trace;
    assert!(!trace.is_empty());
    // Exactly one thread_name metadata event per device.
    let tracks: Vec<&str> = trace
        .events()
        .iter()
        .filter(|e| e.ph == 'M' && e.name == "thread_name")
        .filter_map(|e| e.args.iter().find(|(k, _)| k == "name").map(|(_, v)| v.as_str()))
        .collect();
    assert_eq!(tracks, vec!["device 0", "device 1"]);
    // Kernel events exist and sit on valid device tracks with durations.
    let kernels: Vec<_> =
        trace.events().iter().filter(|e| e.ph == 'X' && e.cat == "kernel").collect();
    assert!(!kernels.is_empty());
    assert!(kernels.iter().all(|e| e.tid < 2 && e.dur_us.unwrap_or(0.0) > 0.0));
    // Request spans open and close in equal numbers.
    let begins = trace.events().iter().filter(|e| e.ph == 'B' && e.cat == "request").count();
    let ends = trace.events().iter().filter(|e| e.ph == 'E' && e.cat == "request").count();
    assert_eq!(begins, ends);
    assert_eq!(begins as u64, report.devices.iter().map(|d| d.usage.requests).sum::<u64>());
    // The rendered JSON is loadable (well-formed enough for Perfetto's
    // parser: object wrapper + one JSON object per event).
    let json = trace.render_chrome_json();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
}

#[test]
fn convergence_telemetry_adds_counters_without_touching_results() {
    fn run_workload(stride: u64, capture_trace: bool) -> (Vec<i64>, cdd_service::ServiceReport) {
        let entries = cdd_bench::workload::generate_mixed(10, 57, 80, &[10]);
        let service = SolverService::start(ServiceConfig {
            devices: 2,
            telemetry: cuda_sim::TelemetryConfig::every(stride),
            capture_trace,
            ..small_config(2)
        });
        let tickets: Vec<u64> =
            entries.iter().map(|e| service.submit(e.to_request()).expect("admitted")).collect();
        let objectives = tickets
            .into_iter()
            .map(|t| service.wait(t).result.expect("clean fleet").objective)
            .collect();
        (objectives, service.shutdown())
    }

    let (base_obj, base) = run_workload(0, false);
    let (on_obj, on) = run_workload(5, true);
    assert_eq!(on_obj, base_obj, "telemetry must not perturb any solve");

    // Off: the snapshot has no convergence series at all (byte-compatible
    // with the pre-telemetry service).
    assert!(!base.metrics.render_prometheus().contains("service_convergence_"));

    // On: every dispatched (non-cached) request contributes one trace.
    let m = &on.metrics;
    let dispatched: u64 = on.devices.iter().map(|d| d.usage.requests).sum();
    assert_eq!(m.counter("service_convergence_requests_total", &[]), dispatched);
    assert!(m.counter("service_convergence_samples_total", &[]) >= dispatched);
    // The anomaly counters exist even when nothing anomalous happened.
    let rendered = m.render_prometheus();
    assert!(rendered.contains("service_convergence_stalled_chains_total"));
    assert!(rendered.contains("service_convergence_collapsed_total"));

    // The captured trace carries best-so-far counter samples on the same
    // device tracks as the kernel spans.
    let counters: Vec<_> =
        on.trace.events().iter().filter(|e| e.ph == 'C' && e.cat == "convergence").collect();
    assert!(!counters.is_empty(), "convergence counter events in the trace");
    assert!(counters.iter().all(|e| e.tid < 2));
}

#[test]
fn trace_capture_off_by_default_keeps_the_report_lean() {
    let service = SolverService::start(small_config(1));
    service.solve(request(10, 1, Algorithm::Sa, 60, 3)).expect("solve succeeds");
    let report = service.shutdown();
    assert!(report.trace.is_empty(), "no trace unless explicitly requested");
    assert!(!report.metrics.is_empty(), "metrics are always on");
}

// ---------------------------------------------------------------------------
// Chaos: worker crashes, supervision, retry/degrade and the determinism
// contract of PR 6 (see DESIGN.md §12).
// ---------------------------------------------------------------------------

/// Fast supervisor for tests: tight tick, no backoff parking delays worth
/// waiting out, deterministic jitter still on.
fn chaos_supervisor() -> SupervisorConfig {
    SupervisorConfig { tick_ms: 1, backoff_base_ms: 1, backoff_jitter_ms: 2, ..Default::default() }
}

#[test]
fn chaos_crashes_restart_workers_and_strand_no_request() {
    // Every other request's plan kills its device early on; the supervisor
    // must restart workers and every request must still get an answer —
    // real (retry succeeded) or degraded (budget exhausted) — never an
    // error, never a hang.
    fn run_once() -> (Vec<(u64, i64, bool)>, cdd_service::ServiceReport) {
        let service = SolverService::start(ServiceConfig {
            devices: 2,
            fault: Some(FaultPlan::with_rates(0xC0A5, 0.01, 0.0, 0.0).with_worker_crash(0.5, 8)),
            supervisor: chaos_supervisor(),
            ..small_config(2)
        });
        let tickets: Vec<(u64, u64)> = (0..14)
            .map(|i| {
                let seed = 9000 + u64::from(i);
                (seed, service.submit(request(12, 1 + (i % 3), Algorithm::Sa, 150, seed)).unwrap())
            })
            .collect();
        let outcomes = tickets
            .into_iter()
            .map(|(seed, t)| {
                let o = service.wait(t).result.expect("chaos must never fail a request");
                (seed, o.objective, o.degraded)
            })
            .collect();
        (outcomes, service.shutdown())
    }

    let (outcomes_a, report_a) = run_once();
    let (outcomes_b, report_b) = run_once();

    // The tentpole contract: the (request, fitness, degraded) set is
    // byte-identical across runs, whatever the restart timing did.
    assert_eq!(outcomes_a, outcomes_b, "chaos outcome set must be deterministic");

    assert!(report_a.restarts > 0, "a 50% crash rate must kill at least one worker");
    assert_eq!(report_a.restarts, report_b.restarts, "crash plans are routing-independent");
    assert_eq!(report_a.retried, report_b.retried);
    assert_eq!(report_a.degraded, report_b.degraded);
    assert_eq!(report_a.completed, report_a.submitted, "no request stranded");
    assert_eq!(report_a.failed, 0);
    let m = &report_a.metrics;
    assert_eq!(m.counter("service_supervisor_restarts_total", &[]), report_a.restarts);
    assert_eq!(m.counter("service_queue_retried_total", &[]), report_a.retried);
    assert_eq!(m.counter("service_degraded_total", &[]), report_a.degraded);
    assert_eq!(
        m.counter("service_fault_worker_crashes_total", &[]),
        report_a.restarts,
        "every reaped crash lands in the fleet fault ledger"
    );
}

#[test]
fn exhausted_retry_budget_degrades_to_the_cpu_oracle() {
    // A certain crash on every attempt: the retry budget burns out and the
    // service answers from the CPU oracle, flagged and never cached.
    let service = SolverService::start(ServiceConfig {
        devices: 1,
        fault: Some(FaultPlan::disabled().with_worker_crash(1.0, 1)),
        supervisor: SupervisorConfig { retry_budget: 1, ..chaos_supervisor() },
        ..small_config(1)
    });
    let req = request(10, 1, Algorithm::Sa, 100, 4242);
    let first = service.solve(req.clone()).expect("degraded, not failed");
    assert!(first.degraded);
    assert!(first.device.is_none());
    assert!(!first.cache_hit);
    let oracle = cdd_core::degraded_outcome(&req.instance);
    assert_eq!(first.objective, oracle.objective, "degraded answer IS the oracle answer");
    assert_eq!(first.sequence, oracle.sequence);

    // Degraded answers are not cached: the same request dispatches again
    // (and crashes/degrades again) instead of being served from the cache.
    let second = service.solve(req).expect("degraded again");
    assert!(second.degraded);
    assert!(!second.cache_hit, "degraded answers must never populate the cache");

    let report = service.shutdown();
    assert_eq!(report.degraded, 2);
    assert_eq!(report.completed, 2);
    assert_eq!(report.cache.misses, 2);
    assert_eq!(report.cache.insertions, 0);
    // Each request: initial dispatch + 1 retry, every attempt crashing.
    assert_eq!(report.restarts, 4);
    assert_eq!(report.retried, 2);
}

#[test]
fn degradation_off_surfaces_the_structured_worker_crashed_error() {
    // Satellite: with degraded answers disabled, the client sees the
    // structured error carrying the device id and the panic payload.
    let service = SolverService::start(ServiceConfig {
        devices: 1,
        fault: Some(FaultPlan::disabled().with_worker_crash(1.0, 1)),
        supervisor: SupervisorConfig {
            retry_budget: 0,
            degraded_answers: false,
            ..chaos_supervisor()
        },
        ..small_config(1)
    });
    let err = service.solve(request(10, 1, Algorithm::Sa, 100, 777)).unwrap_err();
    match &err {
        SuiteError::WorkerCrashed { device, payload } => {
            assert_eq!(*device, 0);
            assert!(payload.contains("device lost"), "payload carries the cause: {payload}");
        }
        other => panic!("expected WorkerCrashed, got {other:?}"),
    }
    assert!(!err.is_recoverable(), "a worker crash is not a retryable launch fault");
    let report = service.shutdown();
    assert_eq!(report.failed, 1);
    assert_eq!(report.degraded, 0);
    assert_eq!(report.restarts, 1);
}

#[test]
fn breaker_trips_on_a_sick_device_and_brownout_degrades_deadline_work() {
    // One device whose every launch fails (no crash — the worker survives,
    // the runs error). With threshold 1 the breaker opens on the first
    // failure and stays open far longer than the test; a deadline-carrying
    // request submitted afterwards cannot be served by the pool, so the
    // brownout pass answers it degraded instead of letting it expire.
    let service = SolverService::start(ServiceConfig {
        devices: 1,
        fault: Some(FaultPlan::with_rates(0x51C6, 1.0, 0.0, 0.0)),
        recovery: RecoveryPolicy {
            max_launch_retries: 1,
            max_device_attempts: 1,
            cpu_fallback: false,
        },
        breaker: BreakerConfig { failure_threshold: 1, open_ms: 60_000, ..Default::default() },
        supervisor: chaos_supervisor(),
        ..small_config(1)
    });

    // First request fails and trips the breaker.
    let err = service.solve(request(10, 1, Algorithm::Sa, 100, 1)).unwrap_err();
    assert!(matches!(err, SuiteError::Device { .. }), "got {err:?}");

    // Second request carries a deadline: the open breaker sheds it to the
    // brownout pass, which serves it degraded well before the deadline.
    let req = SolveRequest { deadline_ms: Some(30_000), ..request(10, 1, Algorithm::Sa, 100, 2) };
    let outcome = service.solve(req).expect("browned out, not expired");
    assert!(outcome.degraded);

    let report = service.shutdown();
    assert_eq!(report.failed, 1);
    assert_eq!(report.degraded, 1);
    assert_eq!(report.expired, 0, "brownout preempts the expiry");
    assert!(report.devices[0].breaker.opened >= 1);
    assert!(report.metrics.counter("service_breaker_opened_total", &[]) >= 1);
    assert_eq!(report.metrics.counter("service_degraded_brownout_total", &[]), 1);
}

#[test]
fn stuck_worker_is_fenced_and_its_job_redispatched() {
    // A watchdog tight enough that every attempt of a genuinely slow solve
    // is declared stuck: the supervisor fences the worker (generation
    // bump), re-dispatches the job until the budget runs out, then serves
    // it degraded. The fenced zombies' results are discarded, so exactly
    // one answer comes back.
    let service = SolverService::start(ServiceConfig {
        devices: 1,
        supervisor: SupervisorConfig {
            stuck_after_ms: 1,
            retry_budget: 2,
            ..chaos_supervisor()
        },
        ..small_config(1)
    });
    let outcome = service
        .solve(request(30, 1, Algorithm::Sa, 4000, 11))
        .expect("fenced job is answered, not stranded");
    assert!(outcome.degraded, "every attempt outlives the 1ms watchdog, so the oracle answers");

    let report = service.shutdown();
    let dev = &report.devices[0];
    assert!(dev.restarts >= 1, "at least one fence happened");
    assert_eq!(
        report.metrics.counter("service_supervisor_stuck_total", &[]),
        dev.restarts,
        "all restarts here are stuck fences (no crashes injected)"
    );
    assert_eq!(report.completed, 1);
    assert_eq!(report.degraded, 1);
}

#[test]
fn zero_deadline_expires_before_dispatch() {
    let service = SolverService::start(small_config(1));
    let req = SolveRequest {
        deadline_ms: Some(0),
        ..request(10, 2, Algorithm::Dpso, 100, 5)
    };
    let err = service.solve(req).unwrap_err();
    assert!(matches!(err, SuiteError::DeadlineExceeded { .. }), "got {err:?}");
    let report = service.shutdown();
    assert_eq!(report.expired, 1);
    assert_eq!(report.completed, 0);
    assert_eq!(report.devices[0].usage.requests, 0, "no device time was spent");
}

#[test]
fn batched_service_answers_are_byte_identical_to_unbatched() {
    // The same workload through a batching service and a window-of-1
    // service must produce identical per-request outcomes — fusion is a
    // launch-overhead optimization, never a result change. A slow opener
    // pins the single worker so the compatible followers pile up in the
    // queue and actually meet in the window.
    let run = |batch_window: usize| {
        let service =
            SolverService::start(ServiceConfig { batch_window, ..small_config(1) });
        let blocker = service.submit(request(30, 1, Algorithm::Sa, 1200, 900)).expect("admitted");
        std::thread::sleep(std::time::Duration::from_millis(50));
        let tickets: Vec<u64> = (0..6)
            .map(|i| {
                service.submit(request(10, 1, Algorithm::Sa, 150, 300 + i)).expect("admitted")
            })
            .collect();
        let mut outcomes = vec![service.wait(blocker).result.expect("opener completes")];
        for t in tickets {
            outcomes.push(service.wait(t).result.expect("batched request completes"));
        }
        (outcomes, service.shutdown())
    };

    let (batched, batched_report) = run(4);
    let (solo, solo_report) = run(1);
    for (b, s) in batched.iter().zip(&solo) {
        assert_eq!(b.objective, s.objective, "fitness is fusion-invariant");
        assert_eq!(b.sequence, s.sequence, "schedule is fusion-invariant");
        assert_eq!(b.evaluations, s.evaluations);
    }
    assert_eq!(batched_report.completed, 7);
    assert_eq!(solo_report.completed, 7);
    // The batching service registers its fusion tallies (possibly zero —
    // whether jobs met in the window is a race); the window-of-1 service
    // must not even register the series.
    let rendered = solo_report.metrics.render_prometheus();
    assert!(
        !rendered.contains("timing_batch_launches_total"),
        "a window-of-1 service predates the batching feature byte-for-byte"
    );
    assert!(batched_report.metrics.render_prometheus().contains("timing_batch_launches_total"));
    assert!(
        batched_report.metrics.counter("timing_batch_fused_requests_total", &[])
            >= 2 * batched_report.metrics.counter("timing_batch_launches_total", &[]),
        "every fused launch covers at least two requests"
    );
}

#[test]
fn incompatible_neighbors_never_fuse() {
    // Mixed problem sizes and algorithms at the queue head stop the window
    // drain; everything still completes with correct per-request answers.
    let service = SolverService::start(ServiceConfig { batch_window: 8, ..small_config(1) });
    let blocker = service.submit(request(30, 1, Algorithm::Sa, 800, 901)).expect("admitted");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mixed: Vec<u64> = vec![
        service.submit(request(10, 1, Algorithm::Sa, 150, 1)).expect("admitted"),
        service.submit(request(12, 1, Algorithm::Sa, 150, 2)).expect("admitted"),
        service.submit(request(10, 2, Algorithm::Dpso, 150, 3)).expect("admitted"),
        service.submit(request(10, 1, Algorithm::Sa, 150, 4)).expect("admitted"),
    ];
    service.wait(blocker).result.expect("opener completes");
    for (t, expected_seed) in mixed.into_iter().zip([1u64, 2, 3, 4]) {
        let outcome = service.wait(t).result.expect("completes");
        // Cross-check each answer against a direct solo pipeline run.
        let algo = if expected_seed == 3 { Algorithm::Dpso } else { Algorithm::Sa };
        let n_k = match expected_seed {
            2 => (12, 1),
            3 => (10, 2),
            _ => (10, 1),
        };
        let direct = run_gpu_solve(
            &InstanceId::ucddcp(n_k.0, n_k.1).instantiate(),
            algo,
            150,
            expected_seed,
            &GpuSolveSpec { blocks: 1, block_size: 32, ..Default::default() },
        )
        .expect("direct run succeeds");
        assert_eq!(outcome.objective, direct.objective, "seed {expected_seed}");
        assert_eq!(outcome.sequence, direct.best);
    }
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Execution-backend routing (PR 10)
// ---------------------------------------------------------------------------

/// A native-configured fleet answers every request byte-identically to the
/// default sim fleet — the service-level face of the cross-backend parity
/// contract — and the report carries the per-backend dispatch counters.
#[test]
fn native_fleet_answers_are_byte_identical_to_sim() {
    fn run_workload(backend: cdd_service::Backend) -> (Vec<(i64, Vec<u32>)>, cdd_service::ServiceReport) {
        let service = SolverService::start(ServiceConfig {
            devices: 2,
            cache_capacity: 0, // every request really dispatches
            backend,
            ..small_config(2)
        });
        let tickets: Vec<u64> = (0..6)
            .map(|i| {
                let algo = if i % 3 == 2 { Algorithm::Dpso } else { Algorithm::Sa };
                service.submit(request(10 + (i % 2) * 2, 1, algo, 120, i as u64)).expect("admitted")
            })
            .collect();
        let answers = tickets
            .into_iter()
            .map(|t| {
                let o = service.wait(t).result.expect("clean solve succeeds");
                (o.objective, o.sequence.as_slice().to_vec())
            })
            .collect();
        (answers, service.shutdown())
    }
    let (sim_answers, sim_report) = run_workload(cdd_service::Backend::Sim);
    let (native_answers, native_report) = run_workload(cdd_service::Backend::Native);
    assert_eq!(sim_answers, native_answers, "outcomes are backend-independent");

    // A sim fleet predates the backend split metric-wise; a native fleet
    // accounts every dispatch under its backend label.
    let m = &native_report.metrics;
    assert_eq!(m.counter("service_backend_requests_total", &[("backend", "native")]), 6);
    assert_eq!(m.counter("service_backend_requests_total", &[("backend", "sim")]), 0);
    assert!(m.histogram("timing_backend_native_wall_ms", &[]).is_some());
    assert_eq!(m.histogram("timing_backend_native_wall_ms", &[]).unwrap().count(), 6);
    assert!(!sim_report
        .metrics
        .render_prometheus()
        .contains("service_backend_requests_total"));

    // Native runs report no modeled device time — the usage ledger only
    // accumulates wall clock.
    assert!(native_report.devices.iter().all(|d| d.usage.modeled.busy_seconds == 0.0));
    assert!(sim_report.devices.iter().any(|d| d.usage.modeled.busy_seconds > 0.0));
}

/// Sim-only capabilities override the configured backend per request:
/// a chaos fleet configured native still runs every request on sim (the
/// fault machinery lives there), rather than rejecting or dropping plans.
#[test]
fn chaos_requests_route_to_sim_on_a_native_fleet() {
    let service = SolverService::start(ServiceConfig {
        devices: 2,
        backend: cdd_service::Backend::Native,
        fault: Some(FaultPlan::with_rates(0xFA17, 0.02, 0.005, 0.0)),
        ..small_config(2)
    });
    let tickets: Vec<u64> =
        (0..4).map(|i| service.submit(request(10, 1, Algorithm::Sa, 100, i)).expect("admitted")).collect();
    for t in tickets {
        service.wait(t).result.expect("recovery absorbs injected faults");
    }
    let report = service.shutdown();
    let m = &report.metrics;
    assert_eq!(m.counter("service_backend_requests_total", &[("backend", "sim")]), 4);
    assert_eq!(m.counter("service_backend_requests_total", &[("backend", "native")]), 0);
    assert!(m.counter("service_fault_launches_attempted_total", &[]) > 0, "chaos really ran");
}

/// Telemetry is likewise sim-only: enabling it on a native fleet routes the
/// requests to sim and the convergence counters still appear.
#[test]
fn telemetry_requests_route_to_sim_on_a_native_fleet() {
    let service = SolverService::start(ServiceConfig {
        devices: 1,
        backend: cdd_service::Backend::Native,
        telemetry: cuda_sim::TelemetryConfig::every(8),
        ..small_config(1)
    });
    let t = service.submit(request(10, 1, Algorithm::Sa, 120, 5)).expect("admitted");
    service.wait(t).result.expect("solve succeeds");
    let report = service.shutdown();
    let m = &report.metrics;
    assert_eq!(m.counter("service_backend_requests_total", &[("backend", "sim")]), 1);
    assert_eq!(m.counter("service_backend_requests_total", &[("backend", "native")]), 0);
    assert!(m.render_prometheus().contains("service_convergence_"));
}
