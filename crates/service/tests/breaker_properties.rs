//! Property tests of the per-device circuit breaker (satellite of PR 6).
//!
//! Three invariants of the `closed → open → half-open` machine, checked
//! against randomized operation sequences:
//!
//! 1. **Never serves while open**: an `allow` against an open breaker is
//!    refused until the (deterministic) backoff has fully elapsed.
//! 2. **Exactly one probe in half-open**: the first `allow` after the
//!    backoff is granted and flips the breaker to half-open; every further
//!    `allow` is refused until the probe's outcome is recorded.
//! 3. **Deterministic reopen backoff**: the open duration is a pure
//!    function of the consecutive-open count — `open_ms · 2^(k-1)` capped
//!    at `max_open_ms` — never of the clock; and a twin breaker fed the
//!    identical operation sequence makes identical decisions.

use cdd_service::{BreakerConfig, BreakerState, CircuitBreaker};
use proptest::prelude::*;

/// The backoff the model expects after `consecutive_opens` trips.
fn expected_backoff(cfg: &BreakerConfig, consecutive_opens: u32) -> u64 {
    cfg.open_ms
        .saturating_mul(1u64 << consecutive_opens.saturating_sub(1).min(32))
        .min(cfg.max_open_ms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn breaker_state_machine_invariants(
        ops in prop::collection::vec((0u8..3u8, 0u64..400u64), 1..100),
        threshold in 1u32..5u32,
        open_ms in 1u64..300u64,
    ) {
        let config = BreakerConfig {
            failure_threshold: threshold,
            open_ms,
            max_open_ms: open_ms * 8,
            // Disabled: `note_fault_rate` is exercised by unit tests; here
            // the model drives success/failure directly.
            fault_rate_threshold: 2.0,
        };
        let mut breaker = CircuitBreaker::new(config.clone());
        let mut twin = CircuitBreaker::new(config.clone());

        // External model: everything the invariants need, reconstructed
        // purely from the observable call/transition sequence.
        let mut now = 0u64;
        let mut last_trip = 0u64;
        let mut consecutive_opens = 0u32;

        for (op, dt) in ops {
            now += dt;
            match op {
                // allow(now)
                0 => {
                    let before = breaker.state();
                    let granted = breaker.allow(now);
                    prop_assert_eq!(granted, twin.allow(now), "twin replay diverged on allow");
                    match before {
                        BreakerState::Closed => prop_assert!(granted, "closed always serves"),
                        BreakerState::HalfOpen => prop_assert!(
                            !granted,
                            "exactly one probe in half-open: the second allow must be refused"
                        ),
                        BreakerState::Open => {
                            let backoff = expected_backoff(&config, consecutive_opens);
                            if granted {
                                prop_assert!(
                                    now - last_trip >= backoff,
                                    "served {}ms into a {}ms backoff",
                                    now - last_trip,
                                    backoff
                                );
                                prop_assert_eq!(
                                    breaker.state(),
                                    BreakerState::HalfOpen,
                                    "a granted open-state allow is the probe"
                                );
                            } else {
                                prop_assert!(
                                    now - last_trip < backoff,
                                    "refused although the {}ms backoff elapsed",
                                    backoff
                                );
                            }
                        }
                    }
                }
                // record_success()
                1 => {
                    let before = breaker.state();
                    breaker.record_success();
                    twin.record_success();
                    if before == BreakerState::HalfOpen {
                        prop_assert_eq!(breaker.state(), BreakerState::Closed);
                        consecutive_opens = 0;
                    }
                }
                // record_failure(now)
                _ => {
                    let before = breaker.state();
                    breaker.record_failure(now);
                    twin.record_failure(now);
                    if breaker.state() == BreakerState::Open && before != BreakerState::Open {
                        last_trip = now;
                        consecutive_opens += 1;
                    }
                    if before == BreakerState::HalfOpen {
                        prop_assert_eq!(
                            breaker.state(),
                            BreakerState::Open,
                            "a failed probe re-opens"
                        );
                    }
                }
            }

            // The backoff is a pure function of the consecutive-open count.
            if breaker.state() == BreakerState::Open {
                prop_assert_eq!(
                    breaker.open_duration_ms(),
                    expected_backoff(&config, consecutive_opens),
                    "open backoff must be open_ms * 2^(k-1) capped, independent of the clock"
                );
            }
            prop_assert!(breaker.open_duration_ms() <= config.max_open_ms);
            prop_assert_eq!(breaker.state(), twin.state(), "twin replay diverged on state");
        }

        // Full determinism of the observable outcome: identical inputs
        // produced identical lifetime counters.
        prop_assert_eq!(breaker.stats, twin.stats);
    }
}
