//! Property test: the solution cache is a deterministic machine. Replaying
//! the same operation sequence on two fresh caches produces the same
//! eviction sequence, the same stored entries and the same stats — even
//! though the backing `HashMap` iterates in randomized order (the LRU
//! victim is selected by a strictly increasing logical clock, so the
//! minimum is always unique).

use cdd_core::{JobSequence, SolveOutcome};
use cdd_service::SolutionCache;
use proptest::prelude::*;

fn outcome(objective: i64) -> SolveOutcome {
    SolveOutcome {
        sequence: JobSequence::identity(3),
        objective,
        modeled_seconds: 0.25,
        evaluations: 10,
        cache_hit: false,
        device: Some(0),
        cpu_fallback: false,
        degraded: false,
    }
}

/// Replay: byte `b` drives one operation on a small key space (8 keys over
/// capacity 4 forces plenty of evictions). High bit picks insert vs lookup.
/// Returns everything observable: the eviction sequence in order, each
/// lookup's result, and the final stats.
fn replay(ops: &[u8]) -> (Vec<Option<u64>>, Vec<Option<i64>>, cdd_service::CacheStats) {
    let mut cache = SolutionCache::new(4);
    let mut evictions = Vec::new();
    let mut lookups = Vec::new();
    for (i, &b) in ops.iter().enumerate() {
        let key = u64::from(b % 8);
        if b >= 128 {
            evictions.push(cache.insert(key, &outcome(i as i64)));
        } else {
            lookups.push(cache.lookup(key).map(|o| o.objective));
        }
    }
    (evictions, lookups, cache.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eviction_order_is_identical_across_replays(
        ops in prop::collection::vec(any::<u8>(), 1..200)
    ) {
        let (ev_a, lk_a, st_a) = replay(&ops);
        let (ev_b, lk_b, st_b) = replay(&ops);
        prop_assert_eq!(&ev_a, &ev_b, "eviction sequence must be replay-invariant");
        prop_assert_eq!(lk_a, lk_b, "lookup results must be replay-invariant");
        prop_assert_eq!(st_a, st_b, "stats must be replay-invariant");
        // An evicted key is never the key being inserted (a refresh does
        // not evict), and every eviction is counted.
        let evicted_count = ev_a.iter().flatten().count() as u64;
        prop_assert_eq!(evicted_count, replay(&ops).2.evictions);
    }
}
