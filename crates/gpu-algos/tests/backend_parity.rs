//! Cross-backend parity: the native host backend and the cuda-sim backend
//! must produce **byte-identical outcomes** for every pipeline and both
//! problem kinds (DESIGN.md §16).
//!
//! The outcome set under the contract: best sequence, objective,
//! evaluation count, `T₀` and the kernel-launch count. Modeled seconds,
//! the profiler summary and the timeline are *sim-only diagnostics* — the
//! native backend reports zeros/empties for them by design, so they are
//! asserted to be absent rather than equal.
//!
//! Sim-only capabilities (fault injection, convergence telemetry) must be
//! rejected — not silently dropped — when a request aims them at the
//! native backend; the rejection tests pin that down.

use cdd_core::{Algorithm, Instance, SuiteError, Time};
use cdd_gpu::{
    run_gpu_dpso, run_gpu_sa, run_gpu_sa_batch, run_gpu_sa_sync, run_gpu_solve, Backend,
    BatchEntry, DeltaConfig, GpuDpsoParams, GpuRunResult, GpuSaParams, GpuSolveSpec,
};
use cuda_sim::{FaultPlan, SimParallelism, TelemetryConfig};
use proptest::prelude::*;

/// The outcome fields both backends must agree on, bit for bit.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    best: Vec<u32>,
    objective: i64,
    evaluations: u64,
    t0_bits: u64,
    kernel_launches: usize,
}

impl From<&GpuRunResult> for Outcome {
    fn from(r: &GpuRunResult) -> Self {
        Outcome {
            best: r.best.as_slice().to_vec(),
            objective: r.objective,
            evaluations: r.evaluations,
            t0_bits: r.t0.to_bits(),
            kernel_launches: r.kernel_launches,
        }
    }
}

/// The native result must carry no simulator diagnostics.
fn assert_native_is_diagnostic_free(r: &GpuRunResult) {
    assert_eq!(r.modeled_seconds, 0.0, "native has no modeled clock");
    assert_eq!(r.kernel_seconds, 0.0);
    assert_eq!(r.transfer_seconds, 0.0);
    assert!(r.profiler_summary.is_empty(), "native has no profiler");
    assert!(r.timeline.is_empty(), "native has no timeline");
}

fn sa_params(backend: Backend, par: SimParallelism) -> GpuSaParams {
    let mut p =
        GpuSaParams { blocks: 2, block_size: 32, iterations: 80, backend, ..Default::default() };
    p.device.parallelism = par;
    p
}

fn both_kinds() -> [Instance; 2] {
    [Instance::paper_example_cdd(), Instance::paper_example_ucddcp()]
}

#[test]
fn sa_native_matches_sim_for_both_kinds() {
    for inst in both_kinds() {
        let sim = run_gpu_sa(&inst, &sa_params(Backend::Sim, SimParallelism::Serial)).unwrap();
        let native =
            run_gpu_sa(&inst, &sa_params(Backend::Native, SimParallelism::Serial)).unwrap();
        assert_eq!(Outcome::from(&sim), Outcome::from(&native), "kind {:?}", inst.kind());
        assert_native_is_diagnostic_free(&native);
        assert!(sim.modeled_seconds > 0.0, "sim keeps its modeled clock");
    }
}

#[test]
fn sync_sa_native_matches_sim_for_both_kinds() {
    for inst in both_kinds() {
        let sim =
            run_gpu_sa_sync(&inst, &sa_params(Backend::Sim, SimParallelism::Serial), 8, 10)
                .unwrap();
        let native =
            run_gpu_sa_sync(&inst, &sa_params(Backend::Native, SimParallelism::Serial), 8, 10)
                .unwrap();
        assert_eq!(Outcome::from(&sim), Outcome::from(&native), "kind {:?}", inst.kind());
        assert_native_is_diagnostic_free(&native);
    }
}

#[test]
fn dpso_native_matches_sim_for_both_kinds() {
    for inst in both_kinds() {
        let params = |backend| GpuDpsoParams {
            blocks: 2,
            block_size: 32,
            iterations: 80,
            backend,
            ..Default::default()
        };
        let sim = run_gpu_dpso(&inst, &params(Backend::Sim)).unwrap();
        let native = run_gpu_dpso(&inst, &params(Backend::Native)).unwrap();
        assert_eq!(Outcome::from(&sim), Outcome::from(&native), "kind {:?}", inst.kind());
        assert_native_is_diagnostic_free(&native);
    }
}

#[test]
fn batched_sa_native_matches_sim_per_request() {
    for inst in both_kinds() {
        let entries: Vec<BatchEntry> =
            (0..3).map(|i| BatchEntry { instance: inst.clone(), seed: 40 + i }).collect();
        let sim =
            run_gpu_sa_batch(&entries, &sa_params(Backend::Sim, SimParallelism::Serial)).unwrap();
        let native =
            run_gpu_sa_batch(&entries, &sa_params(Backend::Native, SimParallelism::Serial))
                .unwrap();
        assert_eq!(sim.len(), native.len());
        for (r, (s, nv)) in sim.iter().zip(&native).enumerate() {
            assert_eq!(Outcome::from(s), Outcome::from(nv), "request {r}, kind {:?}", inst.kind());
        }
    }
}

/// The delta-evaluation path runs the same on both backends (its cache
/// lives in device memory, so backend identity covers it too).
#[test]
fn delta_scoring_native_matches_sim() {
    let inst = Instance::paper_example_cdd();
    let with_delta = |backend| GpuSaParams {
        delta: DeltaConfig { enabled: true, resync_every: 16 },
        ..sa_params(backend, SimParallelism::Serial)
    };
    let sim = run_gpu_sa(&inst, &with_delta(Backend::Sim)).unwrap();
    let native = run_gpu_sa(&inst, &with_delta(Backend::Native)).unwrap();
    assert_eq!(Outcome::from(&sim), Outcome::from(&native));
}

/// The unified solve entry point routes `backend` for both algorithms.
#[test]
fn solve_entry_point_routes_backends() {
    let inst = Instance::paper_example_cdd();
    for algorithm in [Algorithm::Sa, Algorithm::Dpso] {
        let spec = |backend| GpuSolveSpec { blocks: 2, block_size: 32, backend, ..Default::default() };
        let sim = run_gpu_solve(&inst, algorithm, 60, 9, &spec(Backend::Sim)).unwrap();
        let native = run_gpu_solve(&inst, algorithm, 60, 9, &spec(Backend::Native)).unwrap();
        assert_eq!(Outcome::from(&sim), Outcome::from(&native), "{algorithm:?}");
    }
}

// ---------------------------------------------------------------------------
// Sim-only capability rejection
// ---------------------------------------------------------------------------

fn assert_rejected(r: Result<GpuRunResult, SuiteError>, what: &str) {
    match r {
        Err(SuiteError::Rejected { reason }) => {
            assert!(reason.contains("sim-only"), "{what}: reason names the sim-only capability")
        }
        other => panic!("{what}: expected rejection, got {other:?}"),
    }
}

#[test]
fn native_rejects_fault_plans() {
    let inst = Instance::paper_example_cdd();
    let p = GpuSaParams {
        fault: Some(FaultPlan::with_rates(7, 0.05, 0.01, 0.01)),
        ..sa_params(Backend::Native, SimParallelism::Serial)
    };
    assert_rejected(run_gpu_sa(&inst, &p), "sa fault plan");
    assert_rejected(run_gpu_sa_sync(&inst, &p, 4, 20), "sync fault plan");
    let dp = GpuDpsoParams {
        blocks: 2,
        block_size: 32,
        iterations: 40,
        backend: Backend::Native,
        fault: Some(FaultPlan::with_rates(7, 0.05, 0.01, 0.01)),
        ..Default::default()
    };
    assert_rejected(run_gpu_dpso(&inst, &dp), "dpso fault plan");
}

#[test]
fn native_rejects_telemetry() {
    let inst = Instance::paper_example_cdd();
    let p = GpuSaParams {
        telemetry: TelemetryConfig::every(5),
        ..sa_params(Backend::Native, SimParallelism::Serial)
    };
    assert_rejected(run_gpu_sa(&inst, &p), "sa telemetry");
    assert_rejected(run_gpu_sa_sync(&inst, &p, 4, 20), "sync telemetry");
    let dp = GpuDpsoParams {
        blocks: 2,
        block_size: 32,
        iterations: 40,
        backend: Backend::Native,
        telemetry: TelemetryConfig::every(5),
        ..Default::default()
    };
    assert_rejected(run_gpu_dpso(&inst, &dp), "dpso telemetry");
}

/// An *inert* fault plan (all rates zero) is not a fault request; it runs
/// on native and still matches the simulator.
#[test]
fn native_accepts_inert_fault_plans() {
    let inst = Instance::paper_example_cdd();
    let with_plan = |backend| GpuSaParams {
        fault: Some(FaultPlan::disabled()),
        ..sa_params(backend, SimParallelism::Serial)
    };
    let sim = run_gpu_sa(&inst, &with_plan(Backend::Sim)).unwrap();
    let native = run_gpu_sa(&inst, &with_plan(Backend::Native)).unwrap();
    assert_eq!(Outcome::from(&sim), Outcome::from(&native));
}

// ---------------------------------------------------------------------------
// Property: parity holds across pipeline × kind × n × host threads
// ---------------------------------------------------------------------------

fn random_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (2..=max_n, any::<bool>()).prop_flat_map(|(n, ucddcp)| {
        (
            prop::collection::vec(1..=20i64, n),
            prop::collection::vec(0..=10i64, n),
            prop::collection::vec(0..=15i64, n),
            prop::collection::vec(0..=8i64, n),
            0.2..1.2f64,
        )
            .prop_map(move |(p, a, b, g, h)| {
                if ucddcp {
                    let m: Vec<i64> = p.iter().map(|&x| (x - 1).max(1).min(3)).collect();
                    let d = p.iter().sum::<Time>(); // UCDDCP requires Σp ≤ d
                    Instance::ucddcp_from_arrays(&p, &m, &a, &b, &g, d).expect("valid")
                } else {
                    let d = (p.iter().sum::<Time>() as f64 * h) as Time;
                    Instance::cdd_from_arrays(&p, &a, &b, d).expect("valid")
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary instances (either kind, any n), any pipeline, and any
    /// host-thread count, the native outcome equals the sim outcome bit for
    /// bit. Host threads are a pure wall-clock knob on both backends.
    #[test]
    fn parity_holds_everywhere(
        inst in random_instance(16),
        pipeline in 0..3usize,
        threads_idx in 0..3usize,
        seed in any::<u64>(),
    ) {
        let threads = [
            SimParallelism::Serial,
            SimParallelism::Threads(2),
            SimParallelism::Threads(5),
        ][threads_idx];
        let params = |backend| GpuSaParams {
            seed,
            iterations: 30,
            ..sa_params(backend, threads)
        };
        let (sim, native) = match pipeline {
            0 => (
                run_gpu_sa(&inst, &params(Backend::Sim)).unwrap(),
                run_gpu_sa(&inst, &params(Backend::Native)).unwrap(),
            ),
            1 => (
                run_gpu_sa_sync(&inst, &params(Backend::Sim), 5, 6).unwrap(),
                run_gpu_sa_sync(&inst, &params(Backend::Native), 5, 6).unwrap(),
            ),
            _ => {
                let dp = |backend| GpuDpsoParams {
                    blocks: 2,
                    block_size: 32,
                    iterations: 30,
                    seed,
                    backend,
                    ..Default::default()
                };
                (
                    run_gpu_dpso(&inst, &dp(Backend::Sim)).unwrap(),
                    run_gpu_dpso(&inst, &dp(Backend::Native)).unwrap(),
                )
            }
        };
        prop_assert_eq!(Outcome::from(&sim), Outcome::from(&native));
    }
}
