//! Property-based tests of the GPU kernels: the device fitness function is
//! bit-identical to the host evaluator on arbitrary instances, and the
//! pipelines never leave the permutation space.

use cdd_core::eval::{evaluator_for, CddEvaluator, SequenceEvaluator};
use cdd_core::{Instance, JobSequence, Time};
use cdd_gpu::kernels::FitnessKernel;
use cdd_gpu::{run_gpu_sa, GpuSaParams, ProblemDevice};
use cuda_sim::{DeviceSpec, Gpu, LaunchConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cdd_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (1..=max_n).prop_flat_map(|n| {
        (
            prop::collection::vec(1..=20i64, n),
            prop::collection::vec(0..=10i64, n),
            prop::collection::vec(0..=15i64, n),
            0.0..1.3f64,
        )
            .prop_map(|(p, a, b, h)| {
                let d = (p.iter().sum::<Time>() as f64 * h) as Time;
                Instance::cdd_from_arrays(&p, &a, &b, d).expect("valid")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Device fitness == host fitness for a batch of random sequences on a
    /// random instance (race detection armed).
    #[test]
    fn fitness_kernel_matches_host(inst in cdd_instance(24), seed in any::<u64>()) {
        let n = inst.n();
        let threads = 16usize;
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let prob = ProblemDevice::upload(&mut gpu, &inst).expect("fits");

        let mut rng = StdRng::seed_from_u64(seed);
        let seqs: Vec<JobSequence> =
            (0..threads).map(|_| JobSequence::random(n, &mut rng)).collect();
        let flat: Vec<u32> = seqs.iter().flat_map(|s| s.as_slice().iter().copied()).collect();
        let seq_buf = gpu.alloc::<u32>(threads * n);
        gpu.h2d(seq_buf, &flat);
        let out = gpu.alloc::<i64>(threads);

        let kernel = FitnessKernel::new(prob, seq_buf, out, threads, threads.div_ceil(8));
        gpu.launch(&kernel, LaunchConfig::cover(threads, 8), &[]).expect("clean launch");

        let host = CddEvaluator::new(&inst);
        let device = gpu.d2h(out);
        for (t, s) in seqs.iter().enumerate() {
            prop_assert_eq!(device[t], host.evaluate(s.as_slice()));
        }
    }

    /// A short GPU SA run on a random instance returns a valid permutation
    /// whose host-evaluated objective equals the device's report, and which
    /// is no worse than the ensemble's random starting points.
    #[test]
    fn gpu_sa_output_is_consistent(inst in cdd_instance(16), seed in any::<u64>()) {
        let r = run_gpu_sa(
            &inst,
            &GpuSaParams {
                blocks: 1,
                block_size: 16,
                iterations: 30,
                t0: Some(50.0),
                seed,
                init: cdd_gpu::InitStrategy::Random,
                ..Default::default()
            },
        )
        .expect("valid launch");
        prop_assert!(r.best.is_valid_permutation());
        let host = evaluator_for(&inst);
        prop_assert_eq!(host.evaluate(r.best.as_slice()), r.objective);

        // Not worse than the best of the same 16 random starts.
        let mut rng = StdRng::seed_from_u64(seed);
        let start_best = (0..16)
            .map(|_| host.evaluate(JobSequence::random(inst.n(), &mut rng).as_slice()))
            .min()
            .expect("non-empty");
        prop_assert!(r.objective <= start_best,
            "SA ({}) worse than its own starting ensemble ({start_best})", r.objective);
    }
}
