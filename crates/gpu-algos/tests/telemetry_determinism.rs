//! The telemetry hard contract (DESIGN.md §10): enabling convergence
//! telemetry at *any* stride changes nothing observable about a run except
//! the trace it returns. Results, modeled timelines, `sim_*` metric
//! snapshots and `service_fault_*` fault counters must be byte-identical to
//! the stride-0 (disabled) run — for all three pipelines, with and without
//! fault injection.

use cdd_gpu::{run_gpu_dpso, run_gpu_sa, run_gpu_sa_sync, GpuDpsoParams, GpuRunResult, GpuSaParams};
use cdd_metrics::MetricsRegistry;
use cuda_sim::{observe_timeline, FaultPlan, TelemetryConfig};
use proptest::prelude::*;

const ITERS: u64 = 12;

fn fault_plan() -> FaultPlan {
    FaultPlan::with_rates(11, 0.04, 0.01, 0.02)
}

/// Everything a run exposes except the telemetry trace itself, with the
/// metrics rendered exactly the way the service and bench layers snapshot
/// them (`sim_*` from the timeline, `service_fault_*` from the fault
/// counters).
fn fingerprint(r: &GpuRunResult) -> (Vec<u32>, i64, u64, usize, String) {
    let mut reg = MetricsRegistry::new();
    observe_timeline(&mut reg, &r.timeline);
    r.recovery.faults.observe_into(&mut reg, "service_fault", &[]);
    (
        r.best.as_slice().to_vec(),
        r.objective,
        r.modeled_seconds.to_bits(),
        r.kernel_launches,
        reg.render_prometheus(),
    )
}

fn sa_params(stride: u64, fault: bool) -> GpuSaParams {
    GpuSaParams {
        blocks: 1,
        block_size: 8,
        iterations: ITERS,
        telemetry: TelemetryConfig::every(stride),
        fault: fault.then(fault_plan),
        ..Default::default()
    }
}

fn dpso_params(stride: u64, fault: bool) -> GpuDpsoParams {
    GpuDpsoParams {
        blocks: 1,
        block_size: 8,
        iterations: ITERS,
        telemetry: TelemetryConfig::every(stride),
        fault: fault.then(fault_plan),
        ..Default::default()
    }
}

/// Strides exercised against the disabled baseline: every generation, a
/// ragged divisor, and one past the whole run (samples only generation 0).
const STRIDES: [u64; 3] = [1, 7, ITERS + 5];

#[test]
fn sa_runs_are_stride_independent() {
    for inst in [cdd_core::Instance::paper_example_cdd(), cdd_core::Instance::paper_example_ucddcp()]
    {
        for fault in [false, true] {
            let base = run_gpu_sa(&inst, &sa_params(0, fault)).unwrap();
            assert!(base.convergence.is_none(), "stride 0 must not record");
            for stride in STRIDES {
                let on = run_gpu_sa(&inst, &sa_params(stride, fault)).unwrap();
                assert_eq!(
                    fingerprint(&on),
                    fingerprint(&base),
                    "sa stride {stride} fault {fault} diverged"
                );
                assert_eq!(on.timeline, base.timeline, "timelines must match event for event");
                if !on.recovery.cpu_fallback {
                    assert!(on.convergence.is_some(), "device run with telemetry has a trace");
                }
            }
        }
    }
}

#[test]
fn dpso_runs_are_stride_independent() {
    let inst = cdd_core::Instance::paper_example_cdd();
    for fault in [false, true] {
        let base = run_gpu_dpso(&inst, &dpso_params(0, fault)).unwrap();
        assert!(base.convergence.is_none());
        for stride in STRIDES {
            let on = run_gpu_dpso(&inst, &dpso_params(stride, fault)).unwrap();
            assert_eq!(
                fingerprint(&on),
                fingerprint(&base),
                "dpso stride {stride} fault {fault} diverged"
            );
            assert_eq!(on.timeline, base.timeline);
        }
    }
}

#[test]
fn sync_runs_are_stride_independent() {
    let inst = cdd_core::Instance::paper_example_cdd();
    for fault in [false, true] {
        let base = run_gpu_sa_sync(&inst, &sa_params(0, fault), 3, 4).unwrap();
        assert!(base.convergence.is_none());
        for stride in STRIDES {
            let on = run_gpu_sa_sync(&inst, &sa_params(stride, fault), 3, 4).unwrap();
            assert_eq!(
                fingerprint(&on),
                fingerprint(&base),
                "sync stride {stride} fault {fault} diverged"
            );
            assert_eq!(on.timeline, base.timeline);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary stride × seed × fault: the SA fingerprint never moves.
    #[test]
    fn any_stride_matches_the_disabled_run(
        stride in 1u64..24,
        seed in 0u64..1000,
        fault in any::<bool>(),
    ) {
        let inst = cdd_core::Instance::paper_example_cdd();
        let base = run_gpu_sa(&inst, &GpuSaParams { seed, ..sa_params(0, fault) }).unwrap();
        let on = run_gpu_sa(&inst, &GpuSaParams { seed, ..sa_params(stride, fault) }).unwrap();
        prop_assert_eq!(fingerprint(&on), fingerprint(&base));
        prop_assert_eq!(&on.timeline, &base.timeline);
    }
}
