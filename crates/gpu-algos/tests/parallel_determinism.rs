//! The determinism contract of parallel block dispatch (DESIGN.md §11).
//!
//! The host thread count is a pure wall-clock knob: every observable output
//! of a pipeline run — the winning sequence, the objective, the modeled
//! clocks bit-for-bit, the launch and evaluation counts, the fault-recovery
//! statistics, and the decoded convergence telemetry — must be byte-identical
//! at every `SimParallelism` setting. The golden-value test additionally
//! pins today's engine to the pre-parallel (serial-only) engine: the numbers
//! below were captured from the commit before the dispatch rewrite.

use cdd_gpu::{run_gpu_dpso, run_gpu_sa, GpuDpsoParams, GpuRunResult, GpuSaParams};
use cdd_core::Instance;
use cuda_sim::{FaultPlan, SimParallelism, TelemetryConfig};

/// Everything observable about a run, with floats pinned to their bits.
#[derive(Debug, PartialEq)]
struct Observed {
    best: Vec<u32>,
    objective: i64,
    evaluations: u64,
    t0_bits: u64,
    modeled_bits: u64,
    kernel_bits: u64,
    transfer_bits: u64,
    kernel_launches: usize,
    profiler_summary: String,
    recovery: cdd_gpu::RecoveryStats,
    convergence: Option<cdd_gpu::ConvergenceTrace>,
}

impl Observed {
    fn of(r: &GpuRunResult) -> Observed {
        Observed {
            best: r.best.as_slice().to_vec(),
            objective: r.objective,
            evaluations: r.evaluations,
            t0_bits: r.t0.to_bits(),
            modeled_bits: r.modeled_seconds.to_bits(),
            kernel_bits: r.kernel_seconds.to_bits(),
            transfer_bits: r.transfer_seconds.to_bits(),
            kernel_launches: r.kernel_launches,
            profiler_summary: r.profiler_summary.clone(),
            recovery: r.recovery,
            convergence: r.convergence.clone(),
        }
    }
}

fn sa_params(par: SimParallelism) -> GpuSaParams {
    let mut p = GpuSaParams {
        blocks: 2,
        block_size: 32,
        iterations: 100,
        telemetry: TelemetryConfig::every(5),
        ..GpuSaParams::default()
    };
    p.device.parallelism = par;
    p
}

fn dpso_params(par: SimParallelism) -> GpuDpsoParams {
    let mut p = GpuDpsoParams {
        blocks: 2,
        block_size: 32,
        iterations: 100,
        telemetry: TelemetryConfig::every(5),
        ..GpuDpsoParams::default()
    };
    p.device.parallelism = par;
    p
}

const THREAD_COUNTS: [SimParallelism; 4] = [
    SimParallelism::Serial,
    SimParallelism::Threads(1),
    SimParallelism::Threads(2),
    SimParallelism::Threads(8),
];

#[test]
fn sa_is_byte_identical_at_every_thread_count() {
    let inst = Instance::paper_example_cdd();
    let baseline = Observed::of(&run_gpu_sa(&inst, &sa_params(SimParallelism::Serial)).unwrap());
    assert!(baseline.convergence.is_some(), "telemetry must be on for this test to bite");
    for par in THREAD_COUNTS {
        let run = Observed::of(&run_gpu_sa(&inst, &sa_params(par)).unwrap());
        assert_eq!(baseline, run, "SA diverged at {par}");
    }
}

#[test]
fn dpso_is_byte_identical_at_every_thread_count() {
    let inst = Instance::paper_example_cdd();
    let baseline =
        Observed::of(&run_gpu_dpso(&inst, &dpso_params(SimParallelism::Serial)).unwrap());
    assert!(baseline.convergence.is_some(), "telemetry must be on for this test to bite");
    for par in THREAD_COUNTS {
        let run = Observed::of(&run_gpu_dpso(&inst, &dpso_params(par)).unwrap());
        assert_eq!(baseline, run, "DPSO diverged at {par}");
    }
}

/// Golden values captured from the pre-parallel engine (the commit before
/// the dispatch rewrite), with the exact same instance and parameters. A
/// failure here means the rewrite changed *results*, not just wall-clock.
#[test]
fn results_match_the_pre_parallel_engine_golden_values() {
    let inst = Instance::paper_example_cdd();

    for par in THREAD_COUNTS {
        let mut p = GpuSaParams {
            blocks: 2,
            block_size: 32,
            iterations: 100,
            ..GpuSaParams::default()
        };
        p.device.parallelism = par;
        let sa = run_gpu_sa(&inst, &p).unwrap();
        assert_eq!(sa.objective, 81, "SA objective at {par}");
        assert_eq!(sa.best.as_slice(), &[0, 1, 2, 3, 4], "SA sequence at {par}");
        assert_eq!(sa.evaluations, 6464, "SA evaluations at {par}");
        assert_eq!(sa.kernel_launches, 401, "SA launches at {par}");
        assert_eq!(sa.t0.to_bits(), 0x4038603b57f93aea, "SA t0 at {par}");
        // Clock pins re-captured from the serial engine after the batching
        // PR's charge-model adjustments (the kernel-second pins drifted by
        // ~1e-7 modeled seconds there and the stale values were left
        // behind — objective/sequence/evaluations/launches/t0/transfer
        // never moved). What this test actually guards is that the pins
        // are identical at every thread count.
        assert_eq!(sa.modeled_seconds.to_bits(), 0x3f6195174ead7747, "SA modeled at {par}");
        assert_eq!(sa.kernel_seconds.to_bits(), 0x3f60982e7704cb0b, "SA kernel at {par}");
        assert_eq!(sa.transfer_seconds.to_bits(), 0x3f1f9d1af51587f0, "SA transfer at {par}");

        let mut p = GpuDpsoParams {
            blocks: 2,
            block_size: 32,
            iterations: 100,
            ..GpuDpsoParams::default()
        };
        p.device.parallelism = par;
        let dp = run_gpu_dpso(&inst, &p).unwrap();
        assert_eq!(dp.objective, 81, "DPSO objective at {par}");
        assert_eq!(dp.best.as_slice(), &[0, 1, 2, 3, 4], "DPSO sequence at {par}");
        assert_eq!(dp.evaluations, 6464, "DPSO evaluations at {par}");
        assert_eq!(dp.kernel_launches, 504, "DPSO launches at {par}");
        assert_eq!(dp.modeled_seconds.to_bits(), 0x3f65cca9a69818c0, "DPSO modeled at {par}");
        assert_eq!(dp.kernel_seconds.to_bits(), 0x3f64cfc0ceef6c84, "DPSO kernel at {par}");
    }
}

/// Fault injection — including read bit-flips, the one fault class whose
/// streams were redesigned for pre-drawing — is deterministic and
/// thread-count-invariant: the same plan produces the same recovery story
/// and the same final answer at every parallelism setting.
#[test]
fn faulted_runs_are_thread_count_invariant() {
    let inst = Instance::paper_example_cdd();
    let plan = FaultPlan::with_rates(9, 0.05, 0.02, 0.02);

    let observe = |par: SimParallelism| {
        let mut p = sa_params(par);
        p.fault = Some(plan.clone());
        Observed::of(&run_gpu_sa(&inst, &p).unwrap())
    };

    let baseline = observe(SimParallelism::Serial);
    assert!(
        baseline.recovery.launch_retries > 0 || baseline.recovery.device_attempts > 1,
        "plan too mild to exercise the fault path: {:?}",
        baseline.recovery
    );
    for par in THREAD_COUNTS {
        assert_eq!(baseline, observe(par), "faulted SA diverged at {par}");
    }
}
