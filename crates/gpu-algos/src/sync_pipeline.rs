//! The **synchronous** parallel SA variant (paper Fig. 8) on the simulated
//! GPU — the scheme the paper evaluated and *rejected* in favour of the
//! asynchronous one ("due to the premature convergence of the latter
//! approach").
//!
//! Execution per temperature level: every thread simulates a Markov chain
//! of fixed length `M` at the level's constant temperature (the same
//! perturb → fitness → accept kernels as the asynchronous pipeline), then a
//! reduction finds the ensemble-best *current* state `s_j^min` and a
//! broadcast kernel restarts every chain from it at the next, cooler level.
//!
//! The broadcast is the scheme's cost and its weakness: one extra kernel +
//! the loss of ensemble diversity each level. Both effects are visible in
//! the pipeline's profiler timeline and in the ablation
//! (`ablation_async_vs_sync`).

use crate::init::initial_ensemble;
use crate::kernels::{
    AcceptKernel, DeltaCacheBufs, DeltaFitnessKernel, FitnessKernel, PerturbKernel, SaProbe,
};
use crate::layout::ProblemDevice;
use crate::recovery::{
    launch_with_retry, merge_faults, run_with_recovery, suite_device_error, verified_best,
    RecoveryStats,
};
use crate::sa_pipeline::{
    check_argmin_domain, check_native_capabilities, cpu_fallback_sa, CandidateScorer, GpuRunResult,
    GpuSaParams,
};
use crate::trajectory::ConvergenceTrace;
use cdd_core::eval::{evaluator_for, SequenceEvaluator};
use cdd_core::{Cost, Instance, JobSequence, SuiteError};
use cdd_meta::initial_temperature;
use cuda_sim::reduce::{unpack_argmin, AtomicArgminKernel};
use cuda_sim::{
    Backend, Buf, DeviceCtx, ExecBackend, FaultPlan, Gpu, Kernel, LaunchConfig, NativeGpu,
    TelemetryRing, XorWow,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Broadcast kernel: every thread overwrites its current sequence and
/// energy with the reduction winner's (the `s_j^min` hand-off of Fig. 8).
pub struct BroadcastKernel {
    /// Packed `(value, thread)` argmin over the current energies.
    pub packed: Buf<i64>,
    /// Current sequences (every row overwritten with the winner's).
    pub current: Buf<u32>,
    /// Current energies (set to the winning value).
    pub energies: Buf<i64>,
    /// Jobs per sequence.
    pub n: usize,
    /// Live threads.
    pub ensemble: usize,
    /// Optional per-thread dirty flags for the delta-fitness path: restarted
    /// (overwritten) rows invalidate their resident cache. `None` keeps the
    /// kernel's writes bit-identical to the full-evaluation path.
    pub flags: Option<Buf<u32>>,
}

impl Kernel for BroadcastKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "broadcast_best"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let gid = ctx.global_id();
        if gid >= self.ensemble {
            return;
        }
        let key = ctx.read(self.packed, 0);
        let (value, winner) = unpack_argmin(key);
        ctx.charge_alu(2);
        // A corrupted packed key can decode past the ensemble; skip the
        // restart rather than read out of bounds (the chain keeps its own
        // state for the next level). Cheap enough to keep unconditionally.
        if winner >= self.ensemble {
            return;
        }
        if winner != gid {
            ctx.copy_row(self.current, winner * self.n, self.current, gid * self.n, self.n);
            ctx.write(self.energies, gid, value);
            if let Some(flags) = self.flags {
                ctx.write(flags, gid, 1);
            }
        }
    }
}

/// Run the synchronous parallel SA: `levels` temperature levels of
/// `markov_len` generations each (total generations = `params.iterations`
/// when `levels × markov_len` matches; pass the split explicitly).
pub fn run_gpu_sa_sync(
    inst: &Instance,
    params: &GpuSaParams,
    levels: u64,
    markov_len: u64,
) -> Result<GpuRunResult, SuiteError> {
    assert!(levels >= 1 && markov_len >= 1, "need at least one level and one step");
    check_argmin_domain(inst, params.ensemble())?;
    check_native_capabilities(params.backend, params.fault.as_ref(), &params.telemetry)?;

    let mut host_rng = StdRng::seed_from_u64(params.seed);
    let evaluator = evaluator_for(inst);
    let t0 = params
        .t0
        .unwrap_or_else(|| initial_temperature(evaluator.as_ref(), params.t0_samples, &mut host_rng));

    match params.backend {
        Backend::Sim => run_with_recovery(
            &params.recovery,
            params.fault.as_ref(),
            |plan, stats| {
                sync_attempt::<Gpu>(
                    inst, params, levels, markov_len, &*evaluator, t0, &host_rng, plan, stats,
                )
            },
            || cpu_fallback_sa(params, &*evaluator, t0, levels * markov_len),
        ),
        Backend::Native => run_with_recovery(
            &params.recovery,
            params.fault.as_ref(),
            |plan, stats| {
                sync_attempt::<NativeGpu>(
                    inst, params, levels, markov_len, &*evaluator, t0, &host_rng, plan, stats,
                )
            },
            || cpu_fallback_sa(params, &*evaluator, t0, levels * markov_len),
        ),
    }
}

/// One complete device run of the synchronous SA pipeline, on either
/// execution backend.
#[allow(clippy::too_many_arguments)]
fn sync_attempt<B: ExecBackend>(
    inst: &Instance,
    params: &GpuSaParams,
    levels: u64,
    markov_len: u64,
    evaluator: &dyn SequenceEvaluator,
    t0: f64,
    host_rng: &StdRng,
    plan: Option<FaultPlan>,
    stats: &mut RecoveryStats,
) -> Result<GpuRunResult, SuiteError> {
    let n = inst.n();
    let ensemble = params.ensemble();
    let cfg = LaunchConfig::linear(params.blocks, params.block_size);
    let mut host_rng = host_rng.clone();
    let policy = &params.recovery;

    let mut gpu = B::from_spec(params.device.clone());
    gpu.set_fault_plan(plan);

    // Telemetry state lives outside the attempt closure so the ring can be
    // drained from `&gpu` once the closure's mutable borrow ends. The global
    // generation index is `level × markov_len + step`.
    let total_gens = levels.saturating_mul(markov_len);
    let telem_cap = params.telemetry.effective_capacity(total_gens.saturating_sub(1));
    let mut ring: Option<TelemetryRing> = None;
    let mut sample_headers: Vec<(u64, f64)> = Vec::new();

    let outcome = (|| -> Result<(JobSequence, Cost), SuiteError> {
        let prob = ProblemDevice::upload(&mut gpu, inst).map_err(|e| suite_device_error(&e))?;

        let current = gpu.alloc::<u32>(ensemble * n);
        let flat = initial_ensemble(inst, ensemble, params.init, &mut host_rng);
        gpu.h2d(current, &flat);
        let candidate = gpu.alloc::<u32>(ensemble * n);
        let energies = gpu.alloc::<i64>(ensemble);
        let cand_energies = gpu.alloc::<i64>(ensemble);
        let best_rows = gpu.alloc::<u32>(ensemble * n);
        let best_energies = gpu.alloc::<i64>(ensemble);
        gpu.h2d(best_energies, &vec![i64::MAX; ensemble]);
        let packed = gpu.alloc::<i64>(1);
        let rng_states = gpu.alloc::<u64>(ensemble * 3);
        let words: Vec<u64> =
            (0..ensemble).flat_map(|t| XorWow::new(params.seed, t as u64).pack()).collect();
        gpu.h2d(rng_states, &words);

        // Delta-evaluation state (see `sa_pipeline`): flags seed to 1 so
        // every chain rebuilds on the first generation.
        let pert_eff = params.pert.min(n);
        let delta_on = params.delta.enabled && pert_eff >= 2;
        let delta_bufs = if delta_on {
            let moves = gpu.alloc::<u32>(ensemble * pert_eff);
            let flags = gpu.alloc::<u32>(ensemble);
            gpu.h2d(flags, &vec![1u32; ensemble]);
            Some((moves, flags, DeltaCacheBufs::alloc(&mut gpu, ensemble, n)))
        } else {
            None
        };

        // Telemetry ring last, after every algorithm buffer, so buffer
        // handles match the telemetry-off run exactly.
        if params.telemetry.enabled() {
            ring = Some(TelemetryRing::alloc(&mut gpu, ensemble, telem_cap));
        }

        let fitness_current = FitnessKernel::new(prob, current, energies, ensemble, params.blocks);
        launch_with_retry(&mut gpu, &fitness_current, cfg, policy, stats)
            .map_err(|e| suite_device_error(&e))?;

        let mut perturb =
            PerturbKernel::new(current, candidate, rng_states, n, ensemble, params.pert);
        if let Some((moves, _, _)) = delta_bufs {
            perturb.moves = Some(moves);
        }
        let scorer = match delta_bufs {
            Some((moves, flags, cache)) => CandidateScorer::Delta(DeltaFitnessKernel::new(
                prob,
                current,
                candidate,
                moves,
                flags,
                cand_energies,
                cache,
                ensemble,
                params.blocks,
                pert_eff,
                params.delta.resync_every,
            )),
            None => CandidateScorer::Full(FitnessKernel::new(
                prob,
                candidate,
                cand_energies,
                ensemble,
                params.blocks,
            )),
        };
        let reduce_current = AtomicArgminKernel { values: energies, out: packed };
        let broadcast = BroadcastKernel {
            packed,
            current,
            energies,
            n,
            ensemble,
            flags: delta_bufs.map(|(_, f, _)| f),
        };
        let reduce_best = AtomicArgminKernel { values: best_energies, out: packed };

        for level in 0..levels {
            let temperature = t0 * params.cooling_rate.powi(level.min(i32::MAX as u64) as i32);
            // Span metadata is attached whether or not telemetry samples
            // this level, so the timeline is stride-independent.
            gpu.span_begin_args(
                "sync-sa-level",
                vec![
                    ("level".to_string(), level.to_string()),
                    ("temperature".to_string(), format!("{temperature:.6e}")),
                ],
            );
            let level_result = (|gpu: &mut B| -> Result<(), SuiteError> {
                for step in 0..markov_len {
                    let gen = level * markov_len + step;
                    let slot = ring.and_then(|_| params.telemetry.slot_for(gen, telem_cap));
                    if slot.is_some() {
                        sample_headers.push((gen, temperature));
                    }
                    launch_with_retry(gpu, &perturb, cfg, policy, stats)
                        .map_err(|e| suite_device_error(&e))?;
                    match &scorer {
                        CandidateScorer::Full(k) => {
                            launch_with_retry(gpu, k, cfg, policy, stats)
                                .map_err(|e| suite_device_error(&e))?;
                        }
                        CandidateScorer::Delta(k) => {
                            k.set_generation(gen);
                            launch_with_retry(gpu, k, cfg, policy, stats)
                                .map_err(|e| suite_device_error(&e))?;
                        }
                    }
                    let accept = AcceptKernel {
                        current,
                        candidate,
                        energies,
                        cand_energies,
                        best_rows,
                        best_energies,
                        rng: rng_states,
                        n,
                        ensemble,
                        temperature,
                        segment_temps: None,
                        telemetry: ring.map(|r| SaProbe { ring: r, slot }),
                        flags: delta_bufs.map(|(_, f, _)| f),
                    };
                    launch_with_retry(gpu, &accept, cfg, policy, stats)
                        .map_err(|e| suite_device_error(&e))?;
                }
                // Level barrier: reduce over the current states and broadcast
                // s_j^min as everyone's next start.
                gpu.h2d(packed, &[i64::MAX]);
                launch_with_retry(gpu, &reduce_current, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                launch_with_retry(gpu, &broadcast, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                Ok(())
            })(&mut gpu);
            gpu.span_end("sync-sa-level");
            level_result?;
        }

        // Final reduction over the personal bests (as in the async
        // pipeline), oracle-verified.
        gpu.h2d(packed, &[i64::MAX]);
        launch_with_retry(&mut gpu, &reduce_best, cfg, policy, stats)
            .map_err(|e| suite_device_error(&e))?;
        let key = gpu.d2h(packed)[0];
        let (claimed, winner) = unpack_argmin(key);
        verified_best(&mut gpu, best_rows, n, ensemble, winner, claimed, evaluator, stats)
    })();

    merge_faults(&mut stats.faults, gpu.fault_stats());
    let (best, objective) = outcome?;
    let convergence = ring.map(|r| {
        ConvergenceTrace::from_ring(
            "sync-sa",
            params.telemetry.stride,
            markov_len,
            &sample_headers,
            &r,
            &gpu,
        )
    });
    Ok(GpuRunResult {
        best,
        objective,
        evaluations: ensemble as u64 * (levels * markov_len + 1),
        t0,
        modeled_seconds: gpu.modeled_total_seconds(),
        kernel_seconds: gpu.modeled_kernel_seconds(),
        transfer_seconds: gpu.modeled_transfer_seconds(),
        kernel_launches: gpu.kernel_launches(),
        profiler_summary: gpu.profiler_summary(),
        timeline: gpu.timeline_events(),
        recovery: RecoveryStats::default(),
        convergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_gpu_sa;
    use cdd_core::exact::best_sequence_bruteforce;

    fn params() -> GpuSaParams {
        GpuSaParams { blocks: 2, block_size: 16, ..Default::default() }
    }

    #[test]
    fn sync_pipeline_solves_the_paper_example() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_sa_sync(&inst, &params(), 20, 10).unwrap();
        assert_eq!(r.objective, optimum);
        assert!(r.best.is_valid_permutation());
    }

    #[test]
    fn timeline_shows_broadcast_traffic() {
        let inst = Instance::paper_example_cdd();
        let r = run_gpu_sa_sync(&inst, &params(), 5, 4).unwrap();
        assert!(r.profiler_summary.contains("broadcast_best"));
        // 1 init fitness + levels×(3×markov + 2) + 1 final reduction.
        assert_eq!(r.kernel_launches as u64, 1 + 5 * (3 * 4 + 2) + 1);
    }

    #[test]
    fn telemetry_indexes_generations_globally_across_levels() {
        let inst = Instance::paper_example_cdd();
        let p = GpuSaParams {
            telemetry: cuda_sim::TelemetryConfig::every(4),
            ..params()
        };
        let r = run_gpu_sa_sync(&inst, &p, 3, 5).unwrap();
        let trace = r.convergence.expect("telemetry was on");
        assert_eq!(trace.algorithm, "sync-sa");
        assert_eq!(trace.gens_per_span, 5, "one span covers a whole Markov chain");
        let gens: Vec<u64> = trace.samples.iter().map(|s| s.gen).collect();
        assert_eq!(gens, vec![0, 4, 8, 12], "global index runs across levels");
        // Temperatures cool level by level: gen 4 is level 0, gen 8 level 1.
        assert!(trace.samples[2].temperature < trace.samples[1].temperature);
        // The broadcast makes every chain share a current state at the start
        // of the next level; gen 12 (level 2, step 2) best lanes are finite.
        assert!(trace.samples[3].best.iter().all(|&b| b < i64::MAX));
    }

    #[test]
    fn broadcast_collapses_diversity() {
        // After one level every chain holds the same current sequence.
        let inst = Instance::paper_example_cdd();
        let r = run_gpu_sa_sync(&inst, &params(), 1, 3).unwrap();
        // The run is consistent and returns the reduction winner.
        let eval = cdd_core::eval::evaluator_for(&inst);
        assert_eq!(eval.evaluate(r.best.as_slice()), r.objective);
    }

    #[test]
    fn async_and_sync_reach_comparable_quality_at_equal_budget() {
        // The paper preferred async for its convergence behaviour at its
        // budgets; which scheme wins is configuration-dependent (the
        // broadcast is pure exploitation), so the assertion here is
        // comparability — the empirical comparison lives in the
        // `ablation_async_vs_sync` binary. What is *not* configuration-
        // dependent: sync pays an extra broadcast launch per level.
        let inst = cdd_instances_like();
        let total = 300u64;
        let mut async_sum = 0i64;
        let mut sync_sum = 0i64;
        for seed in 0..5 {
            let p = GpuSaParams { seed, ..params() };
            sync_sum += run_gpu_sa_sync(&inst, &p, 30, total / 30).unwrap().objective;
            async_sum +=
                run_gpu_sa(&inst, &GpuSaParams { iterations: total, ..p }).unwrap().objective;
        }
        let (a, s) = (async_sum as f64 / 5.0, sync_sum as f64 / 5.0);
        assert!(
            (a - s).abs() / a.min(s) < 0.15,
            "schemes diverged unexpectedly far: async avg {a}, sync avg {s}"
        );
    }

    #[test]
    fn delta_eval_outcome_matches_full_eval_in_sync_pipeline() {
        use crate::sa_pipeline::DeltaConfig;
        let inst = cdd_instances_like();
        let base = run_gpu_sa_sync(&inst, &params(), 8, 6).unwrap();
        let p = GpuSaParams {
            delta: DeltaConfig { enabled: true, resync_every: 10 },
            ..params()
        };
        let d = run_gpu_sa_sync(&inst, &p, 8, 6).unwrap();
        assert_eq!(d.best, base.best);
        assert_eq!(d.objective, base.objective);
        assert_eq!(d.kernel_launches, base.kernel_launches);
        // The sync scheme's broadcast dirties every row each level, so the
        // pipeline-level contract is bounded overhead, not a strict win (the
        // strict win is kernel-level on clean warps; see DESIGN.md §14).
        assert!(
            d.kernel_seconds <= base.kernel_seconds * 1.01,
            "delta ({}) must stay within 1% of full ({}) on n=30",
            d.kernel_seconds,
            base.kernel_seconds
        );
    }

    #[test]
    fn sync_survives_fault_injection_with_oracle_verified_result() {
        let inst = Instance::paper_example_cdd();
        let p = GpuSaParams {
            fault: Some(FaultPlan::with_rates(17, 0.05, 0.01, 0.02)),
            ..params()
        };
        let r = run_gpu_sa_sync(&inst, &p, 10, 6).unwrap();
        let eval = cdd_core::eval::evaluator_for(&inst);
        assert_eq!(eval.evaluate(r.best.as_slice()), r.objective, "oracle must confirm");
        assert!(r.best.is_valid_permutation());
        assert!(r.recovery.faults.launches_attempted > 0);
    }

    fn cdd_instances_like() -> Instance {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(31);
        let p: Vec<i64> = (0..30).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..30).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..30).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.6) as i64;
        Instance::cdd_from_arrays(&p, &a, &b, d).unwrap()
    }
}
