//! # cdd-gpu
//!
//! The paper's GPU algorithms (Sections VI–VII) mapped onto the `cuda-sim`
//! execution model: **asynchronous parallel Simulated Annealing** and
//! **Discrete Particle Swarm Optimization** for the CDD and UCDDCP
//! scheduling problems.
//!
//! Per generation, the SA pipeline launches the paper's four kernels
//! (Fig. 10):
//!
//! 1. **perturbation** — each thread derives a candidate from its current
//!    sequence by Fisher–Yates-shuffling `Pert = 4` randomly selected
//!    positions, using its private XORWOW stream;
//! 2. **fitness** — each thread stages the penalty rates into shared memory
//!    (cooperatively, behind a `__syncthreads` barrier — phase-structured in
//!    the simulator), then runs the O(n) fixed-sequence optimizer of
//!    `cdd-core` on its candidate;
//! 3. **acceptance** — the metropolis rule at the current temperature, plus
//!    maintenance of each thread's personal best;
//! 4. **reduction** — an atomic argmin over the personal bests into the
//!    global best.
//!
//! Data movement follows Fig. 9: job data, initial sequences and RNG states
//! are copied host→device once; `d` and `n` live in constant memory; only
//! the packed global best and the winning row come back at the end. All
//! timing is the simulator's modeled time (see `cuda-sim` docs).
//!
//! ```
//! use cdd_core::Instance;
//! use cdd_gpu::{GpuSaParams, run_gpu_sa};
//!
//! let inst = Instance::paper_example_cdd();
//! let result = run_gpu_sa(&inst, &GpuSaParams { blocks: 2, block_size: 32,
//!     iterations: 200, ..Default::default() }).unwrap();
//! assert!(result.objective <= 90); // near the 5-job optimum
//! assert!(result.modeled_seconds > 0.0);
//! ```

pub mod batch;
pub mod dpso_pipeline;
pub mod init;
pub mod kernels;
pub mod layout;
pub mod recovery;
pub mod sa_pipeline;
pub mod solve;
pub mod sync_pipeline;
pub mod trajectory;

pub use batch::{run_gpu_sa_batch, BatchEntry};
pub use dpso_pipeline::{run_gpu_dpso, GpuDpsoParams};
pub use init::{initial_ensemble, InitStrategy};
pub use kernels::fitness::CORRUPT_ENERGY;
pub use layout::ProblemDevice;
pub use recovery::{RecoveryPolicy, RecoveryStats};
pub use sa_pipeline::{run_gpu_sa, DeltaConfig, GpuRunResult, GpuSaParams};
pub use cuda_sim::{Backend, NativeGpu};
pub use solve::{run_gpu_solve, run_gpu_solve_batch, GpuSolveSpec};
pub use sync_pipeline::{run_gpu_sa_sync, BroadcastKernel};
pub use trajectory::{
    counter_trace_events, ConvergenceSummary, ConvergenceTrace, GenerationSample,
};
