//! The full GPU **DPSO** pipeline (paper Section VII).
//!
//! One particle per thread; the swarm best is found by the same atomic
//! argmin reduction as the SA pipeline and broadcast by a one-thread copy
//! kernel. "Apart from the core aspect of the algorithm, the
//! parallelization approach remains the same as for SA."

use crate::init::{initial_ensemble, InitStrategy};
use crate::kernels::{DpsoUpdateKernel, FitnessKernel, GbestCopyKernel, PbestKernel};
use crate::layout::ProblemDevice;
use crate::sa_pipeline::GpuRunResult;
use cdd_core::eval::evaluator_for;
use cdd_core::{Instance, JobSequence};
use cuda_sim::reduce::{unpack_argmin, AtomicArgminKernel};
use cuda_sim::{DeviceSpec, Gpu, LaunchConfig, LaunchError, XorWow};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one GPU DPSO run.
#[derive(Debug, Clone)]
pub struct GpuDpsoParams {
    /// Grid size (the paper fixes 4 blocks).
    pub blocks: usize,
    /// Block size (192 in the paper).
    pub block_size: usize,
    /// Generations (1000 or 5000 in the paper).
    pub iterations: u64,
    /// Velocity probability `w`.
    pub w: f64,
    /// Cognition probability `c₁`.
    pub c1: f64,
    /// Social probability `c₂`.
    pub c2: f64,
    /// Master seed.
    pub seed: u64,
    /// Starting-swarm strategy (default: V-shaped heuristic spread).
    pub init: InitStrategy,
    /// Simulated device.
    pub device: DeviceSpec,
}

impl Default for GpuDpsoParams {
    fn default() -> Self {
        GpuDpsoParams {
            blocks: 4,
            block_size: 192,
            iterations: 1000,
            w: 0.9,
            c1: 0.8,
            c2: 0.8,
            seed: 2016,
            init: InitStrategy::default(),
            device: DeviceSpec::gt560m(),
        }
    }
}

impl GpuDpsoParams {
    /// The paper's `DPSO₁₀₀₀` configuration (768 particles).
    pub fn paper_1000() -> Self {
        Self::default()
    }

    /// The paper's `DPSO₅₀₀₀` configuration.
    pub fn paper_5000() -> Self {
        GpuDpsoParams { iterations: 5000, ..Self::default() }
    }

    /// Swarm size (total threads).
    pub fn ensemble(&self) -> usize {
        self.blocks * self.block_size
    }
}

/// Run the paper's parallel DPSO on the simulated GPU.
pub fn run_gpu_dpso(inst: &Instance, params: &GpuDpsoParams) -> Result<GpuRunResult, LaunchError> {
    assert!(params.iterations >= 1, "need at least one generation");
    let n = inst.n();
    let ensemble = params.ensemble();
    let cfg = LaunchConfig::linear(params.blocks, params.block_size);

    let mut host_rng = StdRng::seed_from_u64(params.seed);
    let evaluator = evaluator_for(inst);

    let mut gpu = Gpu::new(params.device.clone());
    let prob = ProblemDevice::upload(&mut gpu, inst)?;

    let positions = gpu.alloc::<u32>(ensemble * n);
    let flat = initial_ensemble(inst, ensemble, params.init, &mut host_rng);
    gpu.h2d(positions, &flat);
    let energies = gpu.alloc::<i64>(ensemble);
    let pbest = gpu.alloc::<u32>(ensemble * n);
    let pbest_energies = gpu.alloc::<i64>(ensemble);
    gpu.h2d(pbest_energies, &vec![i64::MAX; ensemble]);
    let gbest = gpu.alloc::<u32>(n);
    let packed_best = gpu.alloc::<i64>(1);
    gpu.h2d(packed_best, &[i64::MAX]);
    let rng_states = gpu.alloc::<u64>(ensemble * 3);
    let words: Vec<u64> =
        (0..ensemble).flat_map(|t| XorWow::new(params.seed, t as u64).pack()).collect();
    gpu.h2d(rng_states, &words);

    let fitness = FitnessKernel { prob, seqs: positions, out: energies, ensemble };
    let pbest_update =
        PbestKernel { positions, energies, pbest, pbest_energies, n, ensemble };
    let reduce = AtomicArgminKernel { values: pbest_energies, out: packed_best };
    let gbest_copy = GbestCopyKernel { packed: packed_best, pbest, gbest, n };
    let update = DpsoUpdateKernel {
        positions,
        pbest,
        gbest,
        rng: rng_states,
        n,
        ensemble,
        w: params.w,
        c1: params.c1,
        c2: params.c2,
    };

    // Initialize: evaluate the random swarm, seed pbest/gbest (Algorithm 2,
    // lines 1–2 plus the first "find bests").
    gpu.launch(&fitness, cfg, &[])?;
    gpu.launch(&pbest_update, cfg, &[])?;
    gpu.launch(&reduce, cfg, &[])?;
    gpu.launch(&gbest_copy, cfg, &[])?;

    for _gen in 0..params.iterations {
        gpu.launch(&update, cfg, &[])?;
        gpu.launch(&fitness, cfg, &[])?;
        gpu.launch(&pbest_update, cfg, &[])?;
        gpu.launch(&reduce, cfg, &[])?;
        gpu.launch(&gbest_copy, cfg, &[])?;
    }

    let key = gpu.d2h(packed_best)[0];
    let (objective, winner) = unpack_argmin(key);
    let row = gpu.d2h_range(pbest, winner * n, n);
    let best = JobSequence::from_vec(row).expect("device rows stay permutations");
    debug_assert_eq!(evaluator.evaluate(best.as_slice()), objective);

    let profiler = gpu.profiler();
    Ok(GpuRunResult {
        best,
        objective,
        evaluations: ensemble as u64 * (params.iterations + 1),
        t0: 0.0,
        modeled_seconds: profiler.total_seconds(),
        kernel_seconds: profiler.kernel_seconds(),
        transfer_seconds: profiler.transfer_seconds(),
        kernel_launches: profiler.kernel_launches(),
        profiler_summary: profiler.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::exact::best_sequence_bruteforce;

    fn small_params(iterations: u64) -> GpuDpsoParams {
        GpuDpsoParams { blocks: 2, block_size: 32, iterations, ..Default::default() }
    }

    #[test]
    fn gpu_dpso_finds_paper_example_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_dpso(&inst, &small_params(200)).unwrap();
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn gpu_dpso_solves_ucddcp_example() {
        let inst = Instance::paper_example_ucddcp();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_dpso(&inst, &small_params(200)).unwrap();
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = Instance::paper_example_cdd();
        let a = run_gpu_dpso(&inst, &small_params(60)).unwrap();
        let b = run_gpu_dpso(&inst, &small_params(60)).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn timeline_counts_five_kernels_per_generation() {
        let inst = Instance::paper_example_cdd();
        let iters = 20;
        let r = run_gpu_dpso(&inst, &small_params(iters)).unwrap();
        // 4 init launches + 5 per generation.
        assert_eq!(r.kernel_launches as u64, 4 + 5 * iters);
        assert!(r.profiler_summary.contains("dpso_update"));
        assert!(r.profiler_summary.contains("gbest_copy"));
    }

    #[test]
    fn gbest_improves_monotonically_via_longer_runs() {
        let inst = Instance::paper_example_ucddcp();
        let short = run_gpu_dpso(&inst, &small_params(5)).unwrap();
        let long = run_gpu_dpso(&inst, &small_params(120)).unwrap();
        assert!(long.objective <= short.objective);
    }
}
