//! The full GPU **DPSO** pipeline (paper Section VII).
//!
//! One particle per thread; the swarm best is found by the same atomic
//! argmin reduction as the SA pipeline and broadcast by a one-thread copy
//! kernel. "Apart from the core aspect of the algorithm, the
//! parallelization approach remains the same as for SA."

use crate::init::{initial_ensemble, InitStrategy};
use crate::kernels::{DpsoProbe, DpsoUpdateKernel, FitnessKernel, GbestCopyKernel, PbestKernel};
use crate::layout::ProblemDevice;
use crate::recovery::{
    launch_with_retry, merge_faults, run_with_recovery, suite_device_error, verified_best,
    RecoveryPolicy, RecoveryStats,
};
use crate::sa_pipeline::{check_argmin_domain, check_native_capabilities, GpuRunResult};
use crate::trajectory::ConvergenceTrace;
use cdd_core::eval::{evaluator_for, SequenceEvaluator};
use cdd_core::{Cost, Instance, JobSequence, SuiteError};
use cdd_meta::{Dpso, DpsoParams};
use cuda_sim::reduce::{unpack_argmin, AtomicArgminKernel};
use cuda_sim::{
    Backend, DeviceSpec, ExecBackend, FaultPlan, Gpu, LaunchConfig, NativeGpu, TelemetryConfig,
    TelemetryRing, XorWow,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one GPU DPSO run.
#[derive(Debug, Clone)]
pub struct GpuDpsoParams {
    /// Grid size (the paper fixes 4 blocks).
    pub blocks: usize,
    /// Block size (192 in the paper).
    pub block_size: usize,
    /// Generations (1000 or 5000 in the paper).
    pub iterations: u64,
    /// Velocity probability `w`.
    pub w: f64,
    /// Cognition probability `c₁`.
    pub c1: f64,
    /// Social probability `c₂`.
    pub c2: f64,
    /// Master seed.
    pub seed: u64,
    /// Starting-swarm strategy (default: V-shaped heuristic spread).
    pub init: InitStrategy,
    /// Simulated device.
    pub device: DeviceSpec,
    /// Optional fault-injection plan installed on the simulated device.
    pub fault: Option<FaultPlan>,
    /// Retry / re-attempt / fallback policy.
    pub recovery: RecoveryPolicy,
    /// Convergence-telemetry policy (disabled by default; sampling changes
    /// no result — see `cuda_sim::telemetry`).
    pub telemetry: TelemetryConfig,
    /// Execution backend: the simulator (default) or the native host path.
    pub backend: Backend,
}

impl Default for GpuDpsoParams {
    fn default() -> Self {
        GpuDpsoParams {
            blocks: 4,
            block_size: 192,
            iterations: 1000,
            w: 0.9,
            c1: 0.8,
            c2: 0.8,
            seed: 2016,
            init: InitStrategy::default(),
            device: DeviceSpec::gt560m(),
            fault: None,
            recovery: RecoveryPolicy::default(),
            telemetry: TelemetryConfig::disabled(),
            backend: Backend::default(),
        }
    }
}

impl GpuDpsoParams {
    /// The paper's `DPSO₁₀₀₀` configuration (768 particles).
    pub fn paper_1000() -> Self {
        Self::default()
    }

    /// The paper's `DPSO₅₀₀₀` configuration.
    pub fn paper_5000() -> Self {
        GpuDpsoParams { iterations: 5000, ..Self::default() }
    }

    /// Swarm size (total threads).
    pub fn ensemble(&self) -> usize {
        self.blocks * self.block_size
    }
}

/// Run the paper's parallel DPSO on the simulated GPU.
///
/// Wrapped in the same resilience layer as the SA pipelines: bounded launch
/// retries, reseeded device re-attempts, CPU-oracle validation of the
/// returned swarm best, and degradation to the CPU DPSO after repeated
/// device failures.
pub fn run_gpu_dpso(inst: &Instance, params: &GpuDpsoParams) -> Result<GpuRunResult, SuiteError> {
    assert!(params.iterations >= 1, "need at least one generation");
    check_argmin_domain(inst, params.ensemble())?;
    check_native_capabilities(params.backend, params.fault.as_ref(), &params.telemetry)?;
    let evaluator = evaluator_for(inst);
    let host_rng = StdRng::seed_from_u64(params.seed);

    match params.backend {
        Backend::Sim => run_with_recovery(
            &params.recovery,
            params.fault.as_ref(),
            |plan, stats| dpso_attempt::<Gpu>(inst, params, &*evaluator, &host_rng, plan, stats),
            || cpu_fallback_dpso(params, &*evaluator),
        ),
        Backend::Native => run_with_recovery(
            &params.recovery,
            params.fault.as_ref(),
            |plan, stats| {
                dpso_attempt::<NativeGpu>(inst, params, &*evaluator, &host_rng, plan, stats)
            },
            || cpu_fallback_dpso(params, &*evaluator),
        ),
    }
}

/// One complete device run of the DPSO pipeline, on either execution
/// backend.
fn dpso_attempt<B: ExecBackend>(
    inst: &Instance,
    params: &GpuDpsoParams,
    evaluator: &dyn SequenceEvaluator,
    host_rng: &StdRng,
    plan: Option<FaultPlan>,
    stats: &mut RecoveryStats,
) -> Result<GpuRunResult, SuiteError> {
    let n = inst.n();
    let ensemble = params.ensemble();
    let cfg = LaunchConfig::linear(params.blocks, params.block_size);
    let mut host_rng = host_rng.clone();
    let policy = &params.recovery;

    let mut gpu = B::from_spec(params.device.clone());
    gpu.set_fault_plan(plan);

    // Telemetry state lives outside the attempt closure so the ring can be
    // drained from `&gpu` once the closure's mutable borrow ends.
    let telem_cap = params.telemetry.effective_capacity(params.iterations.saturating_sub(1));
    let mut ring: Option<TelemetryRing> = None;
    let mut sample_headers: Vec<(u64, f64)> = Vec::new();

    let outcome = (|| -> Result<(JobSequence, Cost), SuiteError> {
        let prob = ProblemDevice::upload(&mut gpu, inst).map_err(|e| suite_device_error(&e))?;

        let positions = gpu.alloc::<u32>(ensemble * n);
        let flat = initial_ensemble(inst, ensemble, params.init, &mut host_rng);
        gpu.h2d(positions, &flat);
        let energies = gpu.alloc::<i64>(ensemble);
        let pbest = gpu.alloc::<u32>(ensemble * n);
        let pbest_energies = gpu.alloc::<i64>(ensemble);
        gpu.h2d(pbest_energies, &vec![i64::MAX; ensemble]);
        let gbest = gpu.alloc::<u32>(n);
        let packed_best = gpu.alloc::<i64>(1);
        gpu.h2d(packed_best, &[i64::MAX]);
        let rng_states = gpu.alloc::<u64>(ensemble * 3);
        let words: Vec<u64> =
            (0..ensemble).flat_map(|t| XorWow::new(params.seed, t as u64).pack()).collect();
        gpu.h2d(rng_states, &words);

        // Telemetry ring last, after every algorithm buffer, so buffer
        // handles match the telemetry-off run exactly (alloc itself records
        // no profiler event and models no cost).
        if params.telemetry.enabled() {
            ring = Some(TelemetryRing::alloc(&mut gpu, ensemble, telem_cap));
        }

        let fitness = FitnessKernel::new(prob, positions, energies, ensemble, params.blocks);
        // Init-time pbest seeding carries no probe: the improvement counter
        // counts in-loop generations only.
        let pbest_update = PbestKernel {
            positions,
            energies,
            pbest,
            pbest_energies,
            n,
            ensemble,
            telemetry: None,
        };
        let reduce = AtomicArgminKernel { values: pbest_energies, out: packed_best };
        let gbest_copy = GbestCopyKernel { packed: packed_best, pbest, gbest, n };
        let update = DpsoUpdateKernel::new(
            positions,
            pbest,
            gbest,
            rng_states,
            n,
            ensemble,
            params.w,
            params.c1,
            params.c2,
        );

        // Initialize: evaluate the random swarm, seed pbest/gbest
        // (Algorithm 2, lines 1–2 plus the first "find bests").
        launch_with_retry(&mut gpu, &fitness, cfg, policy, stats)
            .map_err(|e| suite_device_error(&e))?;
        launch_with_retry(&mut gpu, &pbest_update, cfg, policy, stats)
            .map_err(|e| suite_device_error(&e))?;
        launch_with_retry(&mut gpu, &reduce, cfg, policy, stats)
            .map_err(|e| suite_device_error(&e))?;
        launch_with_retry(&mut gpu, &gbest_copy, cfg, policy, stats)
            .map_err(|e| suite_device_error(&e))?;

        for gen in 0..params.iterations {
            // Span metadata is attached whether or not telemetry samples
            // this generation, so the timeline is stride-independent.
            gpu.span_begin_args(
                "dpso-generation",
                vec![("gen".to_string(), gen.to_string())],
            );
            let slot = ring.and_then(|_| params.telemetry.slot_for(gen, telem_cap));
            if slot.is_some() {
                sample_headers.push((gen, 0.0));
            }
            let gen_result = (|gpu: &mut B| -> Result<(), SuiteError> {
                launch_with_retry(gpu, &update, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                launch_with_retry(gpu, &fitness, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                let pbest_probe = PbestKernel {
                    positions,
                    energies,
                    pbest,
                    pbest_energies,
                    n,
                    ensemble,
                    telemetry: ring.map(|r| DpsoProbe { ring: r, slot, gbest }),
                };
                launch_with_retry(gpu, &pbest_probe, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                launch_with_retry(gpu, &reduce, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                launch_with_retry(gpu, &gbest_copy, cfg, policy, stats)
                    .map_err(|e| suite_device_error(&e))?;
                Ok(())
            })(&mut gpu);
            gpu.span_end("dpso-generation");
            gen_result?;
        }

        let key = gpu.d2h(packed_best)[0];
        let (claimed, winner) = unpack_argmin(key);
        verified_best(&mut gpu, pbest, n, ensemble, winner, claimed, evaluator, stats)
    })();

    merge_faults(&mut stats.faults, gpu.fault_stats());
    let (best, objective) = outcome?;
    let convergence = ring.map(|r| {
        ConvergenceTrace::from_ring("dpso", params.telemetry.stride, 1, &sample_headers, &r, &gpu)
    });
    Ok(GpuRunResult {
        best,
        objective,
        evaluations: ensemble as u64 * (params.iterations + 1),
        t0: 0.0,
        modeled_seconds: gpu.modeled_total_seconds(),
        kernel_seconds: gpu.modeled_kernel_seconds(),
        transfer_seconds: gpu.modeled_transfer_seconds(),
        kernel_launches: gpu.kernel_launches(),
        profiler_summary: gpu.profiler_summary(),
        timeline: gpu.timeline_events(),
        recovery: RecoveryStats::default(),
        convergence,
    })
}

/// CPU degradation target for the DPSO pipeline: the sequential `cdd-meta`
/// DPSO at the same swarm size, generations and operator probabilities.
fn cpu_fallback_dpso(params: &GpuDpsoParams, evaluator: &dyn SequenceEvaluator) -> GpuRunResult {
    let dpso = DpsoParams {
        particles: params.ensemble(),
        iterations: params.iterations,
        w: params.w,
        c1: params.c1,
        c2: params.c2,
    };
    let m = Dpso::new(evaluator, dpso).run(params.seed);
    GpuRunResult {
        best: m.best,
        objective: m.objective,
        evaluations: m.evaluations,
        t0: 0.0,
        modeled_seconds: 0.0,
        kernel_seconds: 0.0,
        transfer_seconds: 0.0,
        kernel_launches: 0,
        profiler_summary: "cpu-fallback: sequential CPU DPSO".into(),
        timeline: Vec::new(),
        recovery: RecoveryStats::default(),
        convergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::exact::best_sequence_bruteforce;

    fn small_params(iterations: u64) -> GpuDpsoParams {
        GpuDpsoParams { blocks: 2, block_size: 32, iterations, ..Default::default() }
    }

    #[test]
    fn gpu_dpso_finds_paper_example_optimum() {
        let inst = Instance::paper_example_cdd();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_dpso(&inst, &small_params(200)).unwrap();
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn gpu_dpso_solves_ucddcp_example() {
        let inst = Instance::paper_example_ucddcp();
        let (_, optimum) = best_sequence_bruteforce(&inst);
        let r = run_gpu_dpso(&inst, &small_params(200)).unwrap();
        assert_eq!(r.objective, optimum);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = Instance::paper_example_cdd();
        let a = run_gpu_dpso(&inst, &small_params(60)).unwrap();
        let b = run_gpu_dpso(&inst, &small_params(60)).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn timeline_counts_five_kernels_per_generation() {
        let inst = Instance::paper_example_cdd();
        let iters = 20;
        let r = run_gpu_dpso(&inst, &small_params(iters)).unwrap();
        // 4 init launches + 5 per generation.
        assert_eq!(r.kernel_launches as u64, 4 + 5 * iters);
        assert!(r.profiler_summary.contains("dpso_update"));
        assert!(r.profiler_summary.contains("gbest_copy"));
    }

    #[test]
    fn telemetry_traces_pbest_and_diversity_without_perturbing_the_swarm() {
        let inst = Instance::paper_example_cdd();
        let base = run_gpu_dpso(&inst, &small_params(30)).unwrap();
        let p = GpuDpsoParams { telemetry: TelemetryConfig::every(3), ..small_params(30) };
        let r = run_gpu_dpso(&inst, &p).unwrap();
        assert_eq!(r.best, base.best);
        assert_eq!(r.objective, base.objective);
        assert_eq!(r.modeled_seconds, base.modeled_seconds);
        let trace = r.convergence.expect("telemetry was on");
        assert_eq!(trace.algorithm, "dpso");
        assert_eq!(trace.samples.len(), 10, "gens 0, 3, …, 27");
        let curve = trace.ensemble_best_curve();
        assert!(curve.windows(2).all(|w| w[1].1 <= w[0].1), "swarm best never worsens");
        // Diversity (Hamming to gbest) is within range and not all-zero at
        // the start of a heuristically spread swarm.
        let first = &trace.samples[0];
        assert!(first.aux.iter().all(|&d| (0..=inst.n() as i64).contains(&d)));
        assert!(first.aux.iter().any(|&d| d > 0));
    }

    #[test]
    fn gbest_improves_monotonically_via_longer_runs() {
        let inst = Instance::paper_example_ucddcp();
        let short = run_gpu_dpso(&inst, &small_params(5)).unwrap();
        let long = run_gpu_dpso(&inst, &small_params(120)).unwrap();
        assert!(long.objective <= short.objective);
    }

    #[test]
    fn survives_fault_injection_with_oracle_verified_result() {
        let inst = Instance::paper_example_cdd();
        let p = GpuDpsoParams {
            fault: Some(cuda_sim::FaultPlan::with_rates(13, 0.05, 0.01, 0.02)),
            ..small_params(100)
        };
        let r = run_gpu_dpso(&inst, &p).unwrap();
        let eval = cdd_core::eval::evaluator_for(&inst);
        assert_eq!(eval.evaluate(r.best.as_slice()), r.objective, "oracle must confirm");
        assert!(r.best.is_valid_permutation());
        assert!(r.recovery.faults.bit_flips > 0);
    }

    #[test]
    fn degrades_to_cpu_dpso_when_device_unusable() {
        let inst = Instance::paper_example_cdd();
        let p = GpuDpsoParams {
            fault: Some(cuda_sim::FaultPlan::with_rates(2, 1.0, 0.0, 0.0)),
            ..small_params(50)
        };
        let r = run_gpu_dpso(&inst, &p).unwrap();
        assert!(r.recovery.cpu_fallback);
        assert!(r.profiler_summary.contains("cpu-fallback"));
        let eval = cdd_core::eval::evaluator_for(&inst);
        assert_eq!(eval.evaluate(r.best.as_slice()), r.objective);
    }
}
