//! Ensemble initialization strategies.
//!
//! The paper leaves the initial configurations open ("the initial
//! configuration for the algorithm can be the same or different for all
//! chains"). A uniformly random permutation is hopeless as a start for the
//! published budgets — 1000 window shuffles cannot sort hundreds of jobs —
//! so the default strategy seeds every chain/particle with the V-shaped
//! constructive heuristic of `cdd-core`, diversified per thread by random
//! position shuffles of growing width. Thread 0 keeps the pure heuristic.

use cdd_core::heuristics::v_shaped_sequence;
use cdd_core::{Instance, JobSequence};
use cdd_meta::perturb::shuffle_random_positions;
use rand::rngs::StdRng;
use rand::Rng;

/// How the starting ensemble is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Every thread starts from an independent uniformly random permutation
    /// (useful for ablations; the paper-budget quality collapses on large
    /// instances).
    Random,
    /// Every thread starts from the V-shaped constructive heuristic,
    /// perturbed per thread for diversity (default).
    #[default]
    VShapedSpread,
}

/// Build the flattened row-major initial ensemble (`ensemble × n` job ids).
pub fn initial_ensemble(
    inst: &Instance,
    ensemble: usize,
    strategy: InitStrategy,
    rng: &mut StdRng,
) -> Vec<u32> {
    let n = inst.n();
    let mut flat = Vec::with_capacity(ensemble * n);
    match strategy {
        InitStrategy::Random => {
            for _ in 0..ensemble {
                flat.extend_from_slice(JobSequence::random(n, rng).as_slice());
            }
        }
        InitStrategy::VShapedSpread => {
            let base = v_shaped_sequence(inst);
            for t in 0..ensemble {
                let mut s = base.clone();
                if t > 0 {
                    // Diversification width grows with the thread index:
                    // near-heuristic chains exploit, far ones explore.
                    let max_width = (n / 2).max(2);
                    let width = 2 + (t - 1) % max_width;
                    shuffle_random_positions(&mut s, width, rng);
                    // A few extra random swaps decorrelate equal widths.
                    for _ in 0..rng.gen_range(0..3) {
                        let a = rng.gen_range(0..n);
                        let b = rng.gen_range(0..n);
                        s.swap(a, b);
                    }
                }
                flat.extend_from_slice(s.as_slice());
            }
        }
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::eval::evaluator_for;
    use rand::SeedableRng;

    fn rows(flat: &[u32], n: usize) -> Vec<JobSequence> {
        flat.chunks(n).map(|c| JobSequence::from_vec(c.to_vec()).unwrap()).collect()
    }

    #[test]
    fn all_rows_are_permutations() {
        let inst = cdd_instances_sample();
        let mut rng = StdRng::seed_from_u64(3);
        for strategy in [InitStrategy::Random, InitStrategy::VShapedSpread] {
            let flat = initial_ensemble(&inst, 32, strategy, &mut rng);
            assert_eq!(flat.len(), 32 * inst.n());
            for row in rows(&flat, inst.n()) {
                assert!(row.is_valid_permutation());
            }
        }
    }

    #[test]
    fn thread_zero_keeps_the_pure_heuristic() {
        let inst = cdd_instances_sample();
        let mut rng = StdRng::seed_from_u64(4);
        let flat = initial_ensemble(&inst, 8, InitStrategy::VShapedSpread, &mut rng);
        let base = v_shaped_sequence(&inst);
        assert_eq!(&flat[..inst.n()], base.as_slice());
    }

    #[test]
    fn spread_is_diverse_but_better_than_random() {
        let inst = cdd_instances_sample();
        let eval = evaluator_for(&inst);
        let mut rng = StdRng::seed_from_u64(5);
        let spread = initial_ensemble(&inst, 64, InitStrategy::VShapedSpread, &mut rng);
        let random = initial_ensemble(&inst, 64, InitStrategy::Random, &mut rng);
        let n = inst.n();
        let avg = |flat: &[u32]| {
            rows(flat, n).iter().map(|r| eval.evaluate(r.as_slice()) as f64).sum::<f64>() / 64.0
        };
        assert!(avg(&spread) < avg(&random), "heuristic spread not better than random");
        // And it is not 64 copies of one sequence.
        let distinct: std::collections::HashSet<&[u32]> = spread.chunks(n).collect();
        assert!(distinct.len() > 32, "only {} distinct starts", distinct.len());
    }

    fn cdd_instances_sample() -> Instance {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(77);
        let p: Vec<i64> = (0..60).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..60).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..60).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.6) as i64;
        Instance::cdd_from_arrays(&p, &a, &b, d).unwrap()
    }
}
