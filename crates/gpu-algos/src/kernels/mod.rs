//! The device kernels of the paper's Fig. 10 pipeline.
//!
//! | kernel | paper section | module |
//! |---|---|---|
//! | fitness | VI-A | [`fitness`] |
//! | perturbation | VI-B | [`perturb`] |
//! | acceptance | VI-C | [`accept`] |
//! | reduction | VI-D | `cuda_sim::reduce` (atomic argmin) |
//! | DPSO position update | VII | [`dpso_update`] |

pub mod accept;
pub mod dpso_update;
pub mod fitness;
pub mod perturb;

pub use accept::{AcceptKernel, SaProbe};
pub use dpso_update::{DpsoProbe, DpsoUpdateKernel, GbestCopyKernel, PbestKernel};
pub use fitness::FitnessKernel;
pub use perturb::PerturbKernel;
