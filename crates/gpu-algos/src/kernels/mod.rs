//! The device kernels of the paper's Fig. 10 pipeline.
//!
//! | kernel | paper section | module |
//! |---|---|---|
//! | fitness | VI-A | [`fitness`] |
//! | delta fitness | VI-A (incremental variant) | [`delta_fitness`] |
//! | perturbation | VI-B | [`perturb`] |
//! | acceptance | VI-C | [`accept`] |
//! | reduction | VI-D | `cuda_sim::reduce` (atomic argmin) |
//! | DPSO position update | VII | [`dpso_update`] |

pub mod accept;
pub mod batch_fitness;
pub mod delta_fitness;
pub mod dpso_update;
pub mod fitness;
pub mod perturb;

pub use accept::{AcceptKernel, SaProbe};
pub use batch_fitness::BatchFitnessKernel;
pub use delta_fitness::{DeltaCacheBufs, DeltaFitnessKernel};
pub use dpso_update::{DpsoProbe, DpsoUpdateKernel, GbestCopyKernel, PbestKernel};
pub use fitness::FitnessKernel;
pub use perturb::PerturbKernel;
