//! Incremental (delta) fitness kernel — the device half of
//! `cdd_core::delta`.
//!
//! Replaces the full O(n) fitness kernel for *candidate* scoring in the SA
//! pipelines: each thread keeps the prefix/suffix cache of its committed
//! sequence resident in global memory and scores the perturbation's changed
//! positions against it (`O(pert·log n)` for CDD, `O(window)` for UCDDCP)
//! instead of re-walking the whole sequence.
//!
//! Cache maintenance is **lazy**. Acceptance marks the thread's sticky
//! dirty flag; a dirty thread scores its candidate directly from a gathered
//! row (no cache traffic), and the O(n) rebuild + writeback runs only at
//! the re-sync cadence. A warp pays the lane-max under lockstep SIMT, so
//! rebuilding eagerly on every accepted lane would stall whole warps every
//! generation. The kernel also stages the processing times (and, for
//! UCDDCP, the compression bounds) in shared memory alongside the rates, so
//! even the dirty path's direct evaluation beats the full kernel: it pays
//! one gathered row of global traffic where the full kernel pays the row
//! *plus* the processing times. Delta scoring from the resident cache —
//! what clean warps run — is cheaper still.
//!
//! Fault story: structurally corrupted move lists and out-of-range move
//! data score the `CORRUPT_ENERGY` sentinel exactly like the full kernel's
//! input validation; bit flips on cache reads produce garbage-but-finite
//! scores (the shared scoring core is overflow-proof) clamped into
//! `[0, CORRUPT_ENERGY]`, and the re-sync cadence plus the dirty-flag
//! rebuild self-heal the cache. Clean runs skip all validation, so the
//! *outcome set* is bit-identical to the full-evaluation path (the modeled
//! time is what changes — that is the point).

use crate::kernels::fitness::{CORRUPT_ENERGY, VALUE_CAP};
use crate::layout::ProblemDevice;
use cdd_core::cdd_optimal::cdd_objective_raw;
use cdd_core::delta::{
    delta_objective, moves_structurally_valid, DeltaMove, DeltaSource, DeltaState, DeltaWorkspace,
};
use cdd_core::ucddcp_optimal::ucddcp_objective_raw;
use cdd_core::ProblemKind;
use cuda_sim::{Buf, DeviceCtx, ExecBackend, Kernel, ScratchArena};
use std::sync::atomic::{AtomicU64, Ordering};

/// Device-resident per-thread delta cache: row-major slabs, one row per
/// chain. `c` rows have length `n`; the six sum tables have `n + 1` (the
/// empty prefix/suffix is addressable). Living in (simulated) global memory
/// keeps the cache inside the fault-injection and race-detection domain.
#[derive(Debug, Clone, Copy)]
pub struct DeltaCacheBufs {
    /// Packed completion times (`ensemble × n`).
    pub c: Buf<i64>,
    /// Prefix α sums (`ensemble × (n+1)`).
    pub a_pref: Buf<i64>,
    /// Suffix β sums (`ensemble × (n+1)`).
    pub b_suff: Buf<i64>,
    /// Weighted prefix α·C sums (`ensemble × (n+1)`).
    pub wa_pref: Buf<i64>,
    /// Weighted suffix β·C sums (`ensemble × (n+1)`).
    pub wb_suff: Buf<i64>,
    /// Tardy-side compression-gain suffix sums (`ensemble × (n+1)`).
    pub gt_suff: Buf<i64>,
    /// Early-side compression-gain prefix sums (`ensemble × (n+1)`).
    pub ge_pref: Buf<i64>,
}

impl DeltaCacheBufs {
    /// Allocate the cache slabs for `ensemble` chains of `n` jobs.
    pub fn alloc<B: ExecBackend>(gpu: &mut B, ensemble: usize, n: usize) -> Self {
        DeltaCacheBufs {
            c: gpu.alloc::<i64>(ensemble * n),
            a_pref: gpu.alloc::<i64>(ensemble * (n + 1)),
            b_suff: gpu.alloc::<i64>(ensemble * (n + 1)),
            wa_pref: gpu.alloc::<i64>(ensemble * (n + 1)),
            wb_suff: gpu.alloc::<i64>(ensemble * (n + 1)),
            gt_suff: gpu.alloc::<i64>(ensemble * (n + 1)),
            ge_pref: gpu.alloc::<i64>(ensemble * (n + 1)),
        }
    }
}

/// Problem arrays staged in (simulated) shared memory, one slot per block.
/// The full fitness kernel stages only the penalty rates (the paper's
/// design); the delta kernel additionally stages the processing times — and,
/// for UCDDCP, the compression bounds — because it touches them sparsely by
/// job id, where per-access global transactions would dominate. The whole
/// footprint is `3n·8` bytes for CDD and `5n·8` for UCDDCP, still far under
/// the 48 KiB shared-memory budget for any realistic `n`.
#[derive(Default)]
struct StagedDeltaRates {
    p: Vec<i64>,
    m: Vec<i64>,
    alpha: Vec<i64>,
    beta: Vec<i64>,
    gamma: Vec<i64>,
}

/// Per-thread local memory for the delta kernel.
#[derive(Default)]
struct DeltaScratch {
    moves: Vec<DeltaMove>,
    ws: DeltaWorkspace,
    row: Vec<u32>,
    state: DeltaState,
    marks: Vec<bool>,
}

/// [`DeltaSource`] over the device buffers: cache-table and sequence
/// accesses are charged global reads; processing-time, compression-bound,
/// and penalty-rate accesses come from the block's staged shared copy (a
/// charged shared access); every pure-arithmetic tick is a charged ALU op.
/// The modeled cost of delta scoring is therefore exactly its memory/ALU
/// footprint.
struct GpuDeltaSource<'a, 'b, C: DeviceCtx> {
    ctx: &'a mut C,
    prob: &'b ProblemDevice,
    cache: &'b DeltaCacheBufs,
    rates: &'b StagedDeltaRates,
    seqs: Buf<u32>,
    gid: usize,
    /// Fault injection active: job ids read back from the (corruptible)
    /// committed row are clamped into range before they become indices.
    fault: bool,
}

impl<C: DeviceCtx> GpuDeltaSource<'_, '_, C> {
    #[inline]
    fn table(&mut self, buf: Buf<i64>, k: usize) -> i64 {
        let w = self.prob.n + 1;
        self.ctx.read(buf, self.gid * w + k)
    }

    /// A job id sourced from a device read can be a flipped bit pattern
    /// under fault injection; clamping keeps it a valid (garbage) index, and
    /// the final `[0, CORRUPT_ENERGY]` clamp bounds the resulting score.
    #[inline]
    fn job(&self, job: usize) -> usize {
        if self.fault { job.min(self.prob.n - 1) } else { job }
    }
}

impl<C: DeviceCtx> DeltaSource for GpuDeltaSource<'_, '_, C> {
    fn n(&self) -> usize {
        self.prob.n
    }
    fn d(&self) -> i64 {
        self.prob.d
    }
    fn kind(&self) -> ProblemKind {
        self.prob.kind
    }
    fn p(&mut self, job: usize) -> i64 {
        let j = self.job(job);
        self.ctx.charge_shared(1);
        self.rates.p[j]
    }
    fn alpha(&mut self, job: usize) -> i64 {
        let j = self.job(job);
        self.ctx.charge_shared(1);
        self.rates.alpha[j]
    }
    fn beta(&mut self, job: usize) -> i64 {
        let j = self.job(job);
        self.ctx.charge_shared(1);
        self.rates.beta[j]
    }
    fn gamma(&mut self, job: usize) -> i64 {
        let j = self.job(job);
        self.ctx.charge_shared(1);
        self.rates.gamma[j]
    }
    fn slack(&mut self, job: usize) -> i64 {
        let j = self.job(job);
        self.ctx.charge_shared(2);
        self.rates.p[j] - self.rates.m[j]
    }
    fn seq(&mut self, k: usize) -> u32 {
        self.ctx.read(self.seqs, self.gid * self.prob.n + k)
    }
    fn c(&mut self, k: usize) -> i64 {
        self.ctx.read(self.cache.c, self.gid * self.prob.n + k)
    }
    fn a_pref(&mut self, k: usize) -> i64 {
        self.table(self.cache.a_pref, k)
    }
    fn b_suff(&mut self, k: usize) -> i64 {
        self.table(self.cache.b_suff, k)
    }
    fn wa_pref(&mut self, k: usize) -> i64 {
        self.table(self.cache.wa_pref, k)
    }
    fn wb_suff(&mut self, k: usize) -> i64 {
        self.table(self.cache.wb_suff, k)
    }
    fn gt_suff(&mut self, k: usize) -> i64 {
        self.table(self.cache.gt_suff, k)
    }
    fn ge_pref(&mut self, k: usize) -> i64 {
        self.table(self.cache.ge_pref, k)
    }
    fn tick(&mut self, alu: u64) {
        self.ctx.charge_alu(alu);
    }
}

/// Scores each thread's candidate against its committed sequence — from the
/// resident delta cache when the cache is still valid, directly from a
/// gathered row (full-kernel charges) when the acceptance/broadcast kernels
/// marked the row changed. Stale caches are rebuilt at the re-sync cadence.
pub struct DeltaFitnessKernel {
    /// Uploaded problem data.
    pub prob: ProblemDevice,
    /// Committed sequences (row-major).
    pub current: Buf<u32>,
    /// Candidate sequences from the perturbation kernel.
    pub candidate: Buf<u32>,
    /// Perturbed positions per thread (`ensemble × pert`), recorded by the
    /// perturbation kernel — the move descriptor.
    pub moves: Buf<u32>,
    /// Per-thread sticky dirty flags (non-zero ⇒ the committed row diverged
    /// from the cache; cleared when the cache is rebuilt).
    pub flags: Buf<u32>,
    /// Output candidate energies.
    pub out: Buf<i64>,
    /// The resident cache slabs.
    pub cache: DeltaCacheBufs,
    /// Live threads.
    pub ensemble: usize,
    /// Positions recorded per thread (the effective perturbation size).
    pub pert: usize,
    /// Re-sync cadence: generations `g` with `g % resync_every == 0` (plus
    /// generation 0) rebuild stale caches — and, under fault injection,
    /// every cache, bounding how long corrupted state survives. 0 limits
    /// re-sync to generation 0.
    pub resync_every: u64,
    /// Current generation, set by the pipeline before each launch
    /// ([`DeltaFitnessKernel::set_generation`]).
    gen: AtomicU64,
    /// Per-block staged shared memory, indexed by block id.
    staged: ScratchArena<StagedDeltaRates>,
    scratch: ScratchArena<DeltaScratch>,
}

impl DeltaFitnessKernel {
    /// Build the kernel for launches of up to `blocks` blocks, scoring
    /// `ensemble` live threads.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        prob: ProblemDevice,
        current: Buf<u32>,
        candidate: Buf<u32>,
        moves: Buf<u32>,
        flags: Buf<u32>,
        out: Buf<i64>,
        cache: DeltaCacheBufs,
        ensemble: usize,
        blocks: usize,
        pert: usize,
        resync_every: u64,
    ) -> Self {
        DeltaFitnessKernel {
            prob,
            current,
            candidate,
            moves,
            flags,
            out,
            cache,
            ensemble,
            pert,
            resync_every,
            gen: AtomicU64::new(0),
            staged: ScratchArena::new(blocks),
            scratch: ScratchArena::new(ensemble),
        }
    }

    /// Tell the kernel which generation the next launch scores (drives the
    /// forced re-sync cadence). Retried launches of the same generation see
    /// the same value.
    pub fn set_generation(&self, gen: u64) {
        self.gen.store(gen, Ordering::Relaxed);
    }

    /// Full-input validation for the rebuild path (fault injection only) —
    /// the same checks as the full fitness kernel's `inputs_valid`, applied
    /// to the gathered committed row and the staged problem arrays.
    fn rebuild_inputs_valid(&self, s: &mut DeltaScratch, staged: &StagedDeltaRates) -> bool {
        let n = self.prob.n;
        s.marks.clear();
        s.marks.resize(n, false);
        for &j in &s.row {
            let j = j as usize;
            if j >= n || s.marks[j] {
                return false;
            }
            s.marks[j] = true;
        }
        let rates_ok = |v: &[i64]| v.iter().all(|&x| (0..=VALUE_CAP).contains(&x));
        if !staged.p.iter().all(|&x| (1..=VALUE_CAP).contains(&x))
            || !rates_ok(&staged.alpha)
            || !rates_ok(&staged.beta)
        {
            return false;
        }
        if self.prob.kind == ProblemKind::Ucddcp {
            if !rates_ok(&staged.gamma)
                || !staged.m.iter().zip(&staged.p).all(|(&m, &p)| (0..=p).contains(&m))
            {
                return false;
            }
            if staged.p.iter().sum::<i64>() > self.prob.d {
                return false;
            }
        }
        true
    }
}

impl Kernel for DeltaFitnessKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "delta_fitness"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn shared_mem_bytes(&self, _block_dim: usize) -> usize {
        let arrays = if self.prob.kind == ProblemKind::Ucddcp { 5 } else { 3 };
        arrays * self.prob.n * std::mem::size_of::<i64>()
    }

    fn num_phases(&self) -> usize {
        2
    }

    fn phase<C: DeviceCtx>(&self, phase: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let n = self.prob.n;
        if phase == 0 {
            // Cooperative staging, same shape as the full fitness kernel's
            // phase 0 but wider: rates *and* processing times (the delta
            // path indexes p by job id, not sequentially, so a shared copy
            // turns scattered global transactions into shared accesses).
            if ctx.thread_idx() == 0 {
                self.staged.with_slot(ctx.block_idx(), |shared| {
                    shared.p.resize(n, 0);
                    ctx.cooperative_read(self.prob.p, 0, &mut shared.p);
                    shared.alpha.resize(n, 0);
                    ctx.cooperative_read(self.prob.alpha, 0, &mut shared.alpha);
                    shared.beta.resize(n, 0);
                    ctx.cooperative_read(self.prob.beta, 0, &mut shared.beta);
                    if self.prob.kind == ProblemKind::Ucddcp {
                        shared.m.resize(n, 0);
                        ctx.cooperative_read(self.prob.m, 0, &mut shared.m);
                        shared.gamma.resize(n, 0);
                        ctx.cooperative_read(self.prob.gamma, 0, &mut shared.gamma);
                    }
                });
            }
            let arrays = if self.prob.kind == ProblemKind::Ucddcp { 5 } else { 3 };
            let share = n.div_ceil(ctx.block_dim()) as u64;
            ctx.charge_global(arrays * share);
            ctx.charge_shared(arrays * share);
            return;
        }

        // Phase 1: score (past the barrier, staged rates are visible).
        let gid = ctx.global_id();
        if gid >= self.ensemble {
            return;
        }
        let gen = self.gen.load(Ordering::Relaxed);
        let fault = ctx.fault_injection_active();
        // The sticky dirty flag marks "committed row changed since the last
        // cache rebuild". Rebuilding is *lazy*: a dirty thread scores its
        // candidate directly (full-kernel charges) without touching the
        // cache, and the rebuild + writeback happens only at the re-sync
        // cadence — a warp pays the lane-max, so eagerly rebuilding on every
        // accepted lane would stall whole warps every generation. Under
        // fault injection re-sync generations rebuild unconditionally,
        // healing corrupted cache state within `resync_every` generations.
        let force = gen == 0 || (self.resync_every > 0 && gen.is_multiple_of(self.resync_every));
        let dirty = ctx.read(self.flags, gid) != 0;
        let rebuild = force && (dirty || fault);

        self.staged.with_slot(ctx.block_idx(), |shared| {
        self.scratch.with_slot(gid, |s| {
            // Gather the move descriptor: perturbed positions plus the jobs
            // the committed row and the candidate hold there. Out-of-range
            // positions (a flipped read) are caught *before* they become
            // indices.
            s.moves.clear();
            let mut pos_invalid = false;
            for i in 0..self.pert {
                let pos = ctx.read(self.moves, gid * self.pert + i) as usize;
                ctx.charge_alu(1);
                if pos >= n {
                    pos_invalid = true;
                    continue;
                }
                let old_job = ctx.read(self.current, gid * n + pos);
                let new_job = ctx.read(self.candidate, gid * n + pos);
                if old_job != new_job {
                    s.moves.push(DeltaMove { pos: pos as u32, old_job, new_job });
                }
            }
            s.moves.sort_unstable_by_key(|mv| mv.pos);
            ctx.charge_alu(4 * self.pert as u64); // sort + dedup pass

            // Fault validation: a corrupted descriptor (or corrupted job
            // reads) scores the sentinel, exactly like the full kernel's
            // input validation. Clean runs skip this entirely.
            if ctx.fault_injection_active() {
                let mut valid = !pos_invalid && moves_structurally_valid(n, &s.moves);
                if valid {
                    // The per-move job data must be in the trusted range
                    // (the full kernel checks the whole arrays; the delta
                    // path only touches these). Jobs are in range here —
                    // `moves_structurally_valid` just checked them.
                    for mv in &s.moves {
                        let j = mv.new_job as usize;
                        ctx.charge_shared(3);
                        let p = shared.p[j];
                        let a = shared.alpha[j];
                        let b = shared.beta[j];
                        if !(1..=VALUE_CAP).contains(&p)
                            || !(0..=VALUE_CAP).contains(&a)
                            || !(0..=VALUE_CAP).contains(&b)
                        {
                            valid = false;
                            break;
                        }
                    }
                }
                ctx.charge_alu(8 * self.pert as u64);
                if !valid {
                    ctx.write(self.out, gid, CORRUPT_ENERGY);
                    return;
                }
            }

            if dirty || rebuild {
                // The cache row is (or may be) stale: gather the committed
                // row from global memory. Everything else the direct
                // evaluation needs is already staged in shared memory, so
                // this path pays *half* the full kernel's global traffic
                // (one row, not row + processing times).
                s.row.resize(n, 0);
                ctx.read_slice_into(self.current, gid * n, &mut s.row);
                if fault && !self.rebuild_inputs_valid(s, shared) {
                    ctx.charge_alu(4 * n as u64);
                    ctx.write(self.out, gid, CORRUPT_ENERGY);
                    return;
                }

                if rebuild {
                    // Re-sync generation: rebuild the prefix/suffix tables
                    // from the gathered row and the staged arrays, persist
                    // them, and clear the sticky flag.
                    let arrays: u64 = if self.prob.kind == ProblemKind::Ucddcp { 5 } else { 3 };
                    ctx.charge_shared(arrays * n as u64);
                    s.state.rebuild(
                        self.prob.kind,
                        &shared.p,
                        if self.prob.kind == ProblemKind::Ucddcp { &shared.m } else { &shared.p },
                        &shared.alpha,
                        &shared.beta,
                        &shared.gamma,
                        &s.row,
                    );
                    ctx.charge_alu(8 * n as u64);
                    ctx.write_slice(self.cache.c, gid * n, &s.state.c);
                    let w = n + 1;
                    ctx.write_slice(self.cache.a_pref, gid * w, &s.state.a_pref);
                    ctx.write_slice(self.cache.b_suff, gid * w, &s.state.b_suff);
                    ctx.write_slice(self.cache.wa_pref, gid * w, &s.state.wa_pref);
                    ctx.write_slice(self.cache.wb_suff, gid * w, &s.state.wb_suff);
                    if self.prob.kind == ProblemKind::Ucddcp {
                        ctx.write_slice(self.cache.gt_suff, gid * w, &s.state.gt_suff);
                        ctx.write_slice(self.cache.ge_pref, gid * w, &s.state.ge_pref);
                    }
                    ctx.write(self.flags, gid, 0);
                }

                // Score the candidate (the row with the moved positions
                // substituted) directly: the row is in registers, the
                // problem arrays are in shared memory. Delta scoring from
                // the resident cache — the clean path below — is cheaper
                // still.
                for mv in &s.moves {
                    s.row[mv.pos as usize] = mv.new_job;
                }
                ctx.charge_alu(s.moves.len() as u64);
                let d = self.prob.d;
                let objective = match self.prob.kind {
                    ProblemKind::Cdd => {
                        ctx.charge_shared(3 * n as u64);
                        ctx.charge_alu(8 * n as u64);
                        cdd_objective_raw(&shared.p, &shared.alpha, &shared.beta, d, &s.row)
                    }
                    ProblemKind::Ucddcp => {
                        ctx.charge_shared(5 * n as u64);
                        ctx.charge_alu(12 * n as u64);
                        ucddcp_objective_raw(
                            &shared.p,
                            &shared.m,
                            &shared.alpha,
                            &shared.beta,
                            &shared.gamma,
                            d,
                            &s.row,
                        )
                    }
                };
                let objective =
                    if fault { objective.clamp(0, CORRUPT_ENERGY) } else { objective };
                ctx.write(self.out, gid, objective);
                return;
            }

            // Score the candidate from the (still valid) resident cache.
            let mut src = GpuDeltaSource {
                ctx: &mut *ctx,
                prob: &self.prob,
                cache: &self.cache,
                rates: shared,
                seqs: self.current,
                gid,
                fault,
            };
            let objective = delta_objective(&mut src, &s.moves, &mut s.ws);
            let objective = if fault { objective.clamp(0, CORRUPT_ENERGY) } else { objective };
            ctx.write(self.out, gid, objective);
        });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::FitnessKernel;
    use cdd_core::eval::evaluator_for;
    use cdd_core::{Instance, JobSequence};
    use cuda_sim::{DeviceSpec, Gpu, LaunchConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Drive the kernel directly: commit rows, perturb on the host (so the
    /// moves are known), and compare against the full fitness kernel.
    fn check_against_full(inst: &Instance, threads: usize, gens: usize) {
        let n = inst.n();
        let pert = 4.min(n);
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let prob = ProblemDevice::upload(&mut gpu, inst).unwrap();
        let mut rng = StdRng::seed_from_u64(9);

        let mut rows: Vec<Vec<u32>> =
            (0..threads).map(|_| JobSequence::random(n, &mut rng).as_slice().to_vec()).collect();
        let current = gpu.alloc::<u32>(threads * n);
        let candidate = gpu.alloc::<u32>(threads * n);
        let moves = gpu.alloc::<u32>(threads * pert);
        let flags = gpu.alloc::<u32>(threads);
        gpu.h2d(flags, &vec![1u32; threads]);
        let out = gpu.alloc::<i64>(threads);
        let out_full = gpu.alloc::<i64>(threads);
        let cache = DeltaCacheBufs::alloc(&mut gpu, threads, n);
        let blocks = threads.div_ceil(32);
        let kernel = DeltaFitnessKernel::new(
            prob, current, candidate, moves, flags, out, cache, threads, blocks, pert, 16,
        );
        let full = FitnessKernel::new(prob, candidate, out_full, threads, blocks);
        let eval = evaluator_for(inst);

        for gen in 0..gens {
            // Host-side perturbation: pick `pert` distinct positions, shuffle.
            let mut cand_rows = rows.clone();
            let mut mv_flat = Vec::new();
            for row in cand_rows.iter_mut() {
                let mut positions: Vec<u32> = Vec::new();
                while positions.len() < pert {
                    let c = rng.gen_range(0..n as u32);
                    if !positions.contains(&c) {
                        positions.push(c);
                    }
                }
                for i in (1..pert).rev() {
                    let j = rng.gen_range(0..=i);
                    row.swap(positions[i] as usize, positions[j] as usize);
                }
                mv_flat.extend_from_slice(&positions);
            }
            let cur_flat: Vec<u32> = rows.iter().flatten().copied().collect();
            let cand_flat: Vec<u32> = cand_rows.iter().flatten().copied().collect();
            gpu.h2d(current, &cur_flat);
            gpu.h2d(candidate, &cand_flat);
            gpu.h2d(moves, &mv_flat);

            kernel.set_generation(gen as u64);
            gpu.launch(&kernel, LaunchConfig::cover(threads, 32), &[]).unwrap();
            gpu.launch(&full, LaunchConfig::cover(threads, 32), &[]).unwrap();
            let delta_e = gpu.d2h(out);
            let full_e = gpu.d2h(out_full);
            let mut accept_flags = vec![0u32; threads];
            for t in 0..threads {
                assert_eq!(delta_e[t], full_e[t], "gen {gen} thread {t}: delta != full kernel");
                assert_eq!(
                    delta_e[t],
                    eval.evaluate(&cand_rows[t]),
                    "gen {gen} thread {t}: delta != CPU oracle"
                );
                // Accept every other thread's candidate (exercises both the
                // dirty-rebuild and the clean-cache path next generation).
                if t % 2 == 0 {
                    rows[t] = cand_rows[t].clone();
                    accept_flags[t] = 1;
                }
            }
            gpu.h2d(flags, &accept_flags);
        }
    }

    #[test]
    fn cdd_delta_kernel_matches_full_kernel_across_generations() {
        check_against_full(&Instance::paper_example_cdd(), 16, 6);
    }

    #[test]
    fn ucddcp_delta_kernel_matches_full_kernel_across_generations() {
        check_against_full(&Instance::paper_example_ucddcp(), 16, 6);
    }

    #[test]
    fn larger_instance_matches_and_is_cheaper_in_steady_state() {
        let mut rng = StdRng::seed_from_u64(123);
        let p: Vec<i64> = (0..40).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..40).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..40).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.6) as i64;
        let inst = Instance::cdd_from_arrays(&p, &a, &b, d).unwrap();
        check_against_full(&inst, 8, 5);
    }
}
