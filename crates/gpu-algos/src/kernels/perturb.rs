//! The perturbation kernel (paper Section VI-B).
//!
//! Each thread derives a candidate sequence from its parent: `Pert` jobs at
//! randomly selected positions are reshuffled with the Fisher–Yates
//! algorithm while "retaining the position of other jobs in the sequence".
//! Randomness comes from the thread's device-resident XORWOW stream (the
//! cuRAND analogue).

use cuda_sim::{Buf, DeviceCtx, Kernel, ScratchArena};

/// Derives `dst[row] = perturb(src[row])` per thread.
///
/// Built once per pipeline run ([`PerturbKernel::new`]); each thread's
/// working vectors persist in a scratch arena across launches, so
/// steady-state generations allocate nothing.
pub struct PerturbKernel {
    /// Parent sequences (row-major, `n` per thread).
    pub src: Buf<u32>,
    /// Candidate sequences (written).
    pub dst: Buf<u32>,
    /// XORWOW states (3 words per thread).
    pub rng: Buf<u64>,
    /// Jobs per sequence.
    pub n: usize,
    /// Live threads.
    pub ensemble: usize,
    /// Perturbation size `Pert` (paper: 4).
    pub pert: usize,
    /// Optional move-descriptor output for the delta-fitness path: the
    /// `pert.min(n)` selected positions per thread (`ensemble × pert`
    /// row-major). `None` keeps the kernel's writes — and therefore its
    /// modeled cost — bit-identical to the full-evaluation path.
    pub moves: Option<Buf<u32>>,
    /// Per-thread local memory, indexed by global thread id.
    scratch: ScratchArena<PerturbScratch>,
}

/// Per-thread local memory.
#[derive(Default)]
pub struct PerturbScratch {
    row: Vec<u32>,
    positions: Vec<u32>,
}

impl PerturbKernel {
    /// Build the kernel for `ensemble` live threads.
    pub fn new(
        src: Buf<u32>,
        dst: Buf<u32>,
        rng: Buf<u64>,
        n: usize,
        ensemble: usize,
        pert: usize,
    ) -> Self {
        // Job ids travel through u32 buffers and the u32 RNG bound below;
        // checking once here makes every `n as u32` in the hot path exact.
        assert!(u32::try_from(n).is_ok(), "sequence length {n} exceeds the u32 job-id domain");
        PerturbKernel {
            src,
            dst,
            rng,
            n,
            ensemble,
            pert,
            moves: None,
            scratch: ScratchArena::new(ensemble),
        }
    }
}

impl Kernel for PerturbKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "perturbation"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _phase: usize, ctx: &mut C, _shared: &mut (), _state: &mut ()) {
        let gid = ctx.global_id();
        if gid >= self.ensemble {
            return;
        }
        let n = self.n;
        let mut rng = ctx.load_rng(self.rng, gid);

        self.scratch.with_slot(gid, |scratch| {
            scratch.row.resize(n, 0);
            ctx.read_slice_into(self.src, gid * n, &mut scratch.row);

            let pert = self.pert.min(n);
            if pert >= 2 {
                // Select `pert` distinct positions (rejection sampling —
                // cheap for the paper's Pert = 4, exact for any pert ≤ n).
                scratch.positions.clear();
                while scratch.positions.len() < pert {
                    // `n as u32` is exact: `new` rejects n > u32::MAX.
                    let c = rng.next_below(n as u32);
                    if !scratch.positions.contains(&c) {
                        scratch.positions.push(c);
                    }
                    ctx.charge_alu(2);
                }
                // Fisher–Yates over the jobs at the selected positions.
                for i in (1..pert).rev() {
                    let j = rng.next_below(i as u32 + 1) as usize;
                    scratch.row.swap(scratch.positions[i] as usize, scratch.positions[j] as usize);
                    ctx.charge_alu(4);
                }
                if let Some(moves) = self.moves {
                    ctx.write_slice(moves, gid * pert, &scratch.positions);
                }
            }

            ctx.write_slice(self.dst, gid * n, &scratch.row);
        });
        ctx.store_rng(self.rng, gid, &rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::JobSequence;
    use cuda_sim::{DeviceSpec, Gpu, LaunchConfig, XorWow};

    fn setup(threads: usize, n: usize) -> (Gpu, Buf<u32>, Buf<u32>, Buf<u64>) {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let src = gpu.alloc::<u32>(threads * n);
        let flat: Vec<u32> = (0..threads).flat_map(|_| 0..n as u32).collect();
        gpu.h2d(src, &flat);
        let dst = gpu.alloc::<u32>(threads * n);
        let rng = gpu.alloc::<u64>(threads * 3);
        let words: Vec<u64> =
            (0..threads).flat_map(|t| XorWow::new(7, t as u64).pack()).collect();
        gpu.h2d(rng, &words);
        (gpu, src, dst, rng)
    }

    #[test]
    fn candidates_are_permutations_with_bounded_displacement() {
        let (mut gpu, src, dst, rng) = setup(32, 20);
        let kernel = PerturbKernel::new(src, dst, rng, 20, 32, 4);
        gpu.launch(&kernel, LaunchConfig::linear(1, 32), &[]).unwrap();
        let out = gpu.d2h(dst);
        for t in 0..32 {
            let row: Vec<u32> = out[t * 20..(t + 1) * 20].to_vec();
            let seq = JobSequence::from_vec(row.clone()).unwrap();
            assert!(seq.is_valid_permutation());
            let moved = row.iter().enumerate().filter(|(i, &j)| *i != j as usize).count();
            assert!(moved <= 4, "thread {t} moved {moved} positions");
        }
    }

    #[test]
    fn parent_rows_are_untouched() {
        let (mut gpu, src, dst, rng) = setup(8, 10);
        let before = gpu.peek(src);
        let kernel = PerturbKernel::new(src, dst, rng, 10, 8, 4);
        gpu.launch(&kernel, LaunchConfig::linear(1, 8), &[]).unwrap();
        assert_eq!(gpu.peek(src), before);
    }

    #[test]
    fn threads_perturb_differently() {
        let (mut gpu, src, dst, rng) = setup(16, 30);
        let kernel = PerturbKernel::new(src, dst, rng, 30, 16, 4);
        gpu.launch(&kernel, LaunchConfig::linear(1, 16), &[]).unwrap();
        let out = gpu.d2h(dst);
        let rows: std::collections::HashSet<Vec<u32>> =
            (0..16).map(|t| out[t * 30..(t + 1) * 30].to_vec()).collect();
        // Distinct XORWOW streams → overwhelmingly distinct candidates.
        assert!(rows.len() >= 12, "only {} distinct candidates", rows.len());
    }

    #[test]
    fn successive_launches_advance_the_stream() {
        let (mut gpu, src, dst, rng) = setup(4, 12);
        let kernel = PerturbKernel::new(src, dst, rng, 12, 4, 4);
        gpu.launch(&kernel, LaunchConfig::linear(1, 4), &[]).unwrap();
        let first = gpu.d2h(dst);
        gpu.launch(&kernel, LaunchConfig::linear(1, 4), &[]).unwrap();
        let second = gpu.d2h(dst);
        assert_ne!(first, second, "RNG state failed to persist across launches");
    }

    #[test]
    fn tiny_sequences_pass_through() {
        let (mut gpu, src, dst, rng) = setup(2, 1);
        let kernel = PerturbKernel::new(src, dst, rng, 1, 2, 4);
        gpu.launch(&kernel, LaunchConfig::linear(1, 2), &[]).unwrap();
        assert_eq!(gpu.d2h(dst), vec![0, 0]);
    }
}
