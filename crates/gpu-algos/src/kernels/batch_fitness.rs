//! Fused-launch fitness kernel: one grid evaluates several *requests* at
//! once, each with its own uploaded problem instance.
//!
//! Cross-request batching amortizes the per-launch overhead that dominates
//! small-`n` service traffic (a fused generation costs one launch instead of
//! one per request). Each request owns a contiguous block segment —
//! `blocks_per_req` blocks, `ensemble_per_req` threads — and every block
//! stages *its own request's* rates, so a thread's evaluation is
//! bit-identical to the single-request [`FitnessKernel`]: same staged
//! arrays, same raw objective call, same validation, same clamp. Only the
//! launch accounting changes.
//!
//! Fusion requires all requests to share the problem kind and job count
//! (enforced at construction); due dates and every per-job array may differ
//! freely.

use crate::kernels::fitness::{CORRUPT_ENERGY, VALUE_CAP};
use crate::layout::ProblemDevice;
use cdd_core::cdd_optimal::cdd_objective_raw;
use cdd_core::ucddcp_optimal::ucddcp_objective_raw;
use cdd_core::ProblemKind;
use cuda_sim::{Buf, DeviceCtx, Kernel, ScratchArena};

/// Evaluates one job sequence per thread across a fused multi-request grid.
pub struct BatchFitnessKernel {
    /// Uploaded problems, one per request; request `r` owns blocks
    /// `[r·blocks_per_req, (r+1)·blocks_per_req)`.
    pub probs: Vec<ProblemDevice>,
    /// Sequences, row-major across the whole fused ensemble.
    pub seqs: Buf<u32>,
    /// Output objective per thread.
    pub out: Buf<i64>,
    /// Live threads per request.
    pub ensemble_per_req: usize,
    /// Blocks per request.
    pub blocks_per_req: usize,
    /// Per-block staged shared memory, indexed by block id.
    staged: ScratchArena<StagedBatchRates>,
    /// Per-thread working vectors, indexed by global thread id.
    scratch: ScratchArena<BatchScratch>,
}

/// Penalty rates staged in shared memory (per block, so per request).
#[derive(Default)]
struct StagedBatchRates {
    alpha: Vec<i64>,
    beta: Vec<i64>,
    gamma: Vec<i64>,
}

/// Per-thread registers/local memory.
#[derive(Default)]
struct BatchScratch {
    seq: Vec<u32>,
    p: Vec<i64>,
    m: Vec<i64>,
    marks: Vec<bool>,
}

impl BatchFitnessKernel {
    /// Build the fused kernel. Panics if the requests disagree on problem
    /// kind or job count — callers group compatible requests before fusing.
    pub fn new(
        probs: Vec<ProblemDevice>,
        seqs: Buf<u32>,
        out: Buf<i64>,
        ensemble_per_req: usize,
        blocks_per_req: usize,
    ) -> Self {
        assert!(!probs.is_empty(), "a fused launch needs at least one request");
        let (kind, n) = (probs[0].kind, probs[0].n);
        assert!(
            probs.iter().all(|p| p.kind == kind && p.n == n),
            "fused requests must share problem kind and job count"
        );
        let k = probs.len();
        BatchFitnessKernel {
            probs,
            seqs,
            out,
            ensemble_per_req,
            blocks_per_req,
            staged: ScratchArena::new(k * blocks_per_req),
            scratch: ScratchArena::new(k * ensemble_per_req),
        }
    }

    /// The problem a block belongs to.
    fn prob_of_block(&self, block_idx: usize) -> &ProblemDevice {
        &self.probs[block_idx / self.blocks_per_req]
    }

    /// Same validation as [`crate::kernels::FitnessKernel`], against the
    /// owning request's data. Only consulted under fault injection.
    fn inputs_valid(
        prob: &ProblemDevice,
        shared: &StagedBatchRates,
        scratch: &mut BatchScratch,
        d: i64,
    ) -> bool {
        let n = prob.n;
        scratch.marks.clear();
        scratch.marks.resize(n, false);
        for &j in &scratch.seq {
            let j = j as usize;
            if j >= n || scratch.marks[j] {
                return false;
            }
            scratch.marks[j] = true;
        }
        let rates_ok = |v: &[i64]| v.iter().all(|&x| (0..=VALUE_CAP).contains(&x));
        if !scratch.p.iter().all(|&x| (1..=VALUE_CAP).contains(&x))
            || !rates_ok(&shared.alpha)
            || !rates_ok(&shared.beta)
        {
            return false;
        }
        if prob.kind == ProblemKind::Ucddcp {
            if !rates_ok(&shared.gamma)
                || !scratch.m.iter().zip(&scratch.p).all(|(&m, &p)| (0..=p).contains(&m))
            {
                return false;
            }
            if scratch.p.iter().sum::<i64>() > d {
                return false;
            }
        }
        true
    }
}

impl Kernel for BatchFitnessKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "batch_fitness"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn shared_mem_bytes(&self, _block_dim: usize) -> usize {
        self.probs[0].staged_shared_bytes()
    }

    fn num_phases(&self) -> usize {
        2
    }

    fn phase<C: DeviceCtx>(&self, phase: usize, ctx: &mut C, _shared: &mut (), _state: &mut ()) {
        let prob = self.prob_of_block(ctx.block_idx());
        let n = prob.n;
        if phase == 0 {
            // Cooperative staging of the owning request's rates — identical
            // in shape and charge to the single-request kernel's phase 0.
            if ctx.thread_idx() == 0 {
                self.staged.with_slot(ctx.block_idx(), |shared| {
                    shared.alpha.resize(n, 0);
                    ctx.cooperative_read(prob.alpha, 0, &mut shared.alpha);
                    shared.beta.resize(n, 0);
                    ctx.cooperative_read(prob.beta, 0, &mut shared.beta);
                    if prob.kind == ProblemKind::Ucddcp {
                        shared.gamma.resize(n, 0);
                        ctx.cooperative_read(prob.gamma, 0, &mut shared.gamma);
                    }
                });
            }
            let arrays = if prob.kind == ProblemKind::Ucddcp { 3 } else { 2 };
            let share = n.div_ceil(ctx.block_dim()) as u64;
            ctx.charge_global(arrays * share);
            ctx.charge_shared(arrays * share);
            return;
        }

        // Phase 1: evaluate. `ensemble_per_req` live threads per segment;
        // the grid covers whole segments, so the live-thread guard is
        // segment-local.
        let gid = ctx.global_id();
        let local = gid % (self.blocks_per_req * ctx.block_dim());
        if local >= self.ensemble_per_req {
            return;
        }
        let d = ctx.read_const(prob.scalars, 0);

        self.staged.with_slot(ctx.block_idx(), |shared| {
            self.scratch.with_slot(gid, |scratch| {
                scratch.seq.resize(n, 0);
                ctx.read_slice_into(self.seqs, gid * n, &mut scratch.seq);
                // As in the single-request kernel: the simulator stages the
                // problem arrays (every access charged and fault-filtered),
                // the native backend serves them as zero-copy windows.
                let zero_copy = ctx.global_window_i64(prob.p, 0, n).is_some();
                if !zero_copy {
                    scratch.p.resize(n, 0);
                    ctx.read_slice_into(prob.p, 0, &mut scratch.p);
                    if prob.kind == ProblemKind::Ucddcp {
                        scratch.m.resize(n, 0);
                        ctx.read_slice_into(prob.m, 0, &mut scratch.m);
                    }
                }

                if ctx.fault_injection_active()
                    && !Self::inputs_valid(prob, shared, scratch, d)
                {
                    ctx.charge_alu(4 * n as u64);
                    ctx.write(self.out, gid, CORRUPT_ENERGY);
                    return;
                }

                match prob.kind {
                    ProblemKind::Cdd => {
                        ctx.charge_shared(2 * n as u64);
                        ctx.charge_alu(8 * n as u64);
                    }
                    ProblemKind::Ucddcp => {
                        ctx.charge_shared(3 * n as u64);
                        ctx.charge_alu(12 * n as u64);
                    }
                }
                let objective = {
                    let p = ctx.global_window_i64(prob.p, 0, n).unwrap_or(&scratch.p);
                    match prob.kind {
                        ProblemKind::Cdd => {
                            cdd_objective_raw(p, &shared.alpha, &shared.beta, d, &scratch.seq)
                        }
                        ProblemKind::Ucddcp => {
                            let m = ctx.global_window_i64(prob.m, 0, n).unwrap_or(&scratch.m);
                            ucddcp_objective_raw(
                                p,
                                m,
                                &shared.alpha,
                                &shared.beta,
                                &shared.gamma,
                                d,
                                &scratch.seq,
                            )
                        }
                    }
                };
                let objective = if ctx.fault_injection_active() {
                    objective.clamp(0, CORRUPT_ENERGY)
                } else {
                    objective
                };
                ctx.write(self.out, gid, objective);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::FitnessKernel;
    use cdd_core::eval::evaluator_for;
    use cdd_core::{Instance, JobSequence};
    use cuda_sim::{DeviceSpec, Gpu, LaunchConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize) -> Instance {
        let p: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
        let a: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=10)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=15)).collect();
        let d = (p.iter().sum::<i64>() as f64 * 0.55) as i64;
        Instance::cdd_from_arrays(&p, &a, &b, d).unwrap()
    }

    #[test]
    fn fused_evaluation_matches_solo_kernels_per_request() {
        let n = 12;
        let per_req = 64;
        let blocks = 2;
        let mut rng = StdRng::seed_from_u64(77);
        let insts: Vec<Instance> = (0..3).map(|_| random_instance(&mut rng, n)).collect();

        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let probs: Vec<ProblemDevice> =
            insts.iter().map(|i| ProblemDevice::upload(&mut gpu, i).unwrap()).collect();
        let total = insts.len() * per_req;
        let rows: Vec<JobSequence> =
            (0..total).map(|_| JobSequence::random(n, &mut rng)).collect();
        let flat: Vec<u32> = rows.iter().flat_map(|s| s.as_slice().iter().copied()).collect();
        let seqs = gpu.alloc::<u32>(total * n);
        gpu.h2d(seqs, &flat);
        let out = gpu.alloc::<i64>(total);

        let fused = BatchFitnessKernel::new(probs.clone(), seqs, out, per_req, blocks);
        gpu.launch(&fused, LaunchConfig::linear(insts.len() * blocks, 32), &[]).unwrap();
        let fused_out = gpu.d2h(out);

        // Each thread must agree with its request's CPU evaluator…
        for (r, inst) in insts.iter().enumerate() {
            let eval = evaluator_for(inst);
            for t in 0..per_req {
                assert_eq!(
                    fused_out[r * per_req + t],
                    eval.evaluate(rows[r * per_req + t].as_slice()),
                    "request {r} thread {t}"
                );
            }
        }

        // …and with the single-request kernel run over the same rows.
        for (r, prob) in probs.iter().enumerate() {
            let solo_seqs = gpu.alloc::<u32>(per_req * n);
            gpu.h2d(solo_seqs, &flat[r * per_req * n..(r + 1) * per_req * n]);
            let solo_out = gpu.alloc::<i64>(per_req);
            let solo = FitnessKernel::new(*prob, solo_seqs, solo_out, per_req, blocks);
            gpu.launch(&solo, LaunchConfig::linear(blocks, 32), &[]).unwrap();
            assert_eq!(
                gpu.d2h(solo_out),
                fused_out[r * per_req..(r + 1) * per_req],
                "request {r} fused != solo"
            );
        }
    }

    #[test]
    fn one_fused_launch_is_cheaper_than_k_solo_launches() {
        // The whole point of fusion: k requests pay one launch overhead.
        let n = 10;
        let per_req = 64;
        let blocks = 2;
        let k = 4;
        let mut rng = StdRng::seed_from_u64(3);
        let insts: Vec<Instance> = (0..k).map(|_| random_instance(&mut rng, n)).collect();
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let probs: Vec<ProblemDevice> =
            insts.iter().map(|i| ProblemDevice::upload(&mut gpu, i).unwrap()).collect();
        let total = k * per_req;
        let seqs = gpu.alloc::<u32>(total * n);
        let flat: Vec<u32> = (0..total)
            .flat_map(|_| JobSequence::random(n, &mut rng).as_slice().to_vec())
            .collect();
        gpu.h2d(seqs, &flat);
        let out = gpu.alloc::<i64>(total);

        let fused = BatchFitnessKernel::new(probs.clone(), seqs, out, per_req, blocks);
        let fused_stats =
            gpu.launch(&fused, LaunchConfig::linear(k * blocks, 32), &[]).unwrap();

        let mut solo_total = 0.0;
        for (r, prob) in probs.iter().enumerate() {
            let solo_seqs = gpu.alloc::<u32>(per_req * n);
            gpu.h2d(solo_seqs, &flat[r * per_req * n..(r + 1) * per_req * n]);
            let solo_out = gpu.alloc::<i64>(per_req);
            let solo = FitnessKernel::new(*prob, solo_seqs, solo_out, per_req, blocks);
            solo_total +=
                gpu.launch(&solo, LaunchConfig::linear(blocks, 32), &[]).unwrap().timing.seconds;
        }
        assert!(
            fused_stats.timing.seconds < solo_total,
            "fused ({}) should amortize launch overhead vs {k} solo launches ({solo_total})",
            fused_stats.timing.seconds
        );
    }

    #[test]
    fn rejects_incompatible_requests() {
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let a = ProblemDevice::upload(&mut gpu, &Instance::paper_example_cdd()).unwrap();
        let b = ProblemDevice::upload(&mut gpu, &Instance::paper_example_ucddcp()).unwrap();
        let seqs = gpu.alloc::<u32>(10);
        let out = gpu.alloc::<i64>(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BatchFitnessKernel::new(vec![a, b], seqs, out, 1, 1)
        }));
        assert!(r.is_err(), "mixed kinds must be rejected");
    }
}
