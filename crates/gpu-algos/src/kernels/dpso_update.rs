//! DPSO device kernels (paper Section VII).
//!
//! One particle per thread. The position update implements Eq. (3) of the
//! paper with the permutation operators of Pan et al. (shared with the CPU
//! implementation in `cdd-meta::dpso`): swap velocity `F₁`, one-point
//! crossover `F₂` against the personal best, two-point crossover `F₃`
//! against the swarm best.

use cdd_meta::dpso::{one_point_crossover, two_point_crossover};
use cuda_sim::reduce::unpack_argmin;
use cuda_sim::{Buf, DeviceCtx, Kernel, ScratchArena, TelemetryRing};

/// Telemetry probe handed to the personal-best kernel on sampled runs.
/// Probe access goes through the simulator's instrumentation port, so
/// carrying one changes no result, cost, or fault behaviour (see
/// `cuda_sim::telemetry`).
#[derive(Debug, Clone, Copy)]
pub struct DpsoProbe {
    /// Destination ring.
    pub ring: TelemetryRing,
    /// Ring slot for this generation; `None` still counts personal-best
    /// improvements but records no sample.
    pub slot: Option<usize>,
    /// Swarm-best row as of the *start* of the generation (the broadcast
    /// kernel that crowns this generation's winner runs after the
    /// personal-best update), used for the Hamming-diversity proxy.
    pub gbest: Buf<u32>,
}

/// Position update: `p ← c₂ ⊕ F₃(c₁ ⊕ F₂(w ⊕ F₁(p), pbest), gbest)`.
///
/// Built once per pipeline run ([`DpsoUpdateKernel::new`]); each particle's
/// crossover buffers persist in a scratch arena across launches, so
/// steady-state generations allocate nothing.
pub struct DpsoUpdateKernel {
    /// Particle positions (row-major).
    pub positions: Buf<u32>,
    /// Personal-best positions.
    pub pbest: Buf<u32>,
    /// Swarm-best position (one row of `n`).
    pub gbest: Buf<u32>,
    /// XORWOW states.
    pub rng: Buf<u64>,
    /// Jobs per sequence.
    pub n: usize,
    /// Live particles.
    pub ensemble: usize,
    /// Velocity probability `w`.
    pub w: f64,
    /// Cognition probability `c₁`.
    pub c1: f64,
    /// Social probability `c₂`.
    pub c2: f64,
    /// Per-particle local memory, indexed by global thread id.
    scratch: ScratchArena<UpdateScratch>,
}

impl DpsoUpdateKernel {
    /// Build the kernel for `ensemble` live particles.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        positions: Buf<u32>,
        pbest: Buf<u32>,
        gbest: Buf<u32>,
        rng: Buf<u64>,
        n: usize,
        ensemble: usize,
        w: f64,
        c1: f64,
        c2: f64,
    ) -> Self {
        // Job ids travel through u32 buffers and the u32 RNG bound below;
        // checking once here makes every `n as u32` in the hot path exact.
        assert!(u32::try_from(n).is_ok(), "sequence length {n} exceeds the u32 job-id domain");
        DpsoUpdateKernel {
            positions,
            pbest,
            gbest,
            rng,
            n,
            ensemble,
            w,
            c1,
            c2,
            scratch: ScratchArena::new(ensemble),
        }
    }
}

/// Per-thread local memory for the update.
#[derive(Default)]
pub struct UpdateScratch {
    row: Vec<u32>,
    other: Vec<u32>,
    out: Vec<u32>,
    /// Seen-marks for permutation repair under fault injection.
    marks: Vec<bool>,
}

/// Repair `row` in place if it is not a permutation of `0..n` (reset to the
/// identity). Only called under fault injection, where a flipped read can
/// hand the crossover operators job ids that index out of bounds.
fn sanitize_row(row: &mut [u32], marks: &mut Vec<bool>) {
    let n = row.len();
    marks.clear();
    marks.resize(n, false);
    let valid = row.iter().all(|&j| {
        // u32 → usize widens; a flipped id is caught by the bounds check,
        // never truncated into a valid-looking index.
        let j = j as usize;
        j < n && !std::mem::replace(&mut marks[j], true)
    });
    if !valid {
        for (k, slot) in row.iter_mut().enumerate() {
            // k < n ≤ u32::MAX (the row was read from a u32 buffer).
            *slot = k as u32;
        }
    }
}

impl Kernel for DpsoUpdateKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "dpso_update"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let gid = ctx.global_id();
        if gid >= self.ensemble {
            return;
        }
        let n = self.n;
        let mut rng = ctx.load_rng(self.rng, gid);

        self.scratch.with_slot(gid, |scratch| {
            scratch.row.resize(n, 0);
            ctx.read_slice_into(self.positions, gid * n, &mut scratch.row);
            if ctx.fault_injection_active() {
                sanitize_row(&mut scratch.row, &mut scratch.marks);
                ctx.charge_alu(2 * n as u64);
            }

            // λ = w ⊕ F₁(p): swap two random positions.
            if n >= 2 && rng.next_f64() < self.w {
                let a = rng.next_below(n as u32) as usize;
                let mut b = rng.next_below(n as u32 - 1) as usize;
                if b >= a {
                    b += 1;
                }
                scratch.row.swap(a, b);
                ctx.charge_alu(6);
            }

            // δ = c₁ ⊕ F₂(λ, pbest): one-point crossover with the personal best.
            if n >= 2 && rng.next_f64() < self.c1 {
                scratch.other.resize(n, 0);
                ctx.read_slice_into(self.pbest, gid * n, &mut scratch.other);
                if ctx.fault_injection_active() {
                    sanitize_row(&mut scratch.other, &mut scratch.marks);
                    ctx.charge_alu(2 * n as u64);
                }
                let cut = 1 + rng.next_below(n as u32 - 1) as usize;
                one_point_crossover(&scratch.row, &scratch.other, cut, &mut scratch.out);
                std::mem::swap(&mut scratch.row, &mut scratch.out);
                ctx.charge_alu(2 * n as u64);
            }

            // x = c₂ ⊕ F₃(δ, g): two-point crossover with the swarm best.
            if n >= 2 && rng.next_f64() < self.c2 {
                scratch.other.resize(n, 0);
                ctx.read_slice_into(self.gbest, 0, &mut scratch.other);
                if ctx.fault_injection_active() {
                    sanitize_row(&mut scratch.other, &mut scratch.marks);
                    ctx.charge_alu(2 * n as u64);
                }
                let mut lo = rng.next_below(n as u32) as usize;
                let mut hi = rng.next_below(n as u32) as usize;
                if lo > hi {
                    std::mem::swap(&mut lo, &mut hi);
                }
                two_point_crossover(&scratch.row, &scratch.other, lo, hi + 1, &mut scratch.out);
                std::mem::swap(&mut scratch.row, &mut scratch.out);
                ctx.charge_alu(2 * n as u64);
            }

            ctx.write_slice(self.positions, gid * n, &scratch.row);
        });
        ctx.store_rng(self.rng, gid, &rng);
    }
}

/// Personal-best update (the DPSO analogue of the acceptance kernel):
/// `pbest ← position` wherever the new fitness improves it. Seed
/// `pbest_energies` with `i64::MAX` so the first launch records the initial
/// swarm.
pub struct PbestKernel {
    /// Particle positions.
    pub positions: Buf<u32>,
    /// Fresh fitness per particle.
    pub energies: Buf<i64>,
    /// Personal-best positions (updated).
    pub pbest: Buf<u32>,
    /// Personal-best energies (updated).
    pub pbest_energies: Buf<i64>,
    /// Jobs per sequence.
    pub n: usize,
    /// Live particles.
    pub ensemble: usize,
    /// Optional convergence-telemetry probe; `None` when telemetry is off.
    pub telemetry: Option<DpsoProbe>,
}

impl Kernel for PbestKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "pbest_update"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        let gid = ctx.global_id();
        if gid >= self.ensemble {
            return;
        }
        let e = ctx.read(self.energies, gid);
        let b = ctx.read(self.pbest_energies, gid);
        let improved = e < b;
        if improved {
            ctx.copy_row(self.positions, gid * self.n, self.pbest, gid * self.n, self.n);
            ctx.write(self.pbest_energies, gid, e);
        }

        if let Some(probe) = &self.telemetry {
            probe.ring.bump_counter(ctx, gid, i64::from(improved));
            if let Some(slot) = probe.slot {
                let pb = if improved { e } else { b };
                // Diversity proxy: Hamming distance between this particle and
                // the generation-start swarm best.
                let mut dist = 0i64;
                for j in 0..self.n {
                    let mine: u32 = ctx.telemetry_read(self.positions, gid * self.n + j);
                    let swarm: u32 = ctx.telemetry_read(probe.gbest, j);
                    dist += i64::from(mine != swarm);
                }
                probe.ring.write_sample(ctx, slot, gid, [pb, e, dist]);
            }
        }
    }
}

/// Broadcast the reduction winner: one thread copies the argmin particle's
/// personal best into the swarm-best row (the second half of the paper's
/// "find swarm's best" step).
pub struct GbestCopyKernel {
    /// Packed `(value, index)` argmin result from the reduction kernel.
    pub packed: Buf<i64>,
    /// Personal-best positions.
    pub pbest: Buf<u32>,
    /// Swarm-best row (written).
    pub gbest: Buf<u32>,
    /// Jobs per sequence.
    pub n: usize,
}

impl Kernel for GbestCopyKernel {
    type Shared = ();
    type ThreadState = ();

    fn name(&self) -> &str {
        "gbest_copy"
    }

    fn make_shared(&self, _block_dim: usize) {}

    fn phase<C: DeviceCtx>(&self, _p: usize, ctx: &mut C, _s: &mut (), _t: &mut ()) {
        if ctx.global_id() != 0 {
            return;
        }
        let key = ctx.read(self.packed, 0);
        let (_, idx) = unpack_argmin(key);
        ctx.charge_alu(2);
        // A corrupted packed key can decode to an index past the swarm; skip
        // the copy rather than read out of bounds (gbest keeps its previous
        // row, which is still a valid permutation). The range check is cheap
        // enough to keep unconditionally.
        if (idx + 1) * self.n > self.pbest.len() {
            return;
        }
        ctx.copy_row(self.pbest, idx * self.n, self.gbest, 0, self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd_core::JobSequence;
    use cuda_sim::reduce::pack_argmin;
    use cuda_sim::{DeviceSpec, Gpu, LaunchConfig, XorWow};

    #[test]
    fn update_keeps_rows_as_permutations() {
        let t = 24;
        let n = 15;
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        gpu.set_race_detection(true);
        let positions = gpu.alloc::<u32>(t * n);
        let pbest = gpu.alloc::<u32>(t * n);
        let gbest = gpu.alloc::<u32>(n);
        let flat: Vec<u32> = (0..t).flat_map(|_| (0..n as u32).rev()).collect();
        gpu.h2d(positions, &flat);
        gpu.h2d(pbest, &(0..t).flat_map(|_| 0..n as u32).collect::<Vec<_>>());
        gpu.h2d(gbest, &(0..n as u32).collect::<Vec<_>>());
        let rng = gpu.alloc::<u64>(t * 3);
        let words: Vec<u64> = (0..t).flat_map(|i| XorWow::new(5, i as u64).pack()).collect();
        gpu.h2d(rng, &words);
        let k = DpsoUpdateKernel::new(positions, pbest, gbest, rng, n, t, 0.9, 0.8, 0.8);
        gpu.launch(&k, LaunchConfig::cover(t, 8), &[]).unwrap();
        let out = gpu.d2h(positions);
        for i in 0..t {
            let row = out[i * n..(i + 1) * n].to_vec();
            assert!(
                JobSequence::from_vec(row).unwrap().is_valid_permutation(),
                "particle {i} left the permutation space"
            );
        }
    }

    #[test]
    fn pbest_updates_only_improvements() {
        let n = 3;
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let positions = gpu.alloc::<u32>(2 * n);
        gpu.h2d(positions, &[2, 1, 0, 2, 0, 1]);
        let energies = gpu.alloc::<i64>(2);
        gpu.h2d(energies, &[5, 50]);
        let pbest = gpu.alloc::<u32>(2 * n);
        gpu.h2d(pbest, &[0, 1, 2, 0, 1, 2]);
        let pbest_e = gpu.alloc::<i64>(2);
        gpu.h2d(pbest_e, &[10, 10]);
        let k = PbestKernel {
            positions,
            energies,
            pbest,
            pbest_energies: pbest_e,
            n,
            ensemble: 2,
            telemetry: None,
        };
        gpu.launch(&k, LaunchConfig::linear(1, 2), &[]).unwrap();
        assert_eq!(gpu.d2h(pbest_e), vec![5, 10]);
        assert_eq!(gpu.d2h(pbest), vec![2, 1, 0, 0, 1, 2]);
    }

    #[test]
    fn probe_records_pbest_energy_and_hamming_diversity() {
        let n = 3;
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let positions = gpu.alloc::<u32>(2 * n);
        gpu.h2d(positions, &[2, 1, 0, 0, 1, 2]);
        let energies = gpu.alloc::<i64>(2);
        gpu.h2d(energies, &[5, 50]);
        let pbest = gpu.alloc::<u32>(2 * n);
        let pbest_e = gpu.alloc::<i64>(2);
        gpu.h2d(pbest_e, &[10, 10]);
        let gbest = gpu.alloc::<u32>(n);
        gpu.h2d(gbest, &[0, 1, 2]);
        let ring = cuda_sim::TelemetryRing::alloc(&mut gpu, 2, 1);
        let k = PbestKernel {
            positions,
            energies,
            pbest,
            pbest_energies: pbest_e,
            n,
            ensemble: 2,
            telemetry: Some(DpsoProbe { ring, slot: Some(0), gbest }),
        };
        gpu.launch(&k, LaunchConfig::linear(1, 2), &[]).unwrap();
        let (lanes, counters) = ring.snapshot(&gpu);
        // Particle 0 improved (5 < 10) and sits 2 swaps from gbest [0,1,2].
        assert_eq!(&lanes[..3], &[5, 5, 2]);
        // Particle 1 kept pbest 10 and matches gbest exactly.
        assert_eq!(&lanes[3..6], &[10, 50, 0]);
        assert_eq!(counters, vec![1, 0]);
    }

    #[test]
    fn gbest_copy_fetches_winning_row() {
        let n = 4;
        let mut gpu = Gpu::new(DeviceSpec::gt560m());
        let pbest = gpu.alloc::<u32>(3 * n);
        gpu.h2d(pbest, &[0, 1, 2, 3, 3, 2, 1, 0, 1, 0, 3, 2]);
        let gbest = gpu.alloc::<u32>(n);
        let packed = gpu.alloc::<i64>(1);
        gpu.h2d(packed, &[pack_argmin(42, 1)]); // particle 1 won
        let k = GbestCopyKernel { packed, pbest, gbest, n };
        gpu.launch(&k, LaunchConfig::linear(1, 32), &[]).unwrap();
        assert_eq!(gpu.d2h(gbest), vec![3, 2, 1, 0]);
    }
}
